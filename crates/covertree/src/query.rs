//! Cover-tree queries: exact NN, `c`-ANN, `k`-NN and range search.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pg_metric::Metric;

use crate::tree::CoverTree;

/// `f64` wrapper with a total order, for use as a heap key. Distances are
/// always finite and non-negative here.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64);

impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl<'d, P, M: Metric<P>> CoverTree<'d, P, M> {
    /// Exact nearest live neighbor of `q`: `(dataset id, distance)`, or
    /// `None` when the tree has no live points.
    pub fn nearest(&self, q: &P) -> Option<(u32, f64)> {
        self.ann(q, 1.0)
    }

    /// `c`-approximate nearest neighbor (`c >= 1`): returns a live point `p`
    /// with `D(p, q) <= c * D(p*, q)` where `p*` is the exact nearest live
    /// point. `c = 1` gives the exact answer; the paper's Section 2.4 build
    /// uses `c = 2`.
    ///
    /// Implemented as best-first search over the tree, pruning a subtree as
    /// soon as its distance lower bound reaches `best / c`.
    pub fn ann(&self, q: &P, c: f64) -> Option<(u32, f64)> {
        assert!(c >= 1.0, "approximation factor must be >= 1");
        let root = self.root?;
        if self.is_empty() {
            return None;
        }

        let mut best: f64 = f64::INFINITY;
        let mut best_id: Option<u32> = None;
        let consider = |pid: u32, d: f64, best: &mut f64, best_id: &mut Option<u32>| {
            if !self.dead[pid as usize] && d < *best {
                *best = d;
                *best_id = Some(pid);
            }
        };

        // Min-heap over subtree lower bounds; each entry carries the node's
        // own point distance so it is computed exactly once.
        let mut heap: BinaryHeap<Reverse<(Key, u32)>> = BinaryHeap::new();
        let d_root = self.dist_q(self.nodes[root as usize].point, q);
        consider(
            self.nodes[root as usize].point,
            d_root,
            &mut best,
            &mut best_id,
        );
        let lb_root = (d_root - self.subtree_bound(root)).max(0.0);
        heap.push(Reverse((Key(lb_root), root)));

        while let Some(Reverse((Key(lb), idx))) = heap.pop() {
            if lb * c >= best {
                // Every unexplored subtree has lower bound >= lb, so no
                // unexplored point can beat best/c: the c-ANN guarantee holds.
                break;
            }
            let children: &[u32] = &self.nodes[idx as usize].children;
            for &ch in children {
                let cp = self.nodes[ch as usize].point;
                let dc = self.dist_q(cp, q);
                consider(cp, dc, &mut best, &mut best_id);
                let lb_ch = (dc - self.subtree_bound(ch)).max(0.0);
                if lb_ch * c < best {
                    heap.push(Reverse((Key(lb_ch), ch)));
                }
            }
        }
        best_id.map(|id| (id, best))
    }

    /// The `k` nearest live neighbors of `q`, ascending by distance.
    /// Returns fewer than `k` entries when fewer live points exist.
    pub fn k_nearest(&self, q: &P, k: usize) -> Vec<(u32, f64)> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        if k == 0 || self.is_empty() {
            return Vec::new();
        }

        // Max-heap of the best k live candidates seen so far, deduplicated
        // by point id (the root point may appear at several nodes).
        let mut topk: BinaryHeap<(Key, u32)> = BinaryHeap::new();
        let mut in_topk: Vec<bool> = vec![false; self.data.len()];
        let offer =
            |pid: u32, d: f64, topk: &mut BinaryHeap<(Key, u32)>, in_topk: &mut Vec<bool>| {
                if self.dead[pid as usize] || in_topk[pid as usize] {
                    return;
                }
                if topk.len() < k {
                    topk.push((Key(d), pid));
                    in_topk[pid as usize] = true;
                } else if let Some(&(Key(worst), worst_id)) = topk.peek() {
                    if d < worst {
                        topk.pop();
                        in_topk[worst_id as usize] = false;
                        topk.push((Key(d), pid));
                        in_topk[pid as usize] = true;
                    }
                }
            };
        let kth_bound = |topk: &BinaryHeap<(Key, u32)>| -> f64 {
            if topk.len() < k {
                f64::INFINITY
            } else {
                topk.peek().map(|&(Key(d), _)| d).unwrap_or(f64::INFINITY)
            }
        };

        let mut heap: BinaryHeap<Reverse<(Key, u32)>> = BinaryHeap::new();
        let d_root = self.dist_q(self.nodes[root as usize].point, q);
        offer(
            self.nodes[root as usize].point,
            d_root,
            &mut topk,
            &mut in_topk,
        );
        heap.push(Reverse((
            Key((d_root - self.subtree_bound(root)).max(0.0)),
            root,
        )));

        while let Some(Reverse((Key(lb), idx))) = heap.pop() {
            if lb >= kth_bound(&topk) {
                break;
            }
            let children: &[u32] = &self.nodes[idx as usize].children;
            for &ch in children {
                let cp = self.nodes[ch as usize].point;
                let dc = self.dist_q(cp, q);
                offer(cp, dc, &mut topk, &mut in_topk);
                let lb_ch = (dc - self.subtree_bound(ch)).max(0.0);
                if lb_ch < kth_bound(&topk) {
                    heap.push(Reverse((Key(lb_ch), ch)));
                }
            }
        }

        let mut out: Vec<(u32, f64)> = topk.into_iter().map(|(Key(d), id)| (id, d)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// All live points within distance `r` of `q` (closed ball), ascending
    /// by dataset id.
    pub fn range(&self, q: &P, r: f64) -> Vec<u32> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        let mut out: Vec<u32> = Vec::new();
        let mut stack: Vec<(u32, f64)> = Vec::new();
        let d_root = self.dist_q(self.nodes[root as usize].point, q);
        stack.push((root, d_root));
        let mut reported: Vec<bool> = vec![false; self.data.len()];
        while let Some((idx, d)) = stack.pop() {
            let pid = self.nodes[idx as usize].point;
            if d <= r && !self.dead[pid as usize] && !reported[pid as usize] {
                reported[pid as usize] = true;
                out.push(pid);
            }
            for &ch in &self.nodes[idx as usize].children {
                let cp = self.nodes[ch as usize].point;
                let dc = self.dist_q(cp, q);
                if dc <= r + self.subtree_bound(ch) {
                    stack.push((ch, dc));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::{Dataset, Euclidean};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset<Vec<f64>, Euclidean> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| (0..d).map(|_| rng.random_range(-10.0..10.0)).collect())
            .collect();
        Dataset::new(pts, Euclidean)
    }

    #[test]
    fn nearest_matches_brute_force() {
        let ds = random_dataset(300, 3, 42);
        let t = CoverTree::build_all(&ds);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let q: Vec<f64> = (0..3).map(|_| rng.random_range(-12.0..12.0)).collect();
            let (bid, bd) = ds.nearest_brute(&q);
            let (tid, td) = t.nearest(&q).unwrap();
            // Ties possible; distances must agree exactly.
            assert_eq!(bd, td, "distance mismatch (brute id {bid}, tree id {tid})");
        }
    }

    #[test]
    fn ann_factor_respected() {
        let ds = random_dataset(400, 2, 1);
        let t = CoverTree::build_all(&ds);
        let mut rng = StdRng::seed_from_u64(2);
        for c in [1.5, 2.0, 4.0] {
            for _ in 0..40 {
                let q: Vec<f64> = (0..2).map(|_| rng.random_range(-12.0..12.0)).collect();
                let (_, exact) = ds.nearest_brute(&q);
                let (_, approx) = t.ann(&q, c).unwrap();
                assert!(
                    approx <= c * exact + 1e-9,
                    "c = {c}: got {approx}, exact {exact}"
                );
            }
        }
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let ds = random_dataset(200, 2, 3);
        let t = CoverTree::build_all(&ds);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..25 {
            let q: Vec<f64> = (0..2).map(|_| rng.random_range(-12.0..12.0)).collect();
            for k in [1usize, 3, 10] {
                let brute = ds.k_nearest_brute(&q, k);
                let tree = t.k_nearest(&q, k);
                assert_eq!(tree.len(), k);
                for (b, t) in brute.iter().zip(tree.iter()) {
                    assert!((b.1 - t.1).abs() < 1e-12, "kth distance mismatch");
                }
            }
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let ds = random_dataset(200, 3, 5);
        let t = CoverTree::build_all(&ds);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..25 {
            let q: Vec<f64> = (0..3).map(|_| rng.random_range(-12.0..12.0)).collect();
            let r = rng.random_range(0.5..8.0);
            let brute: Vec<u32> = ds
                .range_brute(&q, r)
                .into_iter()
                .map(|i| i as u32)
                .collect();
            let tree = t.range(&q, r);
            assert_eq!(brute, tree);
        }
    }

    #[test]
    fn queries_skip_tombstones() {
        let ds = random_dataset(100, 2, 8);
        let mut t = CoverTree::build_all(&ds);
        let q: Vec<f64> = vec![0.0, 0.0];
        let (first, d1) = t.nearest(&q).unwrap();
        t.remove(first);
        let (second, d2) = t.nearest(&q).unwrap();
        assert_ne!(first, second);
        assert!(d2 >= d1);
        // Restoring brings the original winner back.
        t.restore(first);
        let (again, d3) = t.nearest(&q).unwrap();
        assert_eq!(d3, d1);
        assert_eq!(again, first);
    }

    #[test]
    fn repeated_delete_query_restore_matches_sorted_order() {
        // The access pattern of the paper's Section 2.4 build: repeatedly take
        // the nearest, tombstone it, and finally restore everything.
        let ds = random_dataset(60, 2, 9);
        let mut t = CoverTree::build_all(&ds);
        let q: Vec<f64> = vec![1.0, -1.0];
        let brute = ds.k_nearest_brute(&q, 60);
        let mut removed = Vec::new();
        for expect in brute.iter().take(20) {
            let (id, d) = t.nearest(&q).unwrap();
            assert!((d - expect.1).abs() < 1e-12);
            t.remove(id);
            removed.push(id);
        }
        for id in removed {
            t.restore(id);
        }
        assert_eq!(t.len(), 60);
        let (_, d) = t.nearest(&q).unwrap();
        assert!((d - brute[0].1).abs() < 1e-12);
    }

    #[test]
    fn repeated_ann_delete_retrieval_equals_range_query() {
        // The Section 2.4 retrieval of S (repeated 2-ANN + delete until the
        // reported distance exceeds 2R) returns exactly the R-ball, the same
        // set a direct range query reports (see DESIGN.md substitution 2).
        let ds = random_dataset(150, 2, 21);
        let mut t = CoverTree::build_all(&ds);
        for (qi, r) in [(3usize, 2.0f64), (77, 5.0), (140, 9.0)] {
            let q = ds.point(qi).clone();
            let mut s_del: Vec<u32> = Vec::new();
            let mut s_set: Vec<u32> = Vec::new();
            while let Some((y, d)) = t.ann(&q, 2.0) {
                if d > 2.0 * r {
                    break;
                }
                if d <= r {
                    s_set.push(y);
                }
                t.remove(y);
                s_del.push(y);
            }
            for y in s_del {
                t.restore(y);
            }
            s_set.sort_unstable();
            let range = t.range(&q, r);
            assert_eq!(s_set, range, "query {qi}, radius {r}");
        }
    }

    #[test]
    fn empty_and_all_dead_trees_return_none() {
        let ds = random_dataset(5, 2, 10);
        let mut t = CoverTree::new(&ds);
        assert!(t.nearest(&vec![0.0, 0.0]).is_none());
        for pid in 0..5 {
            t.insert(pid);
        }
        for pid in 0..5 {
            t.remove(pid);
        }
        assert!(t.nearest(&vec![0.0, 0.0]).is_none());
        assert!(t.k_nearest(&vec![0.0, 0.0], 3).is_empty());
        assert!(t.range(&vec![0.0, 0.0], 100.0).is_empty());
    }

    #[test]
    fn k_nearest_larger_than_live_count() {
        let ds = random_dataset(10, 2, 11);
        let mut t = CoverTree::build_all(&ds);
        t.remove(0);
        t.remove(1);
        let res = t.k_nearest(&vec![0.0, 0.0], 20);
        assert_eq!(res.len(), 8);
    }
}
