//! A dynamic cover tree over a [`pg_metric::Dataset`].
//!
//! Section 2.4 of the paper plugs a dynamic data structure `T` into the
//! `build` procedure: `T` must support **2-ANN queries**, **insertions** and
//! **deletions**, each in polylogarithmic time; the paper cites the
//! Cole–Gottlieb structure \[20\]. This crate provides the closest practical
//! equivalent implemented from scratch: a *cover tree* in the simplified
//! style of Izbicki–Shelton, with
//!
//! * incremental [`CoverTree::insert`],
//! * *lazy deletion* ([`CoverTree::remove`] tombstones a point;
//!   [`CoverTree::restore`] undoes it — exactly the pattern needed by the
//!   paper's `build`, which deletes points from `T` only to re-insert them
//!   moments later),
//! * exact nearest neighbor ([`CoverTree::nearest`]), `c`-approximate
//!   nearest neighbor ([`CoverTree::ann`]) for any `c >= 1` (the paper uses
//!   `c = 2`), `k`-NN ([`CoverTree::k_nearest`]) and metric range queries
//!   ([`CoverTree::range`]),
//! * [`approx_min_dist`], the footnote-1 estimator
//!   `d̂_min ∈ [d_min / 2, d_min]` of Section 2.4's remark.
//!
//! Where this crate sits in the workspace is mapped in `ARCHITECTURE.md`
//! at the repository root.
//!
//! All operations are measured in distance computations when the dataset's
//! metric is wrapped in [`pg_metric::Counting`]; on doubling metrics the
//! per-operation cost is `2^{O(λ)} log Δ`-ish, matching the role the paper's
//! `t_qry`/`t_upd` play in Eq. (13).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod approx_min;
mod query;
mod tree;

pub use approx_min::approx_min_dist;
pub use tree::CoverTree;
