//! The `d̂_min` estimator from the remark of Section 2.4 (footnote 1).
//!
//! > "To compute `d̂_min`, first build a 2-ANN structure on `P`. For each
//! > point `p ∈ P`, use the structure to find a 2-ANN `p'` of `p` and record
//! > the distance `D(p, p')` for `p`. Then, `d̂_min` can be set to half of
//! > the smallest recorded distance of all points."

use pg_metric::{Dataset, Metric};

use crate::tree::CoverTree;

/// Estimates the minimum inter-point distance: returns
/// `d̂_min ∈ [d_min / 2, d_min]`.
///
/// For each point `p`, the point itself is tombstoned, a 2-ANN among the
/// remaining points is retrieved, and the point is restored — the dynamic
/// pattern the cover tree supports natively. The recorded distance satisfies
/// `d(p, p') <= 2 * d(p, NN(p))`, so half the global minimum lies in
/// `[d_min / 2, d_min]`.
///
/// Panics when the dataset has fewer than two points.
pub fn approx_min_dist<P, M: Metric<P>>(data: &Dataset<P, M>) -> f64 {
    assert!(data.len() >= 2, "need at least two points");
    let mut tree = CoverTree::build_all(data);
    let mut smallest = f64::INFINITY;
    for pid in 0..data.len() as u32 {
        tree.remove(pid);
        let (_, d) = tree
            .ann(data.point(pid as usize), 2.0)
            .expect("tree has n-1 >= 1 live points");
        smallest = smallest.min(d);
        tree.restore(pid);
    }
    smallest / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn estimate_is_within_guaranteed_band() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..5 {
            let n = 50 + trial * 30;
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)])
                .collect();
            let ds = Dataset::new(pts, Euclidean);
            let (dmin, _) = ds.min_max_interpoint();
            let est = approx_min_dist(&ds);
            assert!(
                est >= dmin / 2.0 - 1e-12 && est <= dmin + 1e-12,
                "estimate {est} outside [{}, {}]",
                dmin / 2.0,
                dmin
            );
        }
    }

    #[test]
    fn exact_on_uniform_line() {
        let pts: Vec<Vec<f64>> = (0..20).map(|i| vec![3.0 * i as f64]).collect();
        let ds = Dataset::new(pts, Euclidean);
        let est = approx_min_dist(&ds);
        // All gaps equal 3; any 2-ANN in [3, 6]; half in [1.5, 3].
        assert!((1.5..=3.0).contains(&est));
    }
}
