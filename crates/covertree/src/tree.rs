//! Core cover-tree structure: nodes, insertion, tombstone deletion.

use pg_metric::{Dataset, Metric};

/// Covering radius of a node at `level`: `2^level`.
#[inline]
pub(crate) fn covdist(level: i32) -> f64 {
    (2.0f64).powi(level)
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Dataset id of the point this node carries.
    pub point: u32,
    /// Scale level; children live at `level - 1` and lie within
    /// `covdist(level)` of this node's point.
    pub level: i32,
    /// Arena indices of children.
    pub children: Vec<u32>,
    /// Upper bound on the distance from `point` to any point in this node's
    /// subtree (cached for pruning; see [`CoverTree::subtree_bound`]).
    pub max_r: f64,
}

/// A dynamic cover tree over (a subset of) the points of a [`Dataset`].
///
/// Invariants maintained (the "simplified cover tree" of Izbicki–Shelton):
///
/// * **leveling** — every child is exactly one level below its parent;
/// * **covering** — `D(parent, child) <= covdist(parent) = 2^{level(parent)}`;
/// * **separation** (emergent) — when a point is inserted as a new child of
///   `p`, it is farther than `covdist(child)` from every existing child, so
///   siblings are `> covdist(parent)/2` apart.
///
/// The root point may be duplicated at several levels (root raising creates
/// a self-chain); queries deduplicate by point id.
///
/// Deletion is *lazy*: [`CoverTree::remove`] tombstones the point so queries
/// skip it, and [`CoverTree::restore`] revives it. This is exactly the
/// pattern the paper's Section 2.4 `build` needs (points of the net `Y_i`
/// are deleted during the retrieval of `S` and then re-inserted), and is the
/// standard engineering substitute for the Cole–Gottlieb structure's true
/// deletions. [`CoverTree::rebuild`] compacts the tree when many tombstones
/// have accumulated permanently.
#[derive(Debug)]
pub struct CoverTree<'d, P, M> {
    pub(crate) data: &'d Dataset<P, M>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: Option<u32>,
    /// `dead[pid]` is true when point `pid` is tombstoned.
    pub(crate) dead: Vec<bool>,
    /// Ids ever inserted (used by `rebuild`); a point appears once.
    pub(crate) members: Vec<u32>,
    pub(crate) live_count: usize,
}

impl<'d, P, M: Metric<P>> CoverTree<'d, P, M> {
    /// Creates an empty tree over `data`. Points are referenced by dataset
    /// id; the tree never copies point coordinates.
    pub fn new(data: &'d Dataset<P, M>) -> Self {
        CoverTree {
            data,
            nodes: Vec::new(),
            root: None,
            dead: vec![false; data.len()],
            members: Vec::new(),
            live_count: 0,
        }
    }

    /// Builds a tree containing the given dataset ids, inserting in order.
    pub fn build(data: &'d Dataset<P, M>, ids: impl IntoIterator<Item = u32>) -> Self {
        let mut t = CoverTree::new(data);
        for id in ids {
            t.insert(id);
        }
        t
    }

    /// Builds a tree over the entire dataset.
    pub fn build_all(data: &'d Dataset<P, M>) -> Self {
        CoverTree::build(data, 0..data.len() as u32)
    }

    /// Number of live (non-tombstoned) points.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True when no live points remain.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Number of member points (live + tombstoned).
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Whether `pid` is currently live in the tree.
    pub fn contains_live(&self, pid: u32) -> bool {
        self.members.contains(&pid) && !self.dead[pid as usize]
    }

    #[inline]
    pub(crate) fn dist_pts(&self, a: u32, b: u32) -> f64 {
        self.data.dist(a as usize, b as usize)
    }

    #[inline]
    pub(crate) fn dist_q(&self, a: u32, q: &P) -> f64 {
        self.data.dist_to(a as usize, q)
    }

    /// Upper bound on `D(node.point, descendant)` for all descendants:
    /// the cached `max_r` tightened by the geometric bound `2 * covdist`.
    #[inline]
    pub(crate) fn subtree_bound(&self, idx: u32) -> f64 {
        let n = &self.nodes[idx as usize];
        n.max_r.min(2.0 * covdist(n.level))
    }

    fn push_node(&mut self, point: u32, level: i32) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            point,
            level,
            children: Vec::new(),
            max_r: 0.0,
        });
        idx
    }

    /// Inserts dataset point `pid`. Re-inserting a tombstoned member revives
    /// it (equivalent to [`CoverTree::restore`]); re-inserting a live member
    /// is a no-op.
    pub fn insert(&mut self, pid: u32) {
        assert!((pid as usize) < self.data.len(), "pid out of range");
        if self.members.contains(&pid) {
            if self.dead[pid as usize] {
                self.dead[pid as usize] = false;
                self.live_count += 1;
            }
            return;
        }
        self.members.push(pid);
        self.live_count += 1;

        let Some(mut root) = self.root else {
            self.root = Some(self.push_node(pid, 0));
            return;
        };

        let d_root = self.dist_pts(self.nodes[root as usize].point, pid);
        if d_root > covdist(self.nodes[root as usize].level) {
            // Raise the root (self-chaining) until the new point fits under a
            // root one level higher, then make the new point that root.
            while d_root > 2.0 * covdist(self.nodes[root as usize].level) {
                let (rp, rl, rmax) = {
                    let r = &self.nodes[root as usize];
                    (r.point, r.level, r.max_r)
                };
                let new_root = self.push_node(rp, rl + 1);
                self.nodes[new_root as usize].children.push(root);
                self.nodes[new_root as usize].max_r = rmax;
                root = new_root;
                // Same point, so d_root is unchanged.
            }
            let old_level = self.nodes[root as usize].level;
            let old_bound = self.subtree_bound(root);
            let new_root = self.push_node(pid, old_level + 1);
            self.nodes[new_root as usize].children.push(root);
            self.nodes[new_root as usize].max_r = d_root + old_bound;
            self.root = Some(new_root);
            return;
        }

        // Standard descent: follow any child that covers the new point;
        // otherwise attach as a new child of the current node.
        let mut cur = root;
        let mut d_cur = d_root;
        loop {
            let node = &mut self.nodes[cur as usize];
            if d_cur > node.max_r {
                node.max_r = d_cur;
            }
            let level = node.level;
            let child_indices: Vec<u32> = node.children.clone();
            let mut descend: Option<(u32, f64)> = None;
            for ch in child_indices {
                let cp = self.nodes[ch as usize].point;
                let dc = self.dist_pts(cp, pid);
                if dc <= covdist(level - 1) {
                    descend = Some((ch, dc));
                    break;
                }
            }
            match descend {
                Some((ch, dc)) => {
                    cur = ch;
                    d_cur = dc;
                }
                None => {
                    let leaf = self.push_node(pid, level - 1);
                    self.nodes[cur as usize].children.push(leaf);
                    return;
                }
            }
        }
    }

    /// Tombstones point `pid`. Returns `true` if it was live. Queries will
    /// no longer report the point, but its tree nodes keep routing traffic
    /// until [`CoverTree::rebuild`] is called.
    pub fn remove(&mut self, pid: u32) -> bool {
        if (pid as usize) < self.dead.len()
            && !self.dead[pid as usize]
            && self.members.contains(&pid)
        {
            self.dead[pid as usize] = true;
            self.live_count -= 1;
            true
        } else {
            false
        }
    }

    /// Revives a tombstoned point. Returns `true` if it was tombstoned.
    pub fn restore(&mut self, pid: u32) -> bool {
        if (pid as usize) < self.dead.len()
            && self.dead[pid as usize]
            && self.members.contains(&pid)
        {
            self.dead[pid as usize] = false;
            self.live_count += 1;
            true
        } else {
            false
        }
    }

    /// Rebuilds the tree from its live members, discarding tombstones.
    /// Costs `O(live * insert)`; call when deletions are permanent and
    /// numerous (the Section 2.4 build never needs this because every
    /// deletion is undone).
    pub fn rebuild(&mut self) {
        let live: Vec<u32> = self
            .members
            .iter()
            .copied()
            .filter(|&pid| !self.dead[pid as usize])
            .collect();
        self.nodes.clear();
        self.root = None;
        self.members.clear();
        self.live_count = 0;
        self.dead.iter_mut().for_each(|d| *d = false);
        for pid in live {
            self.insert(pid);
        }
    }

    /// Checks the structural invariants (leveling, covering, `max_r`
    /// soundness) over the whole tree. Intended for tests; `O(total nodes *
    /// depth)` distance evaluations.
    pub fn check_invariants(&self) -> Result<(), String> {
        let Some(root) = self.root else {
            return if self.nodes.is_empty() {
                Ok(())
            } else {
                Err("nodes exist but no root".into())
            };
        };
        let mut stack = vec![root];
        let mut visited = 0usize;
        while let Some(idx) = stack.pop() {
            visited += 1;
            let node = &self.nodes[idx as usize];
            for &ch in &node.children {
                let child = &self.nodes[ch as usize];
                if child.level != node.level - 1 {
                    return Err(format!(
                        "leveling violated: parent level {} child level {}",
                        node.level, child.level
                    ));
                }
                let d = self.dist_pts(node.point, child.point);
                if d > covdist(node.level) * (1.0 + 1e-12) {
                    return Err(format!(
                        "covering violated: d = {d} > covdist = {}",
                        covdist(node.level)
                    ));
                }
                stack.push(ch);
            }
            // max_r must bound every descendant.
            let mut desc = vec![idx];
            while let Some(di) = desc.pop() {
                let dn = &self.nodes[di as usize];
                let d = self.dist_pts(node.point, dn.point);
                if d > self.subtree_bound(idx) * (1.0 + 1e-12) {
                    return Err(format!(
                        "subtree bound violated: d = {d} > bound = {}",
                        self.subtree_bound(idx)
                    ));
                }
                desc.extend(dn.children.iter().copied());
            }
        }
        if visited != self.nodes.len() {
            return Err(format!(
                "dangling nodes: visited {visited} of {}",
                self.nodes.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::Euclidean;

    fn dataset(pts: Vec<Vec<f64>>) -> Dataset<Vec<f64>, Euclidean> {
        Dataset::new(pts, Euclidean)
    }

    #[test]
    fn single_point_tree() {
        let ds = dataset(vec![vec![0.0]]);
        let t = CoverTree::build_all(&ds);
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn invariants_hold_on_line() {
        let ds = dataset((0..64).map(|i| vec![i as f64]).collect());
        let t = CoverTree::build_all(&ds);
        assert_eq!(t.len(), 64);
        t.check_invariants().unwrap();
    }

    #[test]
    fn invariants_hold_on_powers_of_two_spread() {
        // Huge aspect ratio forces many root raises.
        let ds = dataset((0..20).map(|i| vec![(2.0f64).powi(i)]).collect());
        let t = CoverTree::build_all(&ds);
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_points_are_tolerated() {
        let ds = dataset(vec![vec![1.0], vec![1.0], vec![2.0], vec![1.0]]);
        let t = CoverTree::build_all(&ds);
        assert_eq!(t.len(), 4);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_restore_roundtrip() {
        let ds = dataset((0..10).map(|i| vec![i as f64]).collect());
        let mut t = CoverTree::build_all(&ds);
        assert!(t.remove(3));
        assert!(!t.remove(3), "double-remove must report false");
        assert_eq!(t.len(), 9);
        assert!(!t.contains_live(3));
        assert!(t.restore(3));
        assert!(!t.restore(3), "double-restore must report false");
        assert_eq!(t.len(), 10);
        assert!(t.contains_live(3));
    }

    #[test]
    fn reinsert_of_tombstoned_member_revives() {
        let ds = dataset((0..5).map(|i| vec![i as f64]).collect());
        let mut t = CoverTree::build_all(&ds);
        t.remove(2);
        t.insert(2);
        assert!(t.contains_live(2));
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn rebuild_drops_tombstones() {
        let ds = dataset((0..32).map(|i| vec![i as f64]).collect());
        let mut t = CoverTree::build_all(&ds);
        for pid in 0..16 {
            t.remove(pid);
        }
        let nodes_before = t.nodes.len();
        t.rebuild();
        assert_eq!(t.len(), 16);
        assert!(t.nodes.len() < nodes_before);
        t.check_invariants().unwrap();
        // Tombstoned points are genuinely gone.
        assert!(!t.contains_live(0));
        assert!(t.contains_live(20));
    }
}
