//! Property tests for the cover tree: structural invariants and agreement
//! with brute force under random build orders and delete/restore schedules.

use pg_covertree::{approx_min_dist, CoverTree};
use pg_metric::{Dataset, Euclidean};
use proptest::prelude::*;

fn pointset() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        (0i32..2000, 0i32..2000).prop_map(|(x, y)| vec![x as f64 * 0.1, y as f64 * 0.1]),
        2..50,
    )
    .prop_map(|mut pts| {
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pts.dedup();
        pts
    })
    .prop_filter("need >= 2 distinct", |p| p.len() >= 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_for_any_insertion_order(
        pts in pointset(),
        perm_seed in 0u64..1000,
    ) {
        let data = Dataset::new(pts, Euclidean);
        // Insertion order derived from a seed: stride through the ids.
        let n = data.len();
        let stride = 1 + (perm_seed as usize) % n;
        let mut seen = vec![false; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        for i in 0..n {
            let id = (i * stride) % n;
            if !seen[id] {
                seen[id] = true;
                order.push(id as u32);
            }
        }
        for (id, &s) in seen.iter().enumerate() {
            if !s {
                order.push(id as u32);
            }
        }
        let t = CoverTree::build(&data, order);
        prop_assert_eq!(t.len(), n);
        prop_assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn nearest_matches_brute_force_under_tombstones(
        pts in pointset(),
        qx in -20.0f64..220.0,
        qy in -20.0f64..220.0,
        dead_mask in 0u64..u64::MAX,
    ) {
        let data = Dataset::new(pts, Euclidean);
        let n = data.len();
        let mut t = CoverTree::build_all(&data);
        let mut live = Vec::new();
        for i in 0..n {
            if dead_mask >> (i % 64) & 1 == 1 {
                t.remove(i as u32);
            } else {
                live.push(i);
            }
        }
        prop_assume!(!live.is_empty());
        let q = vec![qx, qy];
        let (tid, td) = t.nearest(&q).unwrap();
        let bd = live.iter().map(|&i| data.dist_to(i, &q)).fold(f64::INFINITY, f64::min);
        prop_assert!((td - bd).abs() <= 1e-9, "tree {td} vs brute {bd}");
        prop_assert!(t.contains_live(tid));
    }

    #[test]
    fn two_ann_guarantee_holds(
        pts in pointset(),
        qx in -20.0f64..220.0,
        qy in -20.0f64..220.0,
    ) {
        let data = Dataset::new(pts, Euclidean);
        let t = CoverTree::build_all(&data);
        let q = vec![qx, qy];
        let (_, exact) = data.nearest_brute(&q);
        let (_, approx) = t.ann(&q, 2.0).unwrap();
        prop_assert!(approx <= 2.0 * exact + 1e-9);
    }

    #[test]
    fn range_equals_brute(
        pts in pointset(),
        qx in 0.0f64..200.0,
        qy in 0.0f64..200.0,
        r in 0.1f64..80.0,
    ) {
        let data = Dataset::new(pts, Euclidean);
        let t = CoverTree::build_all(&data);
        let q = vec![qx, qy];
        let got = t.range(&q, r);
        let expect: Vec<u32> = data.range_brute(&q, r).into_iter().map(|i| i as u32).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn approx_min_dist_band(pts in pointset()) {
        let data = Dataset::new(pts, Euclidean);
        let (dmin, _) = data.min_max_interpoint();
        prop_assume!(dmin > 0.0);
        let est = approx_min_dist(&data);
        prop_assert!(est >= dmin / 2.0 - 1e-12 && est <= dmin + 1e-12,
            "estimate {est} outside [{}, {dmin}]", dmin / 2.0);
    }

    #[test]
    fn rebuild_preserves_query_answers(
        pts in pointset(),
        dead_mask in 0u64..u64::MAX,
        qx in 0.0f64..200.0,
        qy in 0.0f64..200.0,
    ) {
        let data = Dataset::new(pts, Euclidean);
        let n = data.len();
        let mut t = CoverTree::build_all(&data);
        for i in 0..n {
            if dead_mask >> (i % 61) & 1 == 1 {
                t.remove(i as u32);
            }
        }
        prop_assume!(!t.is_empty());
        let q = vec![qx, qy];
        let before = t.nearest(&q).unwrap();
        t.rebuild();
        prop_assert!(t.check_invariants().is_ok());
        let after = t.nearest(&q).unwrap();
        prop_assert!((before.1 - after.1).abs() <= 1e-9);
    }
}
