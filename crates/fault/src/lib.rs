//! Deterministic fault injection — a seeded failpoint registry for chaos
//! testing.
//!
//! Production ANN serving systems fail on partial I/O, overload, and
//! stalled peers long before they fail on recall. This crate lets the
//! workspace *rehearse* those failures deterministically: instrumented
//! call sites in `pg_store` (file I/O) and `pg_serve` (transport,
//! batcher, engine dispatch) ask [`hit`] whether an injected fault should
//! fire, and tests arm sites with [`configure`] to drive every error path
//! on demand.
//!
//! Three design rules:
//!
//! * **Deterministic.** No wall clocks, no entropy. The only randomness is
//!   [`Trigger::Prob`], which draws from a per-site SplitMix64 stream
//!   seeded by the test (`rand` here is the workspace's offline compat
//!   shim). Two runs with the same seeds inject the same faults — a chaos
//!   failure always reproduces.
//! * **Zero production cost.** Instrumented crates gate every call to this
//!   crate behind their `failpoints` cargo feature (off by default), so
//!   release builds compile the hooks out entirely.
//! * **Typed outcomes.** A fired failpoint yields a [`Fault`] value the
//!   call site converts into its module's *ordinary* typed error — chaos
//!   tests then assert the same error contract real faults must satisfy.
//!
//! The registry is process-global (instrumented code deep in a call stack
//! cannot thread a handle through), so tests that arm sites must
//! serialize; the chaos suites run with `--test-threads=1` and call
//! [`reset`] between scenarios.
//!
//! ```
//! use pg_fault::{configure, hit, reset, Fault, FaultAction, FaultConfig};
//! use std::io::ErrorKind;
//!
//! reset();
//! configure("doc.write", FaultConfig::times(FaultAction::Fail(ErrorKind::Other), 1));
//! assert_eq!(hit("doc.write"), Some(Fault::Error(ErrorKind::Other)));
//! assert_eq!(hit("doc.write"), None); // Times(1) is spent
//! assert_eq!(pg_fault::hits("doc.write"), 2);
//! assert_eq!(pg_fault::fired("doc.write"), 1);
//! reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::io;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// What an armed failpoint does when its trigger fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// The call site fails with an [`io::Error`] of this kind.
    Fail(io::ErrorKind),
    /// Write-shaped sites only: persist exactly this many bytes of the
    /// intended payload, then fail — simulating a crash mid-write / torn
    /// write. Read- or call-shaped sites treat it like `Fail(WriteZero)`.
    ShortWrite(usize),
    /// Panic at the site. Exercises panic *containment*: the contract is
    /// that a panicking worker never takes queued work down with it.
    Panic,
    /// Sleep this many milliseconds, then proceed normally — a stalled
    /// peer or slow disk. (The delay is injected, not measured, so the
    /// `no-nondeterminism` discipline is preserved.)
    Stall(u64),
}

/// When an armed failpoint fires, relative to the hits it observes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on the first `n` hits, then fall dormant.
    Times(u64),
    /// Fire on exactly the `n`-th hit (1-based), and no other.
    Nth(u64),
    /// Fire each hit independently with probability `p`, drawn from a
    /// per-site SplitMix64 stream seeded with `seed`.
    Prob {
        /// Seed of the site's private random stream.
        seed: u64,
        /// Per-hit fire probability, clamped to `[0, 1]`.
        p: f64,
    },
}

/// A failpoint configuration: what to do, and when to do it.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// The injected behavior.
    pub action: FaultAction,
    /// The firing schedule.
    pub trigger: Trigger,
}

impl FaultConfig {
    /// Fire `action` on every hit.
    pub fn always(action: FaultAction) -> Self {
        FaultConfig {
            action,
            trigger: Trigger::Always,
        }
    }

    /// Fire `action` on the first `n` hits only.
    pub fn times(action: FaultAction, n: u64) -> Self {
        FaultConfig {
            action,
            trigger: Trigger::Times(n),
        }
    }

    /// Fire `action` on exactly the `n`-th hit (1-based).
    pub fn nth(action: FaultAction, n: u64) -> Self {
        FaultConfig {
            action,
            trigger: Trigger::Nth(n),
        }
    }

    /// Fire `action` with probability `p` per hit, from a stream seeded
    /// with `seed`.
    pub fn prob(action: FaultAction, seed: u64, p: f64) -> Self {
        FaultConfig {
            action,
            trigger: Trigger::Prob { seed, p },
        }
    }
}

/// The outcome a fired failpoint hands back to the instrumented site.
///
/// [`FaultAction::Panic`] and [`FaultAction::Stall`] never surface here —
/// the former panics inside [`hit`], the latter sleeps and reports "no
/// fault" — so call sites only need to handle the two error-shaped cases.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Fail with an [`io::Error`] of this kind.
    Error(io::ErrorKind),
    /// Persist only this many bytes, then fail (write-shaped sites).
    ShortWrite(usize),
}

impl Fault {
    /// The [`io::Error`] this fault stands for, labeled with its site so
    /// chaos-test failures name the injection point.
    pub fn into_io_error(self, site: &str) -> io::Error {
        match self {
            Fault::Error(kind) => io::Error::new(kind, format!("injected fault at `{site}`")),
            Fault::ShortWrite(n) => io::Error::new(
                io::ErrorKind::WriteZero,
                format!("injected short write ({n} bytes) at `{site}`"),
            ),
        }
    }
}

struct Site {
    config: FaultConfig,
    rng: Option<StdRng>,
    hits: u64,
    fired: u64,
}

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A panicking `hit` (the `Panic` action fires between guard drop and
/// unwind) can poison the registry lock; counters and configs stay
/// consistent because every mutation completes before the guard drops.
fn lock() -> MutexGuard<'static, HashMap<String, Site>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms (or re-arms) `site` with `config`, resetting its counters and —
/// for [`Trigger::Prob`] — reseeding its private random stream.
pub fn configure(site: &str, config: FaultConfig) {
    let rng = match config.trigger {
        Trigger::Prob { seed, .. } => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };
    lock().insert(
        site.to_string(),
        Site {
            config,
            rng,
            hits: 0,
            fired: 0,
        },
    );
}

/// Disarms `site`; subsequent [`hit`]s pass through untouched. Unknown
/// sites are a no-op.
pub fn disarm(site: &str) {
    lock().remove(site);
}

/// Disarms every site and forgets all counters. Chaos tests call this
/// between scenarios so no configuration leaks across test boundaries.
pub fn reset() {
    lock().clear();
}

/// How many times `site` was evaluated while armed (fired or not).
/// Unknown or disarmed sites report `0`.
pub fn hits(site: &str) -> u64 {
    lock().get(site).map_or(0, |s| s.hits)
}

/// How many times `site` actually fired while armed. Unknown or disarmed
/// sites report `0`.
pub fn fired(site: &str) -> u64 {
    lock().get(site).map_or(0, |s| s.fired)
}

/// The names of all currently armed sites, sorted.
pub fn armed_sites() -> Vec<String> {
    let mut names: Vec<String> = lock().keys().cloned().collect();
    names.sort();
    names
}

/// The instrumented-site entry point: records a hit at `site` and returns
/// the fault to apply, if the site is armed and its trigger fires.
///
/// `None` means "proceed normally" — the site is unknown, disarmed, its
/// trigger did not fire, or a fired [`FaultAction::Stall`] already slept.
/// A fired [`FaultAction::Panic`] panics here, after the registry lock is
/// released, so the registry itself stays usable for the rest of the test.
pub fn hit(site: &str) -> Option<Fault> {
    let action = {
        let mut map = lock();
        let s = map.get_mut(site)?;
        s.hits += 1;
        let fire = match s.config.trigger {
            Trigger::Always => true,
            Trigger::Times(n) => s.fired < n,
            Trigger::Nth(n) => s.hits == n,
            Trigger::Prob { p, .. } => match s.rng.as_mut() {
                Some(rng) => rng.random_bool(p),
                None => false,
            },
        };
        if !fire {
            return None;
        }
        s.fired += 1;
        s.config.action
    };
    match action {
        FaultAction::Fail(kind) => Some(Fault::Error(kind)),
        FaultAction::ShortWrite(n) => Some(Fault::ShortWrite(n)),
        FaultAction::Panic => panic!("pg_fault: injected panic at failpoint `{site}`"),
        FaultAction::Stall(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The registry is process-global and `cargo test` runs tests on many
    // threads, so every test in this module serializes on one lock and
    // resets the registry at entry and exit.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        guard
    }

    #[test]
    fn unknown_site_is_a_no_op() {
        let _g = serial();
        assert_eq!(hit("nope"), None);
        assert_eq!(hits("nope"), 0);
        assert_eq!(fired("nope"), 0);
        reset();
    }

    #[test]
    fn always_fires_every_hit() {
        let _g = serial();
        configure(
            "t.always",
            FaultConfig::always(FaultAction::Fail(io::ErrorKind::BrokenPipe)),
        );
        for _ in 0..5 {
            assert_eq!(
                hit("t.always"),
                Some(Fault::Error(io::ErrorKind::BrokenPipe))
            );
        }
        assert_eq!(hits("t.always"), 5);
        assert_eq!(fired("t.always"), 5);
        reset();
    }

    #[test]
    fn times_spends_its_budget_then_sleeps() {
        let _g = serial();
        configure("t.times", FaultConfig::times(FaultAction::ShortWrite(7), 2));
        assert_eq!(hit("t.times"), Some(Fault::ShortWrite(7)));
        assert_eq!(hit("t.times"), Some(Fault::ShortWrite(7)));
        assert_eq!(hit("t.times"), None);
        assert_eq!(hit("t.times"), None);
        assert_eq!(hits("t.times"), 4);
        assert_eq!(fired("t.times"), 2);
        reset();
    }

    #[test]
    fn nth_fires_exactly_once_at_position() {
        let _g = serial();
        configure(
            "t.nth",
            FaultConfig::nth(FaultAction::Fail(io::ErrorKind::TimedOut), 3),
        );
        assert_eq!(hit("t.nth"), None);
        assert_eq!(hit("t.nth"), None);
        assert_eq!(hit("t.nth"), Some(Fault::Error(io::ErrorKind::TimedOut)));
        assert_eq!(hit("t.nth"), None);
        assert_eq!(fired("t.nth"), 1);
        reset();
    }

    #[test]
    fn prob_is_deterministic_for_a_seed() {
        let _g = serial();
        let run = |seed: u64| -> Vec<bool> {
            configure(
                "t.prob",
                FaultConfig::prob(FaultAction::Fail(io::ErrorKind::Other), seed, 0.5),
            );
            (0..64).map(|_| hit("t.prob").is_some()).collect()
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b, "same seed must inject the same faults");
        assert_ne!(a, c, "different seeds should differ somewhere in 64 draws");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
        reset();
    }

    #[test]
    fn reconfigure_resets_counters() {
        let _g = serial();
        configure(
            "t.re",
            FaultConfig::always(FaultAction::Fail(io::ErrorKind::Other)),
        );
        let _ = hit("t.re");
        configure(
            "t.re",
            FaultConfig::times(FaultAction::Fail(io::ErrorKind::Other), 1),
        );
        assert_eq!(hits("t.re"), 0);
        assert!(hit("t.re").is_some());
        assert!(hit("t.re").is_none());
        reset();
    }

    #[test]
    fn panic_action_panics_but_registry_survives() {
        let _g = serial();
        configure("t.panic", FaultConfig::times(FaultAction::Panic, 1));
        let result = std::panic::catch_unwind(|| hit("t.panic"));
        assert!(result.is_err(), "Panic action must panic");
        // The lock was released before the panic: the registry still works
        // and the spent Times(1) trigger no longer fires.
        assert_eq!(hit("t.panic"), None);
        assert_eq!(fired("t.panic"), 1);
        reset();
    }

    #[test]
    fn stall_returns_none_after_sleeping() {
        let _g = serial();
        configure("t.stall", FaultConfig::times(FaultAction::Stall(1), 1));
        assert_eq!(hit("t.stall"), None);
        assert_eq!(fired("t.stall"), 1);
        reset();
    }

    #[test]
    fn disarm_and_armed_sites() {
        let _g = serial();
        configure("t.b", FaultConfig::always(FaultAction::Panic));
        configure("t.a", FaultConfig::always(FaultAction::Panic));
        assert_eq!(armed_sites(), vec!["t.a".to_string(), "t.b".to_string()]);
        disarm("t.a");
        assert_eq!(armed_sites(), vec!["t.b".to_string()]);
        assert_eq!(hit("t.a"), None);
        reset();
        assert!(armed_sites().is_empty());
    }

    #[test]
    fn into_io_error_carries_site_and_kind() {
        let e = Fault::Error(io::ErrorKind::NotFound).into_io_error("x.y");
        assert_eq!(e.kind(), io::ErrorKind::NotFound);
        assert!(e.to_string().contains("x.y"));
        let s = Fault::ShortWrite(3).into_io_error("x.z");
        assert_eq!(s.kind(), io::ErrorKind::WriteZero);
        assert!(s.to_string().contains("x.z"));
    }
}
