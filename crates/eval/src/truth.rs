//! Exact ground truth: parallel brute-force top-`k`, with a versioned
//! on-disk cache so repeated sweeps never recompute it.
//!
//! Computing ground truth is the most expensive part of an evaluation run —
//! `Θ(n · m)` distance computations for `m` queries over `n` points, paid
//! before a single index is measured. [`GroundTruth::compute`] shards the
//! per-query scans across the thread pool (the order-preserving parallel
//! map, so the result is identical for every thread count), and
//! [`GroundTruth::compute_or_load`] caches the result in a small versioned
//! file keyed by a [`fingerprint`] of everything the answer depends on:
//! the data coordinates, the query coordinates, the metric, and `k`. Any
//! change to any of them changes the fingerprint, so a cache can never
//! serve ground truth for the wrong workload — the failure mode of ad-hoc
//! "did anyone delete the cache dir?" schemes.
//!
//! # Cache file format (version 1)
//!
//! The format follows the `pg_store` snapshot conventions (see
//! `ARCHITECTURE.md` § Index snapshots): little-endian, magic +
//! `format_version` header, FNV-1a-64 checksummed payload
//! ([`pg_store::checksum`] — the exact same function, so the two formats
//! are conformance-testable together), typed errors, and reads that never
//! panic and never return partial data.
//!
//! | Offset | Size | Field |
//! |-------:|-----:|-------|
//! | 0 | 8 | magic `PGGTSNAP` |
//! | 8 | 4 | `format_version` (u32) = 1 |
//! | 12 | 8 | fingerprint (u64) — see [`fingerprint`] |
//! | 20 | 8 | `k` (u64) |
//! | 28 | 8 | `m` = query count (u64) |
//! | 36 | 4mk | neighbor ids (u32 each), query-major |
//! | … | 8mk | neighbor distances (f64 bits each), query-major, each row ascending |
//! | … | 8 | checksum: FNV-1a 64 of bytes `12..` up to here |
//!
//! Versioning follows the `pg_store` rules: readers accept exactly the
//! versions they implement and reject the rest with
//! [`GroundTruthError::UnsupportedVersion`]; any layout change is a new
//! version, never a reinterpretation.

use std::fmt;
use std::path::Path;

use pg_core::SnapshotMetric;
use pg_metric::{Dataset, Metric};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The 8-byte magic prefix of every ground-truth cache file.
pub const GT_MAGIC: [u8; 8] = *b"PGGTSNAP";

/// The cache format version this crate reads and writes.
pub const GT_FORMAT_VERSION: u32 = 1;

/// Typed failure of a ground-truth cache read/write. Mirrors
/// `pg_store::SnapshotError`: loading never panics, and every rejected file
/// says why.
#[derive(Debug)]
pub enum GroundTruthError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`GT_MAGIC`].
    BadMagic,
    /// The file declares a format version this reader does not implement.
    UnsupportedVersion(u32),
    /// The file ends before the declared payload does.
    Truncated,
    /// The payload checksum does not match its contents.
    ChecksumMismatch,
    /// The file is internally consistent but was computed for a different
    /// workload (data, queries, metric, or `k` differ) — the cache-staleness
    /// signal [`GroundTruth::compute_or_load`] recomputes on.
    FingerprintMismatch,
    /// A structural invariant fails (sizes, finiteness, row ordering).
    Invalid(String),
}

impl fmt::Display for GroundTruthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundTruthError::Io(e) => write!(f, "i/o error: {e}"),
            GroundTruthError::BadMagic => write!(f, "not a ground-truth cache file (bad magic)"),
            GroundTruthError::UnsupportedVersion(v) => {
                write!(f, "unsupported ground-truth format version {v}")
            }
            GroundTruthError::Truncated => write!(f, "truncated ground-truth cache file"),
            GroundTruthError::ChecksumMismatch => {
                write!(f, "ground-truth payload checksum mismatch")
            }
            GroundTruthError::FingerprintMismatch => {
                write!(f, "ground-truth fingerprint mismatch (stale cache)")
            }
            GroundTruthError::Invalid(reason) => write!(f, "invalid ground truth: {reason}"),
        }
    }
}

impl std::error::Error for GroundTruthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GroundTruthError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GroundTruthError {
    fn from(e: std::io::Error) -> Self {
        GroundTruthError::Io(e)
    }
}

/// Whether [`GroundTruth::compute_or_load`] served from the cache or had to
/// recompute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// A valid cache file with a matching fingerprint was loaded.
    Hit,
    /// No usable cache existed (missing, corrupt, stale, or wrong version);
    /// the ground truth was computed and the cache rewritten.
    Miss,
}

/// Fingerprint of everything an exact top-`k` answer set depends on: the
/// metric (its stable `pg_store::MetricTag` code), `k`, and the full
/// coordinate streams of the data points and the queries (counts, per-point
/// dimensions, and every `f64` bit pattern), folded through the shared
/// [`pg_store::Fnv64`] hasher. Two workloads fingerprint equal iff a
/// cached ground truth for one is valid for the other.
pub fn fingerprint<P: AsRef<[f64]>>(
    points: &[P],
    queries: &[P],
    metric_code: u32,
    k: usize,
) -> u64 {
    let mut h = pg_store::Fnv64::new();
    h.update(&metric_code.to_le_bytes());
    h.update(&(k as u64).to_le_bytes());
    for (label, set) in [(b'P', points), (b'Q', queries)] {
        h.update(&[label]);
        h.update(&(set.len() as u64).to_le_bytes());
        for p in set {
            let row = p.as_ref();
            h.update(&(row.len() as u64).to_le_bytes());
            for c in row {
                h.update(&c.to_bits().to_le_bytes());
            }
        }
    }
    h.finish()
}

/// Fingerprint of a **sampled** ground truth: the full-workload
/// [`fingerprint`] (over *all* `m` queries, not just the sampled ones)
/// plus the sample seed and count, behind an explicit `GTSAMPLE` domain
/// tag. Folding the tag first guarantees a sampled cache and a full-truth
/// cache for the same workload never share a fingerprint, so one can never
/// be served in place of the other; folding seed and count makes every
/// distinct sample of the same query set its own cache key.
pub fn fingerprint_sampled<P: AsRef<[f64]>>(
    points: &[P],
    queries: &[P],
    metric_code: u32,
    k: usize,
    sample_seed: u64,
    sample_count: usize,
) -> u64 {
    let mut h = pg_store::Fnv64::new();
    h.update(b"GTSAMPLE");
    h.update(&sample_seed.to_le_bytes());
    h.update(&(sample_count as u64).to_le_bytes());
    h.update(&fingerprint(points, queries, metric_code, k).to_le_bytes());
    h.finish()
}

/// Draws `count` distinct query indices from `0..m` — a seeded partial
/// Fisher–Yates shuffle, returned **ascending** so sampled query order is
/// a stable function of `(m, count, seed)` alone. Requires
/// `1 <= count <= m`.
pub fn sample_indices(m: usize, count: usize, seed: u64) -> Vec<usize> {
    assert!(count >= 1, "a query sample needs at least one query");
    assert!(
        count <= m,
        "cannot sample {count} of {m} queries without replacement"
    );
    let mut pool: Vec<usize> = (0..m).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..count {
        let j = rng.random_range(i..m);
        pool.swap(i, j);
    }
    let mut picked = pool;
    picked.truncate(count);
    picked.sort_unstable();
    picked
}

/// Exact top-`k` neighbors (ids and distances) of a fixed query set over a
/// fixed dataset — the reference every quality metric in this crate scores
/// against.
///
/// Rows are query-major: query `q`'s neighbors are
/// [`ids_for(q)`](GroundTruth::ids_for) /
/// [`dists_for(q)`](GroundTruth::dists_for), ascending by distance with
/// ties broken by smaller id — exactly the
/// [`Dataset::k_nearest_brute`] order that every search routine in the
/// workspace also reports, so comparisons never need re-sorting.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    k: usize,
    m: usize,
    ids: Vec<u32>,
    dists: Vec<f64>,
}

impl GroundTruth {
    /// Computes exact ground truth by parallel brute force: one
    /// [`Dataset::k_nearest_brute`] scan per query, sharded across the
    /// thread pool with the order-preserving map — the result is
    /// bit-identical for every thread count.
    ///
    /// Requires `1 <= k <= data.len()` and at least one query. Cost:
    /// `m · n` distance computations (counted by a `Counting` metric, if
    /// the dataset wears one).
    pub fn compute<P: Sync, M: Metric<P> + Sync>(
        data: &Dataset<P, M>,
        queries: &[P],
        k: usize,
    ) -> Self {
        assert!(k >= 1, "ground truth needs k >= 1");
        assert!(
            k <= data.len(),
            "k = {k} exceeds the dataset size {}",
            data.len()
        );
        assert!(!queries.is_empty(), "ground truth needs at least one query");
        let per_query = rayon::par_map(queries, |q| data.k_nearest_brute(q, k));
        let mut ids = Vec::with_capacity(queries.len() * k);
        let mut dists = Vec::with_capacity(queries.len() * k);
        for row in per_query {
            debug_assert_eq!(row.len(), k);
            for (id, d) in row {
                ids.push(id as u32);
                dists.push(d);
            }
        }
        GroundTruth {
            k,
            m: queries.len(),
            ids,
            dists,
        }
    }

    /// `k` — neighbors stored per query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of queries `m`.
    pub fn queries(&self) -> usize {
        self.m
    }

    /// The exact top-`k` neighbor ids of query `q`, ascending by distance
    /// (ties by id).
    pub fn ids_for(&self, q: usize) -> &[u32] {
        &self.ids[q * self.k..(q + 1) * self.k]
    }

    /// The exact top-`k` neighbor distances of query `q`, ascending.
    pub fn dists_for(&self, q: usize) -> &[f64] {
        &self.dists[q * self.k..(q + 1) * self.k]
    }

    /// The `k`-th smallest true distance for query `q` — the membership
    /// threshold of the exact top-`k` set (see
    /// [`recall_at_k`](crate::metrics::recall_at_k) for why hits are decided
    /// by this threshold rather than by id membership).
    pub fn threshold(&self, q: usize) -> f64 {
        self.dists_for(q)[self.k - 1]
    }

    /// The exact nearest-neighbor distance of query `q`.
    pub fn nearest_dist(&self, q: usize) -> f64 {
        self.dists_for(q)[0]
    }

    /// Serializes to the version-1 cache format (see the module docs),
    /// embedding `fingerprint` so a later load can detect staleness.
    pub fn to_bytes(&self, fingerprint: u64) -> Vec<u8> {
        let cells = self.m * self.k;
        let mut out = Vec::with_capacity(8 + 4 + 24 + cells * 12 + 8);
        out.extend_from_slice(&GT_MAGIC);
        out.extend_from_slice(&GT_FORMAT_VERSION.to_le_bytes());
        let payload_start = out.len();
        out.extend_from_slice(&fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.k as u64).to_le_bytes());
        out.extend_from_slice(&(self.m as u64).to_le_bytes());
        for id in &self.ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        for d in &self.dists {
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        let sum = pg_store::checksum(&out[payload_start..]);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses the version-1 cache format. Never panics; a [`GroundTruth`]
    /// is only returned after the magic, version, checksum, fingerprint and
    /// all structural invariants check out.
    pub fn from_bytes(bytes: &[u8], expected_fingerprint: u64) -> Result<Self, GroundTruthError> {
        let header = 8 + 4;
        let magic_prefix = &bytes[..bytes.len().min(8)];
        if magic_prefix != &GT_MAGIC[..magic_prefix.len()] {
            return Err(GroundTruthError::BadMagic);
        }
        if bytes.len() < header {
            return Err(GroundTruthError::Truncated);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != GT_FORMAT_VERSION {
            return Err(GroundTruthError::UnsupportedVersion(version));
        }
        // payload = [fingerprint | k | m | ids | dists]; the file ends with
        // the payload checksum.
        if bytes.len() < header + 24 + 8 {
            return Err(GroundTruthError::Truncated);
        }
        let payload = &bytes[header..bytes.len() - 8];
        let stored_sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if pg_store::checksum(payload) != stored_sum {
            return Err(GroundTruthError::ChecksumMismatch);
        }
        let fingerprint = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let k = u64::from_le_bytes(payload[8..16].try_into().unwrap()) as usize;
        let m = u64::from_le_bytes(payload[16..24].try_into().unwrap()) as usize;
        if k == 0 || m == 0 {
            return Err(GroundTruthError::Invalid("k and m must be >= 1".into()));
        }
        let cells = k
            .checked_mul(m)
            .ok_or_else(|| GroundTruthError::Invalid("k * m overflows".into()))?;
        let body = &payload[24..];
        let expected = cells
            .checked_mul(12)
            .ok_or_else(|| GroundTruthError::Invalid("payload size overflows".into()))?;
        match body.len().cmp(&expected) {
            std::cmp::Ordering::Less => return Err(GroundTruthError::Truncated),
            std::cmp::Ordering::Greater => {
                return Err(GroundTruthError::Invalid("trailing payload bytes".into()))
            }
            std::cmp::Ordering::Equal => {}
        }
        if fingerprint != expected_fingerprint {
            return Err(GroundTruthError::FingerprintMismatch);
        }
        let ids: Vec<u32> = body[..cells * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let dists: Vec<f64> = body[cells * 4..]
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect();
        for (q, row) in dists.chunks_exact(k).enumerate() {
            if row.iter().any(|d| !d.is_finite() || *d < 0.0) {
                return Err(GroundTruthError::Invalid(format!(
                    "non-finite or negative distance in row {q}"
                )));
            }
            if row.windows(2).any(|w| w[0] > w[1]) {
                return Err(GroundTruthError::Invalid(format!(
                    "row {q} is not ascending"
                )));
            }
        }
        Ok(GroundTruth { k, m, ids, dists })
    }

    /// Writes the cache file (see [`GroundTruth::to_bytes`]).
    pub fn save(&self, path: impl AsRef<Path>, fingerprint: u64) -> Result<(), GroundTruthError> {
        std::fs::write(path, self.to_bytes(fingerprint))?;
        Ok(())
    }

    /// Reads a cache file and validates it against `expected_fingerprint`
    /// (see [`GroundTruth::from_bytes`]).
    pub fn load(
        path: impl AsRef<Path>,
        expected_fingerprint: u64,
    ) -> Result<Self, GroundTruthError> {
        let bytes = std::fs::read(path)?;
        GroundTruth::from_bytes(&bytes, expected_fingerprint)
    }

    /// The cache entry point the sweeps use: load `path` if it holds valid
    /// ground truth for exactly this `(data, queries, metric, k)` workload
    /// (the [`fingerprint`] decides), otherwise compute it fresh and rewrite
    /// the cache. Any load failure — missing file, corruption, old format
    /// version, stale fingerprint — falls back to recomputation; only a
    /// failure to *write* the fresh result is an error.
    ///
    /// The metric must carry a stable on-disk identity
    /// ([`SnapshotMetric`]), which keys the fingerprint; wrap-free `L_p`
    /// metrics qualify, `Counting` deliberately does not (instrument the
    /// computation by wrapping the dataset instead).
    pub fn compute_or_load<P, M>(
        path: impl AsRef<Path>,
        data: &Dataset<P, M>,
        queries: &[P],
        k: usize,
    ) -> Result<(Self, CacheStatus), GroundTruthError>
    where
        P: AsRef<[f64]> + Sync,
        M: Metric<P> + SnapshotMetric + Sync,
    {
        let fp = fingerprint(data.points(), queries, M::TAG.code(), k);
        if let Ok(gt) = GroundTruth::load(&path, fp) {
            return Ok((gt, CacheStatus::Hit));
        }
        let gt = GroundTruth::compute(data, queries, k);
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        gt.save(&path, fp)?;
        Ok((gt, CacheStatus::Miss))
    }

    /// Exact ground truth for a seeded sample of the query set — the
    /// million-point escape hatch: at `n = 10^6`, full ground truth for
    /// thousands of queries costs billions of distance computations, but
    /// recall estimated on a few hundred sampled queries already has a
    /// standard error below a percentage point. Returns the truth plus the
    /// **ascending** sampled indices ([`sample_indices`]) so callers can
    /// line their own answers up against it.
    pub fn compute_sampled<P: Sync + Clone, M: Metric<P> + Sync>(
        data: &Dataset<P, M>,
        queries: &[P],
        k: usize,
        sample_seed: u64,
        sample_count: usize,
    ) -> (Self, Vec<usize>) {
        let picked = sample_indices(queries.len(), sample_count, sample_seed);
        let sampled: Vec<P> = picked.iter().map(|&i| queries[i].clone()).collect();
        (GroundTruth::compute(data, &sampled, k), picked)
    }

    /// [`GroundTruth::compute_or_load`] for a sampled query set: the cache
    /// file reuses the `PGGTSNAP` format verbatim (with `m` = sample
    /// count), keyed by [`fingerprint_sampled`] — the sample seed and
    /// count are folded into the fingerprint, so a cache computed for a
    /// different sample, a different full query set, or the *unsampled*
    /// workload is structurally impossible to serve. Same fallback rules
    /// as the full-truth entry point.
    pub fn compute_or_load_sampled<P, M>(
        path: impl AsRef<Path>,
        data: &Dataset<P, M>,
        queries: &[P],
        k: usize,
        sample_seed: u64,
        sample_count: usize,
    ) -> Result<(Self, Vec<usize>, CacheStatus), GroundTruthError>
    where
        P: AsRef<[f64]> + Sync + Clone,
        M: Metric<P> + SnapshotMetric + Sync,
    {
        let fp = fingerprint_sampled(
            data.points(),
            queries,
            M::TAG.code(),
            k,
            sample_seed,
            sample_count,
        );
        let picked = sample_indices(queries.len(), sample_count, sample_seed);
        if let Ok(gt) = GroundTruth::load(&path, fp) {
            return Ok((gt, picked, CacheStatus::Hit));
        }
        let sampled: Vec<P> = picked.iter().map(|&i| queries[i].clone()).collect();
        let gt = GroundTruth::compute(data, &sampled, k);
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        gt.save(&path, fp)?;
        Ok((gt, picked, CacheStatus::Miss))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::{Euclidean, FlatPoints, FlatRow};

    fn grid(n: usize) -> Dataset<FlatRow, Euclidean> {
        FlatPoints::from_fn(n, 2, |i, out| {
            out.push((i % 8) as f64);
            out.push((i / 8) as f64);
        })
        .into_dataset(Euclidean)
    }

    fn queries() -> Vec<FlatRow> {
        (0..6)
            .map(|i| FlatRow::from(vec![i as f64 * 1.3, 2.0 - i as f64 * 0.4]))
            .collect()
    }

    #[test]
    fn compute_matches_k_nearest_brute_per_query() {
        let ds = grid(40);
        let qs = queries();
        let gt = GroundTruth::compute(&ds, &qs, 5);
        assert_eq!(gt.k(), 5);
        assert_eq!(gt.queries(), qs.len());
        for (i, q) in qs.iter().enumerate() {
            let want = ds.k_nearest_brute(q, 5);
            let ids: Vec<u32> = want.iter().map(|&(id, _)| id as u32).collect();
            let dists: Vec<f64> = want.iter().map(|&(_, d)| d).collect();
            assert_eq!(gt.ids_for(i), &ids[..]);
            assert_eq!(gt.dists_for(i), &dists[..]);
            assert_eq!(gt.threshold(i), dists[4]);
            assert_eq!(gt.nearest_dist(i), dists[0]);
        }
    }

    #[test]
    fn compute_is_thread_count_invariant() {
        let ds = grid(50);
        let qs = queries();
        let one = rayon::with_threads(1, || GroundTruth::compute(&ds, &qs, 4));
        let machine = std::thread::available_parallelism().map_or(1, |t| t.get());
        for threads in [2, machine] {
            let t = rayon::with_threads(threads, || GroundTruth::compute(&ds, &qs, 4));
            assert_eq!(one, t, "diverged at {threads} threads");
        }
    }

    #[test]
    fn bytes_round_trip_and_every_corruption_is_typed() {
        let ds = grid(30);
        let qs = queries();
        let gt = GroundTruth::compute(&ds, &qs, 3);
        let fp = fingerprint(ds.points(), &qs, 0, 3);
        let bytes = gt.to_bytes(fp);
        assert_eq!(GroundTruth::from_bytes(&bytes, fp).unwrap(), gt);

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            GroundTruth::from_bytes(&bad, fp),
            Err(GroundTruthError::BadMagic)
        ));
        // Future version.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            GroundTruth::from_bytes(&bad, fp),
            Err(GroundTruthError::UnsupportedVersion(9))
        ));
        // Every truncation point fails with a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                GroundTruth::from_bytes(&bytes[..cut], fp).is_err(),
                "truncation at {cut} was accepted"
            );
        }
        // Every payload byte flip is caught by the checksum.
        for i in 12..bytes.len() - 8 {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(matches!(
                GroundTruth::from_bytes(&bad, fp),
                Err(GroundTruthError::ChecksumMismatch)
            ));
        }
        // A fingerprint for a different workload is rejected.
        assert!(matches!(
            GroundTruth::from_bytes(&bytes, fp ^ 1),
            Err(GroundTruthError::FingerprintMismatch)
        ));
    }

    #[test]
    fn fingerprint_matches_pg_store_checksum_constants() {
        // The shared incremental hasher must agree with the store's
        // one-shot function: fold the same byte stream both ways.
        let stream: Vec<u8> = (0u16..500).flat_map(|x| x.to_le_bytes()).collect();
        let mut inc = pg_store::Fnv64::new();
        inc.update(&stream[..123]);
        inc.update(&stream[123..]);
        assert_eq!(inc.finish(), pg_store::checksum(&stream));
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_input() {
        let ds = grid(20);
        let qs = queries();
        let base = fingerprint(ds.points(), &qs, 0, 3);
        assert_ne!(base, fingerprint(ds.points(), &qs, 1, 3), "metric code");
        assert_ne!(base, fingerprint(ds.points(), &qs, 0, 4), "k");
        assert_ne!(base, fingerprint(qs.as_slice(), &qs, 0, 3), "points");
        let fewer = &qs[..5];
        assert_ne!(base, fingerprint(ds.points(), fewer, 0, 3), "queries");
        // Swapping the roles of points and queries must not collide.
        let swapped = fingerprint(&qs, ds.points(), 0, 3);
        assert_ne!(base, swapped, "points/queries domain separation");
    }

    #[test]
    fn compute_or_load_misses_then_hits_then_detects_staleness() {
        let dir = std::env::temp_dir().join(format!("pg_eval_gt_test_{}", std::process::id()));
        let path = dir.join("gt.pggt");
        let ds = grid(25);
        let qs = queries();
        let (first, st1) = GroundTruth::compute_or_load(&path, &ds, &qs, 2).unwrap();
        assert_eq!(st1, CacheStatus::Miss);
        let (second, st2) = GroundTruth::compute_or_load(&path, &ds, &qs, 2).unwrap();
        assert_eq!(st2, CacheStatus::Hit);
        assert_eq!(first, second);
        // A different k is a different workload: the stale file is replaced.
        let (third, st3) = GroundTruth::compute_or_load(&path, &ds, &qs, 3).unwrap();
        assert_eq!(st3, CacheStatus::Miss);
        assert_eq!(third.k(), 3);
        // And the rewritten cache now hits for the new workload.
        let (_, st4) = GroundTruth::compute_or_load(&path, &ds, &qs, 3).unwrap();
        assert_eq!(st4, CacheStatus::Hit);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "exceeds the dataset size")]
    fn compute_rejects_oversized_k() {
        let ds = grid(4);
        let _ = GroundTruth::compute(&ds, &queries(), 5);
    }

    #[test]
    fn sample_indices_are_a_deterministic_ascending_subset() {
        let picked = sample_indices(100, 17, 9);
        assert_eq!(picked, sample_indices(100, 17, 9), "same seed, same sample");
        assert_ne!(picked, sample_indices(100, 17, 10), "seed changes sample");
        assert_eq!(picked.len(), 17);
        assert!(
            picked.windows(2).all(|w| w[0] < w[1]),
            "ascending, distinct"
        );
        assert!(picked.iter().all(|&i| i < 100), "in range");
        // Sampling everything is the identity.
        assert_eq!(sample_indices(6, 6, 3), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn compute_sampled_is_full_truth_restricted_to_the_sample() {
        let ds = grid(40);
        let qs = queries();
        let full = GroundTruth::compute(&ds, &qs, 4);
        let (sampled, picked) = GroundTruth::compute_sampled(&ds, &qs, 4, 7, 3);
        assert_eq!(sampled.queries(), 3);
        for (row, &q) in picked.iter().enumerate() {
            assert_eq!(sampled.ids_for(row), full.ids_for(q));
            assert_eq!(sampled.dists_for(row), full.dists_for(q));
        }
    }

    #[test]
    fn sampled_and_full_fingerprints_never_collide() {
        let ds = grid(30);
        let qs = queries();
        let full = fingerprint(ds.points(), &qs, 0, 3);
        let sampled = fingerprint_sampled(ds.points(), &qs, 0, 3, 0, qs.len());
        // Even a sample of *all* queries keys a different cache than the
        // full truth: the GTSAMPLE domain tag separates them.
        assert_ne!(full, sampled, "sampled/full domain separation");
        // Seed and count each key their own cache.
        assert_ne!(
            sampled,
            fingerprint_sampled(ds.points(), &qs, 0, 3, 1, qs.len()),
            "sample seed"
        );
        assert_ne!(
            sampled,
            fingerprint_sampled(ds.points(), &qs, 0, 3, 0, qs.len() - 1),
            "sample count"
        );
        // And the full-workload inputs still matter.
        assert_ne!(
            sampled,
            fingerprint_sampled(ds.points(), &qs, 1, 3, 0, qs.len()),
            "metric code"
        );
        assert_ne!(
            sampled,
            fingerprint_sampled(ds.points(), &qs[..5], 0, 3, 0, 5),
            "full query set"
        );
    }

    #[test]
    fn sampled_cache_every_corruption_is_typed() {
        let ds = grid(30);
        let qs = queries();
        let (gt, _) = GroundTruth::compute_sampled(&ds, &qs, 3, 5, 4);
        let fp = fingerprint_sampled(ds.points(), &qs, 0, 3, 5, 4);
        let bytes = gt.to_bytes(fp);
        assert_eq!(GroundTruth::from_bytes(&bytes, fp).unwrap(), gt);

        // Every truncation point fails with a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                GroundTruth::from_bytes(&bytes[..cut], fp).is_err(),
                "truncation at {cut} was accepted"
            );
        }
        // Every payload byte flip is caught by the checksum.
        for i in 12..bytes.len() - 8 {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(matches!(
                GroundTruth::from_bytes(&bad, fp),
                Err(GroundTruthError::ChecksumMismatch)
            ));
        }
        // A full-truth reader rejects a sampled cache outright.
        let full_fp = fingerprint(ds.points(), &qs, 0, 3);
        assert!(matches!(
            GroundTruth::from_bytes(&bytes, full_fp),
            Err(GroundTruthError::FingerprintMismatch)
        ));
    }

    #[test]
    fn compute_or_load_sampled_misses_hits_and_reseeds() {
        let dir =
            std::env::temp_dir().join(format!("pg_eval_gt_sampled_test_{}", std::process::id()));
        let path = dir.join("gt_sampled.pggt");
        let ds = grid(25);
        let qs = queries();
        let (first, idx1, st1) =
            GroundTruth::compute_or_load_sampled(&path, &ds, &qs, 2, 3, 4).unwrap();
        assert_eq!(st1, CacheStatus::Miss);
        let (second, idx2, st2) =
            GroundTruth::compute_or_load_sampled(&path, &ds, &qs, 2, 3, 4).unwrap();
        assert_eq!(st2, CacheStatus::Hit);
        assert_eq!(first, second);
        assert_eq!(idx1, idx2);
        // A different sample seed is a different workload: miss + rewrite.
        let (_, idx3, st3) =
            GroundTruth::compute_or_load_sampled(&path, &ds, &qs, 2, 4, 4).unwrap();
        assert_eq!(st3, CacheStatus::Miss);
        assert_ne!(idx1, idx3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
