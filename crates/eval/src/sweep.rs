//! The quality–cost frontier driver: walk a parameter axis through batched
//! searches and score every point against exact ground truth.
//!
//! A recall/QPS *frontier* is the methodology of the empirical
//! proximity-graph literature (FCPG, the monotonic-PG study, and every
//! ANN-benchmarks plot): one index traces a curve by sweeping its search
//! effort knob, and indexes are compared curve-against-curve, never at a
//! single arbitrary operating point. [`FrontierSweep`] drives two axes:
//!
//! * **beam width `ef`** ([`FrontierSweep::run`]) — the practical knob,
//!   swept through any [`SweepSearch`] adapter (graph indexes route through
//!   [`QueryEngine::batch_beam_detailed`]);
//! * **greedy distance budget** ([`FrontierSweep::run_greedy_budget`]) —
//!   the *paper's* knob: the budgeted `query(p_start, q, Q)` of Section
//!   1.1, swept through [`QueryEngine::batch_query`].
//!
//! Every frontier point separates its **deterministic** fields — the
//! [`Score`]: recall, mean distance ratio, success@ε, distance comps, hops
//! — from the one wall-clock field (`qps`). Scores are pure functions of
//! `(index, data, queries, axis value)` and therefore identical at every
//! thread count (the adapters and the engine guarantee order-preserving,
//! walk-identical parallelism); the evaluation harness exploits exactly
//! this split to assert thread-count invariance of everything it reports
//! before timing anything.

use std::time::Instant;

use pg_baselines::SweepSearch;
use pg_core::{BeamOutcome, QueryEngine};
use pg_metric::{Dataset, Metric};

use crate::metrics::{mean_distance_ratio, recall_at_k, success_at_eps};
use crate::truth::GroundTruth;

/// The deterministic half of a frontier point: every quality/cost metric,
/// none of the wall clock. `PartialEq` so thread-count invariance is a
/// plain equality assertion (all fields are exact means of exact per-query
/// values — no wall-clock noise, no accumulation-order ambiguity: the
/// summation order over queries is fixed by input order).
#[derive(Debug, Clone, PartialEq)]
pub struct Score {
    /// Mean recall@k over the query set (see
    /// [`recall_at_k`]).
    pub recall: f64,
    /// Mean over queries of the per-query mean distance ratio (see
    /// [`mean_distance_ratio`]); `f64::INFINITY` if any query got an
    /// infinitely bad answer.
    pub mean_dist_ratio: f64,
    /// Fraction of queries whose best answer was a `(1+ε)`-ANN (see
    /// [`success_at_eps`]).
    pub success_at_eps: f64,
    /// Mean distance computations per query — the paper's cost model.
    pub dist_comps: f64,
    /// Mean graph-walk length per query: beam expansions, or greedy hops.
    pub hops: f64,
}

/// One point of a quality–cost frontier: the axis value, the deterministic
/// [`Score`], and the measured throughput.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// The swept parameter value (`ef`, or the greedy budget).
    pub param: f64,
    /// The deterministic quality/cost metrics at this parameter.
    pub score: Score,
    /// Queries per second of the timed batch (wall clock; the only
    /// non-deterministic field).
    pub qps: f64,
}

/// Sweep configuration: result size `k`, the `ef` axis, and the ε used by
/// the success@ε column.
///
/// The default ε is `1.0` — success@1 is exactly the paper's 2-ANN
/// guarantee (Fact 2.1 with ε = 1), so the column reads as "fraction of
/// queries on which the index empirically delivered what `G_net(ε = 1)`
/// proves".
#[derive(Debug, Clone)]
pub struct FrontierSweep {
    /// Results requested per query; must equal the ground truth's `k`.
    pub k: usize,
    /// The `ef` values [`FrontierSweep::run`] walks, in order.
    pub ef_values: Vec<usize>,
    /// The ε of the success@ε column.
    pub eps: f64,
}

impl FrontierSweep {
    /// A sweep at result size `k` over the given `ef` axis, with ε = 1.
    pub fn new(k: usize, ef_values: Vec<usize>) -> Self {
        assert!(k >= 1, "sweeps need k >= 1");
        assert!(!ef_values.is_empty(), "sweeps need at least one ef value");
        FrontierSweep {
            k,
            ef_values,
            eps: 1.0,
        }
    }

    /// Overrides the success@ε threshold.
    pub fn with_eps(mut self, eps: f64) -> Self {
        assert!(eps >= 0.0);
        self.eps = eps;
        self
    }

    /// Scores a batch of per-query outcomes against ground truth (no
    /// search, no timing — pure arithmetic).
    pub fn score_outcomes(&self, truth: &GroundTruth, outcomes: &[BeamOutcome]) -> Score {
        assert_eq!(
            outcomes.len(),
            truth.queries(),
            "one outcome per ground-truth query required"
        );
        assert_eq!(
            truth.k(),
            self.k,
            "ground truth must be computed at the sweep's k"
        );
        let m = outcomes.len() as f64;
        let mut recall = 0.0;
        let mut ratio = 0.0;
        let mut success = 0.0;
        let mut comps = 0.0;
        let mut hops = 0.0;
        for (q, out) in outcomes.iter().enumerate() {
            recall += recall_at_k(truth, q, &out.results);
            ratio += mean_distance_ratio(truth, q, &out.results);
            success += success_at_eps(truth, q, &out.results, self.eps) as u32 as f64;
            comps += out.dist_comps as f64;
            hops += out.expansions as f64;
        }
        Score {
            recall: recall / m,
            mean_dist_ratio: ratio / m,
            success_at_eps: success / m,
            dist_comps: comps / m,
            hops: hops / m,
        }
    }

    /// Runs one axis point without timing: batch-search at `ef`, score the
    /// outcomes. This is the deterministic core — the invariance-checking
    /// harness calls it under different thread pools and asserts the
    /// returned [`Score`]s are identical.
    pub fn score_at<P, M, I>(
        &self,
        index: &I,
        data: &Dataset<P, M>,
        queries: &[P],
        truth: &GroundTruth,
        ef: usize,
    ) -> Score
    where
        P: Sync,
        M: Metric<P> + Sync,
        I: SweepSearch<P, M> + ?Sized,
    {
        let outcomes = index.search_batch(data, queries, ef, self.k);
        self.score_outcomes(truth, &outcomes)
    }

    /// Walks the `ef` axis: at each value, one timed
    /// [`SweepSearch::search_batch`] call scored against `truth`. Returns
    /// one [`FrontierPoint`] per `ef`, in axis order.
    pub fn run<P, M, I>(
        &self,
        index: &I,
        data: &Dataset<P, M>,
        queries: &[P],
        truth: &GroundTruth,
    ) -> Vec<FrontierPoint>
    where
        P: Sync,
        M: Metric<P> + Sync,
        I: SweepSearch<P, M> + ?Sized,
    {
        self.ef_values
            .iter()
            .map(|&ef| {
                // pg-lint: allow(no-nondeterminism, wall-clock feeds the advisory qps field only, never a Score)
                let t0 = Instant::now();
                let outcomes = index.search_batch(data, queries, ef, self.k);
                let secs = t0.elapsed().as_secs_f64();
                FrontierPoint {
                    param: ef as f64,
                    score: self.score_outcomes(truth, &outcomes),
                    qps: queries.len() as f64 / secs.max(1e-12),
                }
            })
            .collect()
    }

    /// Walks the **greedy budget** axis of the paper's Section 1.1 `query`:
    /// at each budget `Q`, one timed [`QueryEngine::batch_query`] call.
    /// This frontier is scored at `k = 1` regardless of the sweep's `k`
    /// (greedy returns a single vertex); ground truth of any `k >= 1` works
    /// because only the nearest-neighbor distance is consulted. Hops are
    /// the greedy hop count (`hops.len() - 1`), and the same tie-safe
    /// threshold convention as [`recall_at_k`] applies: a returned vertex
    /// exactly as close as the true NN is a hit.
    pub fn run_greedy_budget<P: Sync, M: Metric<P> + Sync>(
        &self,
        engine: &QueryEngine<P, M>,
        starts: &[u32],
        queries: &[P],
        truth: &GroundTruth,
        budgets: &[u64],
    ) -> Vec<FrontierPoint> {
        assert_eq!(queries.len(), truth.queries());
        let m = queries.len() as f64;
        budgets
            .iter()
            .map(|&budget| {
                // pg-lint: allow(no-nondeterminism, wall-clock feeds the advisory qps field only, never a Score)
                let t0 = Instant::now();
                let batch = engine.batch_query(starts, queries, budget);
                let secs = t0.elapsed().as_secs_f64();
                let mut recall = 0.0;
                let mut ratio = 0.0;
                let mut success = 0.0;
                let mut hops = 0.0;
                for (q, out) in batch.outcomes.iter().enumerate() {
                    let nn = truth.nearest_dist(q);
                    recall += (out.result_dist <= nn) as u32 as f64;
                    ratio += if nn > 0.0 {
                        out.result_dist / nn
                    } else if out.result_dist == 0.0 {
                        1.0
                    } else {
                        f64::INFINITY
                    };
                    success += (out.result_dist <= (1.0 + self.eps) * nn) as u32 as f64;
                    hops += (out.hops.len() - 1) as f64;
                }
                FrontierPoint {
                    param: budget as f64,
                    score: Score {
                        recall: recall / m,
                        mean_dist_ratio: ratio / m,
                        success_at_eps: success / m,
                        dist_comps: batch.dist_comps as f64 / m,
                        hops: hops / m,
                    },
                    qps: m / secs.max(1e-12),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_baselines::{BruteIndex, GraphIndex};
    use pg_core::GNet;
    use pg_metric::{Euclidean, FlatPoints, FlatRow};

    fn workload() -> (Dataset<FlatRow, Euclidean>, Vec<FlatRow>) {
        let data = FlatPoints::from_fn(120, 2, |i, out| {
            out.push((i % 11) as f64 * 1.7);
            out.push((i / 11) as f64 * 1.3);
        })
        .into_dataset(Euclidean);
        let queries: Vec<FlatRow> = (0..20)
            .map(|i| FlatRow::from(vec![i as f64 * 0.83, (20 - i) as f64 * 0.61]))
            .collect();
        (data, queries)
    }

    #[test]
    fn brute_force_frontier_is_exact_at_every_axis_point() {
        let (data, queries) = workload();
        let truth = GroundTruth::compute(&data, &queries, 5);
        let sweep = FrontierSweep::new(5, vec![1, 8, 64]);
        for p in sweep.run(&BruteIndex, &data, &queries, &truth) {
            assert_eq!(p.score.recall, 1.0);
            assert_eq!(p.score.mean_dist_ratio, 1.0);
            assert_eq!(p.score.success_at_eps, 1.0);
            assert_eq!(p.score.dist_comps, 120.0);
            assert_eq!(p.score.hops, 0.0);
        }
    }

    #[test]
    fn graph_frontier_recall_is_monotone_enough_and_costs_grow() {
        let (data, queries) = workload();
        let truth = GroundTruth::compute(&data, &queries, 3);
        let pg = GNet::build(&data, 1.0);
        let index = GraphIndex::new(pg.graph);
        let sweep = FrontierSweep::new(3, vec![3, 120]);
        let pts = sweep.run(&index, &data, &queries, &truth);
        // A beam as wide as the dataset on a connected graph is near-exact;
        // recall must not *decrease* from ef = 3 to ef = n.
        assert!(pts[1].score.recall >= pts[0].score.recall);
        assert!(pts[1].score.dist_comps > pts[0].score.dist_comps);
        assert!(
            pts[1].score.recall > 0.9,
            "ef = n recall {}",
            pts[1].score.recall
        );
    }

    #[test]
    fn scores_are_thread_count_invariant() {
        let (data, queries) = workload();
        let truth = GroundTruth::compute(&data, &queries, 4);
        let pg = GNet::build(&data, 1.0);
        let index = GraphIndex::new(pg.graph);
        let sweep = FrontierSweep::new(4, vec![2, 9]);
        let machine = std::thread::available_parallelism().map_or(1, |t| t.get());
        let base: Vec<Score> = rayon::with_threads(1, || {
            sweep
                .ef_values
                .iter()
                .map(|&ef| sweep.score_at(&index, &data, &queries, &truth, ef))
                .collect()
        });
        for threads in [2, machine] {
            let got: Vec<Score> = rayon::with_threads(threads, || {
                sweep
                    .ef_values
                    .iter()
                    .map(|&ef| sweep.score_at(&index, &data, &queries, &truth, ef))
                    .collect()
            });
            assert_eq!(base, got, "scores diverged at {threads} threads");
        }
    }

    #[test]
    fn greedy_budget_frontier_improves_with_budget() {
        let (data, queries) = workload();
        let truth = GroundTruth::compute(&data, &queries, 1);
        let pg = GNet::build(&data, 1.0);
        let engine = QueryEngine::new(pg.graph, data);
        let starts: Vec<u32> = (0..queries.len()).map(|i| (i * 31 % 120) as u32).collect();
        let sweep = FrontierSweep::new(1, vec![1]);
        let pts = sweep.run_greedy_budget(&engine, &starts, &queries, &truth, &[1, 1_000_000]);
        assert!(pts[1].score.recall >= pts[0].score.recall);
        assert!(pts[1].score.dist_comps >= pts[0].score.dist_comps);
        // An effectively unbounded budget lets greedy self-terminate: on a
        // (1+1)-PG every query must be a 2-ANN (success at the default eps).
        assert_eq!(pts[1].score.success_at_eps, 1.0);
        // Budget 1 pins the walk to its start vertex: exactly one distance
        // computation, zero hops.
        assert_eq!(pts[0].score.dist_comps, 1.0);
        assert_eq!(pts[0].score.hops, 0.0);
    }

    #[test]
    #[should_panic(expected = "ground truth must be computed at the sweep's k")]
    fn mismatched_truth_k_is_rejected() {
        let (data, queries) = workload();
        let truth = GroundTruth::compute(&data, &queries, 2);
        let sweep = FrontierSweep::new(3, vec![4]);
        let _ = sweep.score_at(&BruteIndex, &data, &queries, &truth, 4);
    }
}
