//! Answer-quality metrics: recall@k, mean distance ratio, and success@ε,
//! each scored against exact [`GroundTruth`].
//!
//! # Why hits are decided by distance threshold, not id membership
//!
//! When several data points tie at the `k`-th smallest distance, the exact
//! top-`k` *set* is not unique — brute force breaks the tie by id, an index
//! may legitimately break it the other way, and counting that answer as a
//! miss would punish an index for returning a point exactly as close. All
//! metrics here therefore follow the ANN-benchmarks convention: a returned
//! point is a **hit** iff its true distance is at most the `k`-th
//! ground-truth distance ([`GroundTruth::threshold`]).
//!
//! No epsilon fudge is needed on that comparison, which is unusual and
//! worth explaining (`ARCHITECTURE.md` § Measurement strategy): every
//! search routine in this workspace *compares* in the metric's monotone
//! surrogate space and reports `dist_from_surrogate(surrogate(p, q))` — and
//! so does the brute-force scan behind [`GroundTruth`]. Both sides of the
//! threshold comparison are the same deterministic function of the same
//! coordinates, so equal points produce bit-equal distances, and exact
//! `f64` comparison is tie-safe. An epsilon would only be needed if ground
//! truth and index computed distances through different kernels.

use crate::truth::GroundTruth;

/// Recall@k of one query's result list against the exact top-`k`:
/// `hits / k`, where a result is a hit iff its distance is at most
/// [`GroundTruth::threshold`] (see the module docs for the tie rationale).
/// Only the first `k` results are considered; shorter lists simply score
/// lower. Always in `[0, 1]`.
///
/// ```
/// use pg_eval::{recall_at_k, GroundTruth};
/// use pg_metric::{Dataset, Euclidean};
///
/// let data = Dataset::new((0..10).map(|i| vec![i as f64]).collect(), Euclidean);
/// let queries = vec![vec![2.25], vec![7.9]];
/// let truth = GroundTruth::compute(&data, &queries, 2);
///
/// // Query 0's exact 2-NN are ids {2, 3}. Returning both is recall 1.0 …
/// assert_eq!(recall_at_k(&truth, 0, &[(2, 0.25), (3, 0.75)]), 1.0);
/// // … one of them plus a farther point is 0.5 …
/// assert_eq!(recall_at_k(&truth, 0, &[(2, 0.25), (5, 2.75)]), 0.5);
/// // … and brute force against itself is exact by construction.
/// let brute: Vec<(u32, f64)> = data
///     .k_nearest_brute(&queries[1], 2)
///     .into_iter()
///     .map(|(i, d)| (i as u32, d))
///     .collect();
/// assert_eq!(recall_at_k(&truth, 1, &brute), 1.0);
/// ```
pub fn recall_at_k(truth: &GroundTruth, q: usize, results: &[(u32, f64)]) -> f64 {
    let thr = truth.threshold(q);
    let hits = results
        .iter()
        .take(truth.k())
        .filter(|&&(_, d)| d <= thr)
        .count();
    hits as f64 / truth.k() as f64
}

/// Mean distance ratio of one query's result list: the average of
/// `result_dist[j] / truth_dist[j]` over the ranks both lists cover (both
/// are ascending, so rank-wise pairing is the natural alignment). A perfect
/// answer scores exactly 1.0; 1.05 means returned neighbors are on average
/// 5% farther than optimal — a graded signal where recall is all-or-nothing
/// per rank.
///
/// Edge cases, chosen so the metric stays monotone and finite-data-safe:
/// a rank where the true distance is `0` scores `1.0` if the result
/// distance is also `0` and `f64::INFINITY` otherwise; an empty result list
/// scores `f64::INFINITY` (no answer is infinitely bad, not vacuously
/// perfect). Ranks beyond `results.len()` are not scored — recall already
/// penalizes short lists.
pub fn mean_distance_ratio(truth: &GroundTruth, q: usize, results: &[(u32, f64)]) -> f64 {
    let truth_d = truth.dists_for(q);
    let n = results.len().min(truth_d.len());
    if n == 0 {
        return f64::INFINITY;
    }
    let mut sum = 0.0;
    for j in 0..n {
        let got = results[j].1;
        let want = truth_d[j];
        sum += if want > 0.0 {
            got / want
        } else if got == 0.0 {
            1.0
        } else {
            return f64::INFINITY;
        };
    }
    sum / n as f64
}

/// Success@ε of one query: whether the best returned point is a
/// `(1+ε)`-approximate nearest neighbor, i.e. `results[0].dist <= (1+ε) ·
/// d(q, NN(q))` — the paper's per-query guarantee notion (Fact 2.1 promises
/// this with ε from the construction; this measures it empirically). An
/// empty result list fails.
pub fn success_at_eps(truth: &GroundTruth, q: usize, results: &[(u32, f64)], eps: f64) -> bool {
    match results.first() {
        Some(&(_, d)) => d <= (1.0 + eps) * truth.nearest_dist(q),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::{Dataset, Euclidean};

    // Query 0 sits at 3.25: its distances to the integer line are exactly
    // representable (0.25, 0.75, 1.25, …), so the tests can assert with
    // literals instead of tolerances.
    fn line_truth(k: usize) -> (Dataset<Vec<f64>, Euclidean>, Vec<Vec<f64>>, GroundTruth) {
        let data = Dataset::new((0..12).map(|i| vec![i as f64]).collect(), Euclidean);
        let queries = vec![vec![3.25], vec![0.0], vec![11.0]];
        let truth = GroundTruth::compute(&data, &queries, k);
        (data, queries, truth)
    }

    #[test]
    fn recall_counts_threshold_ties_as_hits() {
        // Query at 4.0: distances to ids 3 and 5 tie at 1.0; the exact
        // top-2 set {4, 3} is not unique, and an index returning {4, 5}
        // must score recall 1.0, not 0.5.
        let data = Dataset::new((0..8).map(|i| vec![i as f64]).collect(), Euclidean);
        let queries = vec![vec![4.0]];
        let truth = GroundTruth::compute(&data, &queries, 2);
        assert_eq!(truth.ids_for(0), &[4, 3]); // brute breaks the tie by id
        assert_eq!(recall_at_k(&truth, 0, &[(4, 0.0), (5, 1.0)]), 1.0);
        assert_eq!(recall_at_k(&truth, 0, &[(4, 0.0), (6, 2.0)]), 0.5);
    }

    #[test]
    fn recall_handles_short_and_long_result_lists() {
        let (_, _, truth) = line_truth(3);
        // Short list: only the returned ranks can hit.
        assert_eq!(recall_at_k(&truth, 0, &[(3, 0.25)]), 1.0 / 3.0);
        // Long list: ranks beyond k are ignored, recall never exceeds 1.
        let long = [(3, 0.25), (4, 0.75), (2, 1.25), (5, 1.75), (1, 2.25)];
        assert_eq!(recall_at_k(&truth, 0, &long), 1.0);
        assert_eq!(recall_at_k(&truth, 0, &[]), 0.0);
    }

    #[test]
    fn mean_ratio_is_one_for_exact_answers_and_grades_misses() {
        let (data, queries, truth) = line_truth(2);
        let exact: Vec<(u32, f64)> = data
            .k_nearest_brute(&queries[0], 2)
            .into_iter()
            .map(|(i, d)| (i as u32, d))
            .collect();
        assert_eq!(mean_distance_ratio(&truth, 0, &exact), 1.0);
        // Returning {4, 5} for the query at 3.25 (truth dists 0.25, 0.75):
        // ratios 0.75/0.25 and 1.75/0.75.
        let near_miss = [(4, 0.75), (5, 1.75)];
        let want = (0.75 / 0.25 + 1.75 / 0.75) / 2.0;
        assert!((mean_distance_ratio(&truth, 0, &near_miss) - want).abs() < 1e-12);
        assert_eq!(mean_distance_ratio(&truth, 0, &[]), f64::INFINITY);
    }

    #[test]
    fn mean_ratio_zero_distance_edge_cases() {
        // Query sitting exactly on a data point: true NN distance is 0.
        let (_, _, truth) = line_truth(2);
        // Query 1 is at 0.0 → truth dists [0, 1].
        assert_eq!(truth.nearest_dist(1), 0.0);
        assert_eq!(mean_distance_ratio(&truth, 1, &[(0, 0.0), (1, 1.0)]), 1.0);
        assert_eq!(
            mean_distance_ratio(&truth, 1, &[(1, 1.0), (2, 2.0)]),
            f64::INFINITY
        );
    }

    #[test]
    fn success_at_eps_matches_the_ann_definition() {
        let (_, _, truth) = line_truth(1);
        // Query at 3.25: exact NN dist 0.25. A result at 0.75 is exactly a
        // 3-ANN, so it succeeds at eps = 2 (boundary inclusive, and exact
        // here: 3 * 0.25 == 0.75 in f64)…
        assert!(success_at_eps(&truth, 0, &[(4, 0.75)], 2.0));
        // …but not at any smaller eps.
        assert!(!success_at_eps(&truth, 0, &[(4, 0.75)], 1.9));
        // Exact answers succeed at eps = 0; empty results never do.
        assert!(success_at_eps(&truth, 0, &[(3, 0.25)], 0.0));
        assert!(!success_at_eps(&truth, 0, &[], 10.0));
        // Zero true distance: only an exact hit succeeds.
        assert!(success_at_eps(&truth, 1, &[(0, 0.0)], 0.0));
        assert!(!success_at_eps(&truth, 1, &[(1, 1.0)], 0.5));
    }
}
