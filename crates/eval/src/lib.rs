//! Evaluation subsystem: the workspace scores itself.
//!
//! The paper's empirical claims — and those of the proximity-graph
//! literature it builds on (FCPG, the monotonic-PG study) — are about the
//! **trade-off** between answer quality and search cost, not about raw
//! speed: a regression that returns the wrong neighbors faster is a loss,
//! and only a harness that measures recall can see it. This crate is that
//! harness, in three layers:
//!
//! * [`truth`] — exact ground truth: parallel brute-force top-`k`
//!   ([`GroundTruth::compute`]), cached in a versioned, checksummed,
//!   fingerprint-keyed file ([`GroundTruth::compute_or_load`]) so repeated
//!   sweeps never pay the `Θ(n · m)` scan twice;
//! * [`metrics`] — answer quality per query: [`recall_at_k`],
//!   [`mean_distance_ratio`], [`success_at_eps`], all scored with the
//!   tie-safe distance-threshold rule (see the [`metrics`] module docs for
//!   why no epsilon fudge is needed);
//! * [`sweep`] — [`FrontierSweep`], which walks a parameter axis (beam
//!   `ef`, or the paper's greedy distance budget) through batched searches
//!   of any [`pg_baselines::SweepSearch`] index and emits
//!   `{recall, qps, dist_comps, hops}` frontier points.
//!
//! The measurement strategy — what is cached, what is asserted
//! deterministic, and how the recall–QPS frontier is read — is documented
//! in `ARCHITECTURE.md` (§ Measurement strategy) and `EXPERIMENTS.md` at
//! the repository root; `exp_recall` in `pg_bench` is the standard-workload
//! driver.
//!
//! # Example: score an index against brute force
//!
//! ```
//! use pg_baselines::{BruteIndex, GraphIndex};
//! use pg_core::GNet;
//! use pg_eval::{FrontierSweep, GroundTruth};
//! use pg_metric::{Euclidean, FlatPoints, FlatRow};
//!
//! // A small grid dataset and a handful of off-grid queries.
//! let data = FlatPoints::from_fn(150, 2, |i, out| {
//!     out.push((i % 15) as f64);
//!     out.push((i / 15) as f64);
//! })
//! .into_dataset(Euclidean);
//! let queries: Vec<FlatRow> = (0..10)
//!     .map(|i| FlatRow::from(vec![i as f64 * 1.4 + 0.3, i as f64 * 0.9 + 0.2]))
//!     .collect();
//!
//! // Exact ground truth (parallel brute force), then a two-point frontier.
//! let truth = GroundTruth::compute(&data, &queries, 3);
//! let sweep = FrontierSweep::new(3, vec![2, 32]);
//!
//! // Brute force scores a perfect 1.0 recall by construction…
//! let brute = sweep.run(&BruteIndex, &data, &queries, &truth);
//! assert!(brute.iter().all(|p| p.score.recall == 1.0));
//!
//! // …and a G_net beam search buys recall with distance computations.
//! let pg = GNet::build(&data, 1.0);
//! let frontier = sweep.run(&GraphIndex::new(pg.graph), &data, &queries, &truth);
//! assert!(frontier[1].score.recall >= frontier[0].score.recall);
//! assert!(frontier[1].score.dist_comps > frontier[0].score.dist_comps);
//! assert!(frontier[1].score.dist_comps < 150.0); // still beats a linear scan
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod sweep;
pub mod truth;

pub use metrics::{mean_distance_ratio, recall_at_k, success_at_eps};
pub use sweep::{FrontierPoint, FrontierSweep, Score};
pub use truth::{
    fingerprint, fingerprint_sampled, sample_indices, CacheStatus, GroundTruth, GroundTruthError,
};
