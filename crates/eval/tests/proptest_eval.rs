//! Property tests for the evaluation subsystem, pinning the two
//! self-check invariants the `exp_recall` harness asserts before trusting
//! any sweep:
//!
//! 1. a frontier swept with the brute-force "algorithm" scores recall@k
//!    **exactly** 1.0 (and mean distance ratio exactly 1.0) at every axis
//!    point, on arbitrary inputs — ground truth agrees with itself;
//! 2. every deterministic metric a sweep reports is **bit-identical**
//!    across thread counts 1 / 2 / the machine's parallelism, for every
//!    index family behind the `SweepSearch` trait.

use pg_baselines::{BruteIndex, GraphIndex, Hnsw, HnswParams, SweepSearch};
use pg_core::{GNet, QueryEngine};
use pg_eval::{FrontierSweep, GroundTruth, Score};
use pg_metric::{Dataset, Euclidean, FlatPoints, FlatRow};
use proptest::prelude::*;

/// A seeded flat dataset plus off-grid queries: coordinates come from a
/// coarse integer lattice scaled by an exact dyadic factor, so exact
/// distance ties are *common* — the adversarial case for recall scoring.
/// Data points are deduplicated (`GNet` requires a finite aspect ratio);
/// queries may repeat and may coincide with data points.
fn workload() -> impl Strategy<Value = (FlatPoints, FlatPoints)> {
    (
        prop::collection::vec((0i32..40, 0i32..40), 30..90),
        prop::collection::vec((0i32..45, 0i32..45), 5..20),
    )
        .prop_map(|(mut pts, qs)| {
            pts.sort_unstable();
            pts.dedup();
            let data = FlatPoints::from_fn(pts.len(), 2, |i, out| {
                out.push(pts[i].0 as f64 * 0.75);
                out.push(pts[i].1 as f64 * 0.75);
            });
            let queries = FlatPoints::from_fn(qs.len(), 2, |i, out| {
                out.push(qs[i].0 as f64 * 0.661);
                out.push(qs[i].1 as f64 * 0.661);
            });
            (data, queries)
        })
}

fn machine_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |t| t.get())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn brute_force_sweep_scores_exactly_one((data, queries) in workload()) {
        let data = data.into_dataset(Euclidean);
        let queries = queries.into_rows();
        let k = 3.min(data.len());
        let truth = GroundTruth::compute(&data, &queries, k);
        let sweep = FrontierSweep::new(k, vec![1, 4, 16]);
        for p in sweep.run(&BruteIndex, &data, &queries, &truth) {
            prop_assert_eq!(p.score.recall, 1.0);
            prop_assert_eq!(p.score.mean_dist_ratio, 1.0);
            prop_assert_eq!(p.score.success_at_eps, 1.0);
            prop_assert_eq!(p.score.dist_comps, data.len() as f64);
        }
    }

    #[test]
    fn scores_are_invariant_across_thread_counts((data, queries) in workload()) {
        let data = data.into_dataset(Euclidean);
        let queries = queries.into_rows();
        let k = 2.min(data.len());
        let truth = GroundTruth::compute(&data, &queries, k);
        let sweep = FrontierSweep::new(k, vec![2, 8]);

        let gnet = GraphIndex::new(GNet::build(&data, 1.0).graph);
        let hnsw = Hnsw::build(&data, HnswParams::default());
        let indexes: Vec<&dyn SweepSearch<FlatRow, Euclidean>> =
            vec![&gnet, &hnsw, &BruteIndex];

        for index in indexes {
            let score_all = |threads: usize| -> Vec<Score> {
                rayon::with_threads(threads, || {
                    sweep
                        .ef_values
                        .iter()
                        .map(|&ef| sweep.score_at(index, &data, &queries, &truth, ef))
                        .collect()
                })
            };
            let base = score_all(1);
            for threads in [2, machine_threads()] {
                prop_assert_eq!(&score_all(threads), &base, "diverged at {} threads", threads);
            }
        }
    }

    #[test]
    fn ground_truth_itself_is_invariant_across_thread_counts((data, queries) in workload()) {
        let data = data.into_dataset(Euclidean);
        let queries = queries.into_rows();
        let k = 4.min(data.len());
        let base = rayon::with_threads(1, || GroundTruth::compute(&data, &queries, k));
        for threads in [2, machine_threads()] {
            let gt = rayon::with_threads(threads, || GroundTruth::compute(&data, &queries, k));
            prop_assert_eq!(&gt, &base, "ground truth diverged at {} threads", threads);
        }
    }

    #[test]
    fn greedy_budget_scores_are_invariant_across_thread_counts((data, queries) in workload()) {
        let data = data.into_dataset(Euclidean);
        let queries = queries.into_rows();
        let truth = GroundTruth::compute(&data, &queries, 1);
        let n = data.len();
        let pg = GNet::build(&data, 1.0);
        let starts: Vec<u32> = (0..queries.len()).map(|i| ((i * 17) % n) as u32).collect();
        let sweep = FrontierSweep::new(1, vec![1]);
        let budgets = [1u64, 8, u64::MAX];
        let run = |threads: usize| -> Vec<Score> {
            rayon::with_threads(threads, || {
                let engine = QueryEngine::new(pg.graph.clone(), data.clone());
                sweep
                    .run_greedy_budget(&engine, &starts, &queries, &truth, &budgets)
                    .into_iter()
                    .map(|p| p.score)
                    .collect()
            })
        };
        let base = run(1);
        // An unbounded budget on a (1+1)-PG must deliver the 2-ANN
        // guarantee on every query, from any start vertex.
        prop_assert_eq!(base[2].success_at_eps, 1.0);
        for threads in [2, machine_threads()] {
            prop_assert_eq!(&run(threads), &base, "diverged at {} threads", threads);
        }
    }
}

/// Non-property regression: scoring through a `Counting`-wrapped dataset
/// leaves the counter consistent with the reported per-query costs (the
/// `exp_compare` wiring relies on this).
#[test]
fn counting_metric_agrees_with_reported_dist_comps() {
    use pg_metric::Counting;

    let flat = FlatPoints::from_fn(60, 2, |i, out| {
        out.push((i % 8) as f64);
        out.push((i / 8) as f64);
    });
    let queries: Vec<FlatRow> = (0..7)
        .map(|i| FlatRow::from(vec![i as f64 * 0.875, i as f64 * 0.375]))
        .collect();
    let data = Dataset::new(flat.clone().into_rows(), Counting::new(Euclidean));
    let truth = GroundTruth::compute(&data, &queries, 2);
    assert_eq!(
        data.metric().take(),
        60 * 7,
        "ground truth costs n per query"
    );

    let sweep = FrontierSweep::new(2, vec![6]);
    let score = sweep.score_at(&BruteIndex, &data, &queries, &truth, 6);
    assert_eq!(
        data.metric().take(),
        score.dist_comps as u64 * queries.len() as u64
    );
}
