//! Empirical doubling-dimension diagnostics.
//!
//! The doubling dimension `λ` of `(M, D)` is the smallest value such that
//! every ball of radius `r` is covered by at most `2^λ` balls of radius
//! `r/2` (Section 1.1). Computing `λ` exactly is NP-hard in general, so this
//! module provides two practical estimators used by the experiments:
//!
//! * [`expansion_log2`] — the (base-2 log of the) *expansion constant*
//!   `max |B(p, 2r)| / |B(p, r)|`, a classical proxy (KR-dimension) that
//!   upper-bounds growth behaviour on the data itself;
//! * [`greedy_cover_log2`] — for a sampled ball `B(p, r)`, greedily covers
//!   its points with balls of radius `r/2` centered at data points and
//!   reports `log2(#balls)`. By the standard net argument a greedy cover
//!   uses at most `2^{2λ}`-ish balls, so this estimates `λ` up to a factor 2
//!   while being exact enough to separate, say, a line (λ=1) from a plane.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::Dataset;
use crate::metric::Metric;

/// The Fact 2.3 / Appendix B packing bound: a set with aspect ratio `A` in a
/// metric space of doubling dimension `λ` has at most `(8A)^λ` points.
///
/// The proof (Appendix B): `B(p, d_max)` is covered by `2^{kλ}` balls of
/// radius `d_max / 2^k`; at `k = 2 + ⌈log A⌉` the radius drops below
/// `d_min / 2`, so each ball holds at most one point, giving
/// `2^{kλ} <= (8A)^λ`.
pub fn packing_bound(aspect_ratio: f64, lambda: f64) -> f64 {
    assert!(aspect_ratio >= 1.0 && lambda >= 0.0);
    (8.0 * aspect_ratio).powf(lambda)
}

/// Maximum over sampled `(p, r)` of `log2(|B(p, 2r)| / |B(p, r)|)`.
///
/// `samples` controls how many `(point, radius)` pairs are probed; radii are
/// drawn from the observed distance distribution. Returns 0 for degenerate
/// datasets. Cost: `O(samples * n)` distances.
pub fn expansion_log2<P, M: Metric<P>>(data: &Dataset<P, M>, samples: usize, seed: u64) -> f64 {
    let n = data.len();
    if n < 2 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst: f64 = 0.0;
    for _ in 0..samples {
        let p = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        let r = if p == j { continue } else { data.dist(p, j) };
        if r <= 0.0 {
            continue;
        }
        let mut small = 0usize;
        let mut big = 0usize;
        for i in 0..n {
            let d = data.dist(p, i);
            if d <= r {
                small += 1;
            }
            if d <= 2.0 * r {
                big += 1;
            }
        }
        if small > 0 {
            worst = worst.max((big as f64 / small as f64).log2());
        }
    }
    worst
}

/// Greedy half-radius cover estimate: samples balls `B(p, r)` and reports the
/// maximum `log2` of the number of radius-`r/2` balls a greedy cover needs.
///
/// Cost: `O(samples * n * cover_size)` distances.
pub fn greedy_cover_log2<P, M: Metric<P>>(data: &Dataset<P, M>, samples: usize, seed: u64) -> f64 {
    let n = data.len();
    if n < 2 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst: f64 = 0.0;
    for _ in 0..samples {
        let p = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if p == j {
            continue;
        }
        let r = data.dist(p, j);
        if r <= 0.0 {
            continue;
        }
        let ball: Vec<usize> = (0..n).filter(|&i| data.dist(p, i) <= r).collect();
        let covers = greedy_half_cover(data, &ball, r / 2.0);
        if covers > 0 {
            worst = worst.max((covers as f64).log2());
        }
    }
    worst
}

/// Number of balls of radius `r_half` (centered at members) that a greedy
/// pass needs to cover `ball`.
fn greedy_half_cover<P, M: Metric<P>>(data: &Dataset<P, M>, ball: &[usize], r_half: f64) -> usize {
    let mut covered = vec![false; ball.len()];
    let mut count = 0usize;
    for k in 0..ball.len() {
        if covered[k] {
            continue;
        }
        // Greedy: make ball[k] a center; mark everything within r_half.
        count += 1;
        for (l, &other) in ball.iter().enumerate() {
            if !covered[l] && data.dist(ball[k], other) <= r_half {
                covered[l] = true;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::Euclidean;

    fn line(n: usize) -> Dataset<Vec<f64>, Euclidean> {
        Dataset::new((0..n).map(|i| vec![i as f64]).collect(), Euclidean)
    }

    fn grid2d(side: usize) -> Dataset<Vec<f64>, Euclidean> {
        let mut pts = Vec::new();
        for x in 0..side {
            for y in 0..side {
                pts.push(vec![x as f64, y as f64]);
            }
        }
        Dataset::new(pts, Euclidean)
    }

    #[test]
    fn line_has_low_estimated_dimension() {
        let est = greedy_cover_log2(&line(200), 30, 7);
        // A 1-d line needs at most ~3 half-radius balls greedily: log2 <= 2.
        assert!(est <= 2.5, "line estimate too high: {est}");
    }

    #[test]
    fn grid_estimate_exceeds_line_estimate() {
        let l = greedy_cover_log2(&line(225), 40, 7);
        let g = greedy_cover_log2(&grid2d(15), 40, 7);
        assert!(
            g > l,
            "2-d grid ({g}) should have larger doubling estimate than line ({l})"
        );
    }

    #[test]
    fn packing_bound_holds_on_grids() {
        // Fact 2.3 on Z^2 (doubling dimension 2): any subset X satisfies
        // |X| <= (8 * aspect(X))^2.
        let ds = grid2d(12);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let ids: Vec<usize> = (0..ds.len()).filter(|_| rng.random_bool(0.3)).collect();
            if ids.len() < 2 {
                continue;
            }
            let mut dmin = f64::INFINITY;
            let mut dmax: f64 = 0.0;
            for (i, &a) in ids.iter().enumerate() {
                for &b in ids.iter().skip(i + 1) {
                    let d = ds.dist(a, b);
                    dmin = dmin.min(d);
                    dmax = dmax.max(d);
                }
            }
            let bound = packing_bound(dmax / dmin, 2.0);
            assert!(
                (ids.len() as f64) <= bound,
                "|X| = {} exceeds (8A)^2 = {bound}",
                ids.len()
            );
        }
    }

    #[test]
    fn packing_bound_monotonicity() {
        assert!(packing_bound(2.0, 2.0) < packing_bound(4.0, 2.0));
        assert!(packing_bound(2.0, 1.0) < packing_bound(2.0, 3.0));
        assert_eq!(packing_bound(1.0, 0.0), 1.0);
    }

    #[test]
    fn expansion_is_finite_and_positive_on_grid() {
        let e = expansion_log2(&grid2d(10), 30, 11);
        assert!(e.is_finite());
        assert!(e > 0.0);
        assert!(e < 8.0, "expansion estimate unreasonably large: {e}");
    }
}
