//! Uniform rescaling of a metric.
//!
//! Sections 2.1 and 5 normalize the input so that the smallest inter-point
//! distance is 2 ("as can be achieved by scaling D appropriately"), which
//! makes the aspect ratio `Δ = diam(P) / 2`. [`Scaled`] performs exactly that
//! normalization without touching the stored points.

use crate::metric::Metric;

/// A metric multiplied by a positive constant factor.
///
/// Scaling preserves all metric axioms, nets scale accordingly, and greedy
/// routing is invariant under it, so `Scaled` is safe to use anywhere a
/// metric is expected.
#[derive(Debug, Clone, Copy)]
pub struct Scaled<M> {
    inner: M,
    factor: f64,
}

impl<M> Scaled<M> {
    /// Scales `inner` by `factor` (> 0).
    pub fn new(inner: M, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive and finite"
        );
        Scaled { inner, factor }
    }

    /// Scale factor chosen so the given minimum inter-point distance maps to
    /// 2, matching the paper's normalization.
    pub fn normalizing_min_dist(inner: M, d_min: f64) -> Self {
        assert!(d_min > 0.0, "minimum distance must be positive");
        Scaled::new(inner, 2.0 / d_min)
    }

    /// The scale factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<P: ?Sized, M: Metric<P>> Metric<P> for Scaled<M> {
    #[inline]
    fn dist(&self, a: &P, b: &P) -> f64 {
        self.factor * self.inner.dist(a, b)
    }

    /// Scaling by a positive factor preserves order, so the inner metric's
    /// surrogate works unscaled — the fast comparison path (e.g. squared
    /// Euclidean) survives the wrapper.
    #[inline]
    fn surrogate(&self, a: &P, b: &P) -> f64 {
        self.inner.surrogate(a, b)
    }

    #[inline]
    fn dist_from_surrogate(&self, s: f64) -> f64 {
        self.factor * self.inner.dist_from_surrogate(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::Euclidean;
    use crate::metric::axioms;

    #[test]
    fn scaling_multiplies_distances() {
        let m = Scaled::new(Euclidean, 3.0);
        assert_eq!(m.dist(&vec![0.0], &vec![2.0]), 6.0);
    }

    #[test]
    fn normalization_maps_dmin_to_two() {
        let m = Scaled::normalizing_min_dist(Euclidean, 0.5);
        assert_eq!(m.dist(&vec![0.0], &vec![0.5]), 2.0);
    }

    #[test]
    fn scaled_surrogate_round_trips_bit_exactly_and_preserves_order() {
        // Pin P = Vec<f64>: the surrogate-mapping method alone does not
        // mention the point type.
        fn round_trip<M: Metric<Vec<f64>>>(m: &M, a: &Vec<f64>, b: &Vec<f64>) -> (f64, f64) {
            (m.dist_from_surrogate(m.surrogate(a, b)), m.dist(a, b))
        }
        let m = Scaled::new(Euclidean, 3.0);
        let a = vec![0.3, -1.2];
        let b = vec![2.0, 0.7];
        let c = vec![9.5, -4.0];
        let (via_surrogate, direct) = round_trip(&m, &a, &b);
        assert_eq!(via_surrogate, direct);
        // Unscaled surrogates still order exactly like scaled distances.
        assert_eq!(
            m.surrogate(&a, &b) < m.surrogate(&a, &c),
            m.dist(&a, &b) < m.dist(&a, &c)
        );
    }

    #[test]
    fn scaled_metric_still_satisfies_axioms() {
        let m = Scaled::new(Euclidean, 0.125);
        let pts: Vec<Vec<f64>> = vec![
            vec![0.0, 1.0],
            vec![2.0, -1.0],
            vec![5.5, 0.25],
            vec![-3.0, 4.0],
        ];
        axioms::check_all(&m, &pts).unwrap();
    }
}
