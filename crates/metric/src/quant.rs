//! Compact (reduced-precision) point storage: `f32` and 8-bit scalar
//! quantization (SQ8) behind one [`CompactPoints`] / [`Quantized`]
//! abstraction.
//!
//! Every hot path in this workspace is `f64` by default; at scale the QPS
//! ceiling is set by memory bandwidth, not arithmetic, so halving
//! ([`F32Points`]) or quartering-and-then-halving-again ([`Sq8Points`],
//! one byte per coordinate) the bytes streamed per distance evaluation is
//! the next multiplier after the eight-lane kernels of [`crate::lp`].
//!
//! # The re-rank contract
//!
//! Compact storage is a **navigation surrogate only**. A quantized search
//! walks the graph comparing [`Quantized::surrogate`] values (squared
//! Euclidean distance in the compact representation), but before any result
//! is reported the whole candidate set is **re-ranked with exact `f64`
//! distances** against the original points and only then truncated to `k`.
//! Consequences, pinned by `tests/proptest_quant.rs`:
//!
//! * reported distances are always exact — quantization can only affect
//!   *which* candidates the walk gathers, never the correctness of their
//!   reported order or values;
//! * whenever the candidate set contains the exact top-`k`, the re-ranked
//!   top-`k` **equals** the exact `f64` top-`k`, ids and distances alike;
//! * recall is therefore measurable through `pg_eval` exactly like every
//!   full-precision configuration.
//!
//! # SQ8 codes
//!
//! [`Sq8Points`] stores per-dimension affine codes: dimension `j` keeps
//! `min_j` and `step_j = (max_j - min_j) / 255`, and a coordinate `x`
//! encodes as `round((x - min_j) / step_j)` clamped to `0..=255`. Decoding
//! returns `min_j + code * step_j`, so the round-trip error is at most
//! `step_j / 2` per dimension. A constant dimension (`min_j == max_j`)
//! has `step_j == 0`, encodes as code `0`, and decodes **exactly**.
//!
//! Queries stay `f64` (asymmetric distance): only the stored side is
//! quantized, which halves the quantization noise versus coding both sides
//! and costs nothing — the query is decoded zero times.

use crate::flat::FlatPoints;

/// Which compact representation to use. The `f64` path is not listed here:
/// full precision is the *reference* representation, stored in
/// [`FlatPoints`] and never behind this abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantKind {
    /// IEEE-754 single precision, 4 bytes per coordinate.
    F32,
    /// 8-bit scalar quantization with per-dimension affine codes.
    Sq8,
}

impl QuantKind {
    /// Stable lowercase name (used in experiment tables and artifacts).
    pub fn name(self) -> &'static str {
        match self {
            QuantKind::F32 => "f32",
            QuantKind::Sq8 => "sq8",
        }
    }
}

/// A query prepared once for repeated surrogate evaluations against one
/// compact representation. Construct with [`Quantized::prepare`]; the
/// variant always matches the storage that produced it.
#[derive(Debug, Clone)]
pub enum PreparedQuery {
    /// The query cast to `f32` once (for [`F32Points`]; casting per
    /// evaluation would waste the bandwidth the representation saves).
    F32(Vec<f32>),
    /// The query kept in `f64` (for [`Sq8Points`]; SQ8 distances are
    /// asymmetric — exact query vs decoded codes).
    F64(Vec<f64>),
}

impl PreparedQuery {
    /// Dimensionality of the prepared query.
    pub fn dim(&self) -> usize {
        match self {
            PreparedQuery::F32(q) => q.len(),
            PreparedQuery::F64(q) => q.len(),
        }
    }
}

/// A compact, id-addressed point store that can evaluate a squared-`L_2`
/// **navigation surrogate** between a stored point and a prepared query.
///
/// The surrogate is deterministic (a pure function of the stored codes and
/// the query — bit-identical across thread counts by construction) and
/// approximates squared Euclidean distance; it is *never* reported. See the
/// module docs for the re-rank contract that keeps reported results exact.
pub trait Quantized {
    /// Number of stored points.
    fn len(&self) -> usize;

    /// `true` when no points are stored. (Encoders reject empty input, so
    /// this is `false` for every constructed value; the method exists for
    /// API completeness.)
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the stored points.
    fn dim(&self) -> usize;

    /// Prepares a `f64` query for repeated [`Quantized::surrogate`] calls.
    ///
    /// # Panics
    /// If `q.len() != self.dim()`.
    fn prepare(&self, q: &[f64]) -> PreparedQuery;

    /// Squared-`L_2` surrogate between stored point `i` and a query
    /// prepared by **this** store.
    ///
    /// # Panics
    /// If `i` is out of range or the prepared query came from a store of a
    /// different representation or dimensionality.
    fn surrogate(&self, i: usize, q: &PreparedQuery) -> f64;

    /// Appends the decoded (approximate `f64`) coordinates of point `i`
    /// into `out` after clearing it.
    ///
    /// # Panics
    /// If `i` is out of range.
    fn decode_row(&self, i: usize, out: &mut Vec<f64>);

    /// The compact representation stored here.
    fn kind(&self) -> QuantKind;
}

/// Squared Euclidean distance on `f32` slices: the [`F32Points`] navigation
/// kernel. Eight-lane unrolled exactly like [`crate::lp::l2_squared`], with
/// `f32` lane accumulators (the representation's own precision — the exact
/// re-rank makes wider accumulation pointless on the navigation path).
#[inline]
pub fn l2_squared_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    let mut s = [0.0f32; 8];
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        let (xa, xb): (&[f32; 8], &[f32; 8]) = (xa.try_into().unwrap(), xb.try_into().unwrap());
        for l in 0..8 {
            let d = xa[l] - xb[l];
            s[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    (((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]))) + tail
}

/// Squared Euclidean distance between a `f64` query and one SQ8-coded row,
/// decoding on the fly: `diff_j = q[j] - (min_j + code_j * step_j)`.
/// Eight-lane unrolled with `f64` accumulators (the decode is already
/// `f64`; there is no narrower representation to stay in).
#[inline]
fn sq8_row_surrogate(codes: &[u8], mins: &[f64], steps: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(codes.len(), q.len(), "dimension mismatch");
    let mut cc = codes.chunks_exact(8);
    let mut cm = mins.chunks_exact(8);
    let mut cs = steps.chunks_exact(8);
    let mut cq = q.chunks_exact(8);
    let mut s = [0.0f64; 8];
    for (((xc, xm), xs), xq) in cc
        .by_ref()
        .zip(cm.by_ref())
        .zip(cs.by_ref())
        .zip(cq.by_ref())
    {
        let xc: &[u8; 8] = xc.try_into().unwrap();
        let xm: &[f64; 8] = xm.try_into().unwrap();
        let xs: &[f64; 8] = xs.try_into().unwrap();
        let xq: &[f64; 8] = xq.try_into().unwrap();
        for l in 0..8 {
            let d = xq[l] - (xm[l] + f64::from(xc[l]) * xs[l]);
            s[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (((c, m), st), x) in cc
        .remainder()
        .iter()
        .zip(cm.remainder())
        .zip(cs.remainder())
        .zip(cq.remainder())
    {
        let d = x - (m + f64::from(*c) * st);
        tail += d * d;
    }
    (((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]))) + tail
}

/// Validates a rectangular `f64` row set for encoding: at least one row,
/// `dim >= 1`, every row of the same dimensionality, every coordinate
/// finite. Returns `(n, dim)`.
fn check_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<(usize, usize), String> {
    let first = rows
        .first()
        .ok_or_else(|| "cannot encode an empty point set".to_string())?;
    let dim = first.as_ref().len();
    if dim == 0 {
        return Err("cannot encode zero-dimensional points".to_string());
    }
    for (i, row) in rows.iter().enumerate() {
        let row = row.as_ref();
        if row.len() != dim {
            return Err(format!(
                "row {i} has {} coordinates, expected {dim}",
                row.len()
            ));
        }
        if let Some(x) = row.iter().find(|x| !x.is_finite()) {
            return Err(format!("row {i} has a non-finite coordinate {x}"));
        }
    }
    Ok((rows.len(), dim))
}

/// Contiguous row-major `f32` points: the stored side of the half-width
/// representation. See the module docs for where it sits in the search.
#[derive(Debug, Clone, PartialEq)]
pub struct F32Points {
    data: Vec<f32>,
    dim: usize,
}

impl F32Points {
    /// Encodes a rectangular set of `f64` rows by casting each coordinate
    /// to `f32` (round-to-nearest-even, the IEEE default).
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self, String> {
        let (_, dim) = check_rows(rows)?;
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            data.extend(row.as_ref().iter().map(|&x| x as f32));
        }
        Ok(F32Points { data, dim })
    }

    /// Encodes a [`FlatPoints`] store (the `f64` reference layout).
    pub fn from_flat(points: &FlatPoints) -> Result<Self, String> {
        let rows: Vec<&[f64]> = points.rows().collect();
        Self::from_rows(&rows)
    }

    /// Reconstructs from raw storage (the snapshot-load path). Rejects
    /// empty or ragged data and non-finite values with a description.
    pub fn try_from_raw(data: Vec<f32>, dim: usize) -> Result<Self, String> {
        if dim == 0 {
            return Err("dim must be >= 1".to_string());
        }
        if data.is_empty() {
            return Err("cannot build an empty F32Points".to_string());
        }
        if !data.len().is_multiple_of(dim) {
            return Err(format!(
                "data length {} is not a multiple of dim {dim}",
                data.len()
            ));
        }
        if let Some(x) = data.iter().find(|x| !x.is_finite()) {
            return Err(format!("non-finite stored coordinate {x}"));
        }
        Ok(F32Points { data, dim })
    }

    /// The raw row-major coordinates (for snapshot encoding).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Row `i` as a `f32` slice.
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

impl Quantized for F32Points {
    fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn prepare(&self, q: &[f64]) -> PreparedQuery {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        PreparedQuery::F32(q.iter().map(|&x| x as f32).collect())
    }

    fn surrogate(&self, i: usize, q: &PreparedQuery) -> f64 {
        match q {
            PreparedQuery::F32(q) => f64::from(l2_squared_f32(self.row(i), q)),
            PreparedQuery::F64(_) => {
                panic!("PreparedQuery::F64 used against F32Points; prepare() on the right store")
            }
        }
    }

    fn decode_row(&self, i: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.row(i).iter().map(|&x| f64::from(x)));
    }

    fn kind(&self) -> QuantKind {
        QuantKind::F32
    }
}

/// 8-bit scalar-quantized points with per-dimension affine codes (see the
/// module docs for the code definition and error bound).
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Points {
    codes: Vec<u8>,
    mins: Vec<f64>,
    steps: Vec<f64>,
    dim: usize,
}

impl Sq8Points {
    /// Trains per-dimension `[min, max]` ranges on `rows` and encodes them.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self, String> {
        let (n, dim) = check_rows(rows)?;
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in rows {
            for (j, &x) in row.as_ref().iter().enumerate() {
                if x < mins[j] {
                    mins[j] = x;
                }
                if x > maxs[j] {
                    maxs[j] = x;
                }
            }
        }
        let steps: Vec<f64> = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| (hi - lo) / 255.0)
            .collect();
        let mut codes = Vec::with_capacity(n * dim);
        for row in rows {
            for (j, &x) in row.as_ref().iter().enumerate() {
                codes.push(Self::encode_one(x, mins[j], steps[j]));
            }
        }
        Ok(Sq8Points {
            codes,
            mins,
            steps,
            dim,
        })
    }

    /// Encodes a [`FlatPoints`] store (the `f64` reference layout).
    pub fn from_flat(points: &FlatPoints) -> Result<Self, String> {
        let rows: Vec<&[f64]> = points.rows().collect();
        Self::from_rows(&rows)
    }

    /// One affine code: `round((x - min) / step)` clamped to `0..=255`;
    /// a zero step (constant dimension) always codes as `0`.
    fn encode_one(x: f64, min: f64, step: f64) -> u8 {
        if step > 0.0 {
            ((x - min) / step).round().clamp(0.0, 255.0) as u8
        } else {
            0
        }
    }

    /// Reconstructs from raw parts (the snapshot-load path). Rejects
    /// length mismatches, non-finite ranges, and negative steps.
    pub fn try_from_raw(
        codes: Vec<u8>,
        mins: Vec<f64>,
        steps: Vec<f64>,
        dim: usize,
    ) -> Result<Self, String> {
        if dim == 0 {
            return Err("dim must be >= 1".to_string());
        }
        if mins.len() != dim || steps.len() != dim {
            return Err(format!(
                "per-dimension arrays have lengths {} / {}, expected dim {dim}",
                mins.len(),
                steps.len()
            ));
        }
        if codes.is_empty() {
            return Err("cannot build an empty Sq8Points".to_string());
        }
        if !codes.len().is_multiple_of(dim) {
            return Err(format!(
                "code length {} is not a multiple of dim {dim}",
                codes.len()
            ));
        }
        if let Some(x) = mins.iter().chain(&steps).find(|x| !x.is_finite()) {
            return Err(format!("non-finite quantization parameter {x}"));
        }
        if let Some(s) = steps.iter().find(|&&s| s < 0.0) {
            return Err(format!("negative quantization step {s}"));
        }
        Ok(Sq8Points {
            codes,
            mins,
            steps,
            dim,
        })
    }

    /// The raw codes, row-major (for snapshot encoding).
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Per-dimension range minima (for snapshot encoding).
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Per-dimension code steps; `step(j) == 0` marks a constant dimension.
    pub fn steps(&self) -> &[f64] {
        &self.steps
    }

    /// Worst-case absolute round-trip error in dimension `j`
    /// (`step_j / 2`; exactly `0` for a constant dimension).
    pub fn max_decode_error(&self, j: usize) -> f64 {
        self.steps[j] / 2.0
    }

    /// Row `i` as a code slice.
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn row(&self, i: usize) -> &[u8] {
        &self.codes[i * self.dim..(i + 1) * self.dim]
    }
}

impl Quantized for Sq8Points {
    fn len(&self) -> usize {
        self.codes.len() / self.dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn prepare(&self, q: &[f64]) -> PreparedQuery {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        PreparedQuery::F64(q.to_vec())
    }

    fn surrogate(&self, i: usize, q: &PreparedQuery) -> f64 {
        match q {
            PreparedQuery::F64(q) => sq8_row_surrogate(self.row(i), &self.mins, &self.steps, q),
            PreparedQuery::F32(_) => {
                panic!("PreparedQuery::F32 used against Sq8Points; prepare() on the right store")
            }
        }
    }

    fn decode_row(&self, i: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.row(i)
                .iter()
                .zip(&self.mins)
                .zip(&self.steps)
                .map(|((&c, min), step)| min + f64::from(c) * step),
        );
    }

    fn kind(&self) -> QuantKind {
        QuantKind::Sq8
    }
}

/// The closed set of compact representations a snapshot can carry and an
/// engine can search: one enum so call sites (engine, sharded merge,
/// snapshot codecs, adapters) dispatch without a generic parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum CompactPoints {
    /// Half-width floating point.
    F32(F32Points),
    /// 8-bit scalar quantization.
    Sq8(Sq8Points),
}

impl CompactPoints {
    /// Encodes `rows` into the representation `kind`.
    pub fn from_rows<R: AsRef<[f64]>>(kind: QuantKind, rows: &[R]) -> Result<Self, String> {
        match kind {
            QuantKind::F32 => F32Points::from_rows(rows).map(CompactPoints::F32),
            QuantKind::Sq8 => Sq8Points::from_rows(rows).map(CompactPoints::Sq8),
        }
    }

    /// Encodes a [`FlatPoints`] store into the representation `kind`.
    pub fn from_flat(kind: QuantKind, points: &FlatPoints) -> Result<Self, String> {
        match kind {
            QuantKind::F32 => F32Points::from_flat(points).map(CompactPoints::F32),
            QuantKind::Sq8 => Sq8Points::from_flat(points).map(CompactPoints::Sq8),
        }
    }
}

impl Quantized for CompactPoints {
    fn len(&self) -> usize {
        match self {
            CompactPoints::F32(p) => p.len(),
            CompactPoints::Sq8(p) => p.len(),
        }
    }

    fn dim(&self) -> usize {
        match self {
            CompactPoints::F32(p) => p.dim(),
            CompactPoints::Sq8(p) => p.dim(),
        }
    }

    fn prepare(&self, q: &[f64]) -> PreparedQuery {
        match self {
            CompactPoints::F32(p) => p.prepare(q),
            CompactPoints::Sq8(p) => p.prepare(q),
        }
    }

    fn surrogate(&self, i: usize, q: &PreparedQuery) -> f64 {
        match self {
            CompactPoints::F32(p) => p.surrogate(i, q),
            CompactPoints::Sq8(p) => p.surrogate(i, q),
        }
    }

    fn decode_row(&self, i: usize, out: &mut Vec<f64>) {
        match self {
            CompactPoints::F32(p) => p.decode_row(i, out),
            CompactPoints::Sq8(p) => p.decode_row(i, out),
        }
    }

    fn kind(&self) -> QuantKind {
        match self {
            CompactPoints::F32(p) => p.kind(),
            CompactPoints::Sq8(p) => p.kind(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_rows(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.random_range(-50.0..50.0)).collect())
            .collect()
    }

    /// Single-accumulator references; the unrolled kernels are pinned
    /// against these (exactly on integer inputs, 1e-12 relative otherwise —
    /// only the summation order differs), mirroring the `lp` kernel tests.
    fn l2_squared_f32_scalar(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .fold(0.0, |acc, v| acc + v)
    }

    fn sq8_scalar(codes: &[u8], mins: &[f64], steps: &[f64], q: &[f64]) -> f64 {
        codes
            .iter()
            .enumerate()
            .map(|(j, &c)| {
                let d = q[j] - (mins[j] + f64::from(c) * steps[j]);
                d * d
            })
            .fold(0.0, |acc, v| acc + v)
    }

    #[test]
    fn f32_kernel_matches_scalar_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in [1usize, 3, 7, 8, 9, 16, 31, 64, 100] {
            let a: Vec<f32> = (0..d)
                .map(|_| rng.random_range(-10.0..10.0) as f32)
                .collect();
            let b: Vec<f32> = (0..d)
                .map(|_| rng.random_range(-10.0..10.0) as f32)
                .collect();
            let fast = l2_squared_f32(&a, &b);
            let slow = l2_squared_f32_scalar(&a, &b);
            let tol = 1e-5 * slow.abs().max(1.0);
            assert!((fast - slow).abs() <= tol, "d={d}: {fast} vs {slow}");

            // Integer-valued inputs: both orders sum exactly representable
            // squares, so the kernels agree bit-for-bit.
            let ai: Vec<f32> = (0..d).map(|_| rng.random_range(-9i32..9) as f32).collect();
            let bi: Vec<f32> = (0..d).map(|_| rng.random_range(-9i32..9) as f32).collect();
            assert_eq!(l2_squared_f32(&ai, &bi), l2_squared_f32_scalar(&ai, &bi));
        }
    }

    #[test]
    fn sq8_kernel_matches_scalar_reference() {
        let mut rng = StdRng::seed_from_u64(8);
        for d in [1usize, 5, 8, 13, 24, 65] {
            let rows = random_rows(20, d, 100 + d as u64);
            let p = Sq8Points::from_rows(&rows).unwrap();
            let q: Vec<f64> = (0..d).map(|_| rng.random_range(-50.0..50.0)).collect();
            for i in 0..p.len() {
                let fast = sq8_row_surrogate(p.row(i), p.mins(), p.steps(), &q);
                let slow = sq8_scalar(p.row(i), p.mins(), p.steps(), &q);
                let tol = 1e-12 * slow.abs().max(1.0);
                assert!((fast - slow).abs() <= tol, "d={d} i={i}: {fast} vs {slow}");
            }
        }
    }

    #[test]
    fn sq8_round_trip_error_is_bounded_by_half_a_step() {
        let rows = random_rows(64, 12, 3);
        let p = Sq8Points::from_rows(&rows).unwrap();
        let mut decoded = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            p.decode_row(i, &mut decoded);
            for (j, (&x, &y)) in row.iter().zip(&decoded).enumerate() {
                let bound = p.max_decode_error(j) * (1.0 + 1e-9) + 1e-12;
                assert!(
                    (x - y).abs() <= bound,
                    "point {i} dim {j}: |{x} - {y}| > {bound}"
                );
            }
        }
    }

    #[test]
    fn sq8_constant_dimension_decodes_exactly() {
        // Dimension 1 is constant (min == max => step == 0 => code 0).
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 42.5], vec![2.0, 42.5], vec![-3.0, 42.5]];
        let p = Sq8Points::from_rows(&rows).unwrap();
        assert_eq!(p.steps()[1], 0.0);
        assert_eq!(p.max_decode_error(1), 0.0);
        let mut decoded = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            p.decode_row(i, &mut decoded);
            assert_eq!(decoded[1], row[1], "constant dim must round-trip exactly");
        }
    }

    #[test]
    fn f32_decode_is_the_ieee_cast() {
        let rows = random_rows(10, 5, 4);
        let p = F32Points::from_rows(&rows).unwrap();
        let mut decoded = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            p.decode_row(i, &mut decoded);
            for (&x, &y) in row.iter().zip(&decoded) {
                assert_eq!(y, f64::from(x as f32));
            }
        }
    }

    #[test]
    fn surrogates_approximate_the_exact_squared_distance() {
        let rows = random_rows(40, 16, 5);
        let q: Vec<f64> = random_rows(1, 16, 6).pop().unwrap();
        let exact: Vec<f64> = rows.iter().map(|r| crate::lp::l2_squared(r, &q)).collect();
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let p = CompactPoints::from_rows(kind, &rows).unwrap();
            let pq = p.prepare(&q);
            for (i, &e) in exact.iter().enumerate() {
                let s = p.surrogate(i, &pq);
                // Coordinates span ~[-50, 50]: SQ8 steps are <= 100/255, so
                // relative surrogate error stays small on this scale.
                assert!(
                    (s - e).abs() <= 0.05 * e.max(1.0),
                    "{} point {i}: surrogate {s} vs exact {e}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn degenerate_shapes_encode_and_evaluate() {
        // A single point, d = 1, signed zero and a subnormal coordinate.
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let single = vec![vec![-0.0, f64::MIN_POSITIVE / 2.0, 3.5]];
            let p = CompactPoints::from_rows(kind, &single).unwrap();
            assert_eq!((p.len(), p.dim()), (1, 3));
            let pq = p.prepare(&[0.0, 0.0, 3.5]);
            let s = p.surrogate(0, &pq);
            assert!(s.is_finite() && s.abs() < 1e-9, "{}: {s}", kind.name());

            let d1 = vec![vec![1.0], vec![4.0]];
            let p = CompactPoints::from_rows(kind, &d1).unwrap();
            let pq = p.prepare(&[1.0]);
            assert!(p.surrogate(0, &pq) < p.surrogate(1, &pq));
        }
    }

    #[test]
    fn encoders_reject_malformed_input() {
        let empty: Vec<Vec<f64>> = Vec::new();
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        let nan = vec![vec![1.0, f64::NAN]];
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            assert!(CompactPoints::from_rows(kind, &empty).is_err());
            assert!(CompactPoints::from_rows(kind, &ragged).is_err());
            assert!(CompactPoints::from_rows(kind, &nan).is_err());
        }
        assert!(F32Points::try_from_raw(vec![1.0], 0).is_err());
        assert!(F32Points::try_from_raw(vec![1.0, 2.0, 3.0], 2).is_err());
        assert!(F32Points::try_from_raw(vec![f32::NAN], 1).is_err());
        assert!(Sq8Points::try_from_raw(vec![0], vec![0.0], vec![-1.0], 1).is_err());
        assert!(Sq8Points::try_from_raw(vec![0], vec![f64::NAN], vec![0.0], 1).is_err());
        assert!(Sq8Points::try_from_raw(vec![0, 1, 2], vec![0.0, 0.0], vec![0.0, 0.0], 2).is_err());
    }

    #[test]
    fn raw_round_trip_preserves_the_store() {
        let rows = random_rows(9, 4, 11);
        let f = F32Points::from_rows(&rows).unwrap();
        let f2 = F32Points::try_from_raw(f.data().to_vec(), 4).unwrap();
        assert_eq!(f, f2);
        let s = Sq8Points::from_rows(&rows).unwrap();
        let s2 =
            Sq8Points::try_from_raw(s.codes().to_vec(), s.mins().to_vec(), s.steps().to_vec(), 4)
                .unwrap();
        assert_eq!(s, s2);
    }
}
