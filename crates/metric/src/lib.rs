//! Metric-space kernel for the proximity-graphs workspace.
//!
//! This crate provides the abstractions of Section 1.1 of the paper
//! *Proximity Graphs for Similarity Search: Fast Construction, Lower Bounds,
//! and Euclidean Separation* (Lu & Tao, PODS 2025):
//!
//! * the [`Metric`] trait — a distance function `D` satisfying identity of
//!   indiscernibles, symmetry and the triangle inequality;
//! * concrete metrics on `R^d`: [`Euclidean`] (`L_2`), [`Chebyshev`]
//!   (`L_inf`), [`Manhattan`] (`L_1`), and [`Angular`] (great-circle
//!   distance on the unit sphere, for cosine-similarity embeddings);
//! * [`Counting`], a wrapper that counts distance evaluations — the paper
//!   measures query time in *number of distance computations*, so every
//!   experiment in this workspace is instrumented through this type;
//! * [`Dataset`], an id-addressed collection of points paired with a metric;
//! * [`FlatPoints`] / [`FlatRow`] ([`flat`]), the contiguous row-major point
//!   layout every hot path should run on, and the surrogate-comparison hooks
//!   on [`Metric`] that let search compare in squared space under `L_2`;
//! * [`CompactPoints`] / [`Quantized`] ([`quant`]), the reduced-precision
//!   (`f32` and 8-bit scalar-quantized) point stores that hot paths can
//!   navigate by surrogate before re-ranking candidates with exact `f64`
//!   distances;
//! * aspect-ratio utilities ([`aspect`]), including the approximation
//!   `d̂_max ∈ [d_max, 2 d_max]` from the remark of Section 2.4;
//! * empirical doubling-dimension estimators ([`doubling`]).
//!
//! The flat-storage design and the surrogate-comparison semantics are
//! documented in depth in `ARCHITECTURE.md` at the repository root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod angular;
pub mod aspect;
pub mod counter;
pub mod dataset;
pub mod doubling;
pub mod flat;
pub mod lp;
pub mod metric;
pub mod quant;
pub mod scaled;

pub use angular::{normalize, Angular};
pub use counter::Counting;
pub use dataset::Dataset;
pub use flat::{FlatPoints, FlatRow};
pub use lp::{Chebyshev, Euclidean, Manhattan};
pub use metric::Metric;
pub use quant::{CompactPoints, F32Points, PreparedQuery, QuantKind, Quantized, Sq8Points};
pub use scaled::Scaled;

/// A flat-backed Euclidean-style dataset: contiguous coordinates, generic
/// over the metric. The layout every experiment runs on by default.
pub type FlatDataset<M> = Dataset<FlatRow, M>;
