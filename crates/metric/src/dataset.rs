//! Id-addressed datasets: a point collection paired with a metric.

use crate::metric::Metric;

/// A finite set of data points `P` together with the metric of the ambient
/// space, addressed by dense integer ids `0..n`.
///
/// This mirrors the problem setup of Section 1.1: the data input is a set `P`
/// of `n >= 2` points from a metric space `(M, D)`. Graphs in `pg-core`
/// reference points by id (`u32`), so a `Dataset` is the bridge between graph
/// structure and geometry.
#[derive(Debug, Clone)]
pub struct Dataset<P, M> {
    points: Vec<P>,
    metric: M,
}

impl<P, M: Metric<P>> Dataset<P, M> {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty. The paper's setup assumes `n >= 2`, but
    /// this constructor deliberately also accepts a single-point dataset so
    /// degenerate cases are testable; the operations that genuinely need two
    /// points ([`Dataset::nearest_excluding`],
    /// [`Dataset::min_max_interpoint`], [`Dataset::aspect_ratio_exact`])
    /// assert `n >= 2` themselves.
    pub fn new(points: Vec<P>, metric: M) -> Self {
        assert!(
            !points.is_empty(),
            "dataset must contain at least one point"
        );
        Dataset { points, metric }
    }

    /// Number of data points `n`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point with id `i`.
    pub fn point(&self, i: usize) -> &P {
        &self.points[i]
    }

    /// All points, id-ordered.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// The metric.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Distance between data points `i` and `j`.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.metric.dist(&self.points[i], &self.points[j])
    }

    /// Distance from data point `i` to an arbitrary query point `q` of the
    /// ambient space.
    #[inline]
    pub fn dist_to(&self, i: usize, q: &P) -> f64 {
        self.metric.dist(&self.points[i], q)
    }

    /// Exact nearest neighbor of `q` by brute force: returns `(id, dist)`.
    pub fn nearest_brute(&self, q: &P) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for i in 0..self.len() {
            let d = self.dist_to(i, q);
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }

    /// Exact `k` nearest neighbors of `q` by brute force, ascending by
    /// distance (ties broken by id).
    pub fn k_nearest_brute(&self, q: &P, k: usize) -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> = (0..self.len()).map(|i| (i, self.dist_to(i, q))).collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Nearest *other* data point to data point `i`: returns `(id, dist)`.
    /// Panics if the dataset has fewer than two points.
    pub fn nearest_excluding(&self, i: usize) -> (usize, f64) {
        assert!(self.len() >= 2, "need at least two points");
        let mut best = (usize::MAX, f64::INFINITY);
        for j in 0..self.len() {
            if j == i {
                continue;
            }
            let d = self.dist(i, j);
            if d < best.1 {
                best = (j, d);
            }
        }
        best
    }

    /// All ids within distance `r` of `q` (closed ball `B(q, r)`), ascending.
    pub fn range_brute(&self, q: &P, r: f64) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.dist_to(i, q) <= r)
            .collect()
    }

    /// Exact minimum and maximum inter-point distances `(d_min, d_max)` by
    /// the full `O(n^2)` scan. `d_max` is the diameter `diam(P)`.
    pub fn min_max_interpoint(&self) -> (f64, f64) {
        assert!(self.len() >= 2, "need at least two points");
        let mut dmin = f64::INFINITY;
        let mut dmax: f64 = 0.0;
        for i in 0..self.len() {
            for j in (i + 1)..self.len() {
                let d = self.dist(i, j);
                dmin = dmin.min(d);
                dmax = dmax.max(d);
            }
        }
        (dmin, dmax)
    }

    /// Exact aspect ratio `Δ = diam(P) / d_min` by the full `O(n^2)` scan.
    pub fn aspect_ratio_exact(&self) -> f64 {
        let (dmin, dmax) = self.min_max_interpoint();
        assert!(dmin > 0.0, "duplicate points have zero minimum distance");
        dmax / dmin
    }

    /// Maps point ids through `f`, keeping the metric.
    pub fn map_metric<M2: Metric<P>>(self, m2: M2) -> Dataset<P, M2> {
        Dataset {
            points: self.points,
            metric: m2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::Euclidean;

    fn grid_dataset() -> Dataset<Vec<f64>, Euclidean> {
        // 3x3 unit grid.
        let mut pts = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                pts.push(vec![x as f64, y as f64]);
            }
        }
        Dataset::new(pts, Euclidean)
    }

    #[test]
    fn brute_nearest_is_correct() {
        let ds = grid_dataset();
        let q = vec![1.9, 1.9];
        let (id, d) = ds.nearest_brute(&q);
        assert_eq!(ds.point(id), &vec![2.0, 2.0]);
        assert!((d - (0.1f64 * 0.1 * 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn k_nearest_is_sorted_and_exact() {
        let ds = grid_dataset();
        let q = vec![0.0, 0.0];
        let knn = ds.k_nearest_brute(&q, 4);
        assert_eq!(knn.len(), 4);
        assert_eq!(knn[0].1, 0.0); // the corner itself
        assert_eq!(knn[1].1, 1.0);
        assert_eq!(knn[2].1, 1.0);
        assert!((knn[3].1 - 2f64.sqrt()).abs() < 1e-12);
        assert!(knn.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn min_max_and_aspect_ratio() {
        let ds = grid_dataset();
        let (dmin, dmax) = ds.min_max_interpoint();
        assert_eq!(dmin, 1.0);
        assert!((dmax - 8f64.sqrt()).abs() < 1e-12);
        assert!((ds.aspect_ratio_exact() - 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn range_brute_matches_definition() {
        let ds = grid_dataset();
        let ids = ds.range_brute(&vec![0.0, 0.0], 1.0);
        assert_eq!(ids, vec![0, 1, 3]); // (0,0), (0,1), (1,0)
    }

    #[test]
    fn single_point_dataset_is_allowed_and_usable() {
        // The documented below-paper-minimum case: n = 1 constructs fine and
        // every single-point-safe query works on it.
        let ds = Dataset::new(vec![vec![3.0, 4.0]], Euclidean);
        assert_eq!(ds.len(), 1);
        assert!(!ds.is_empty());
        let (id, d) = ds.nearest_brute(&vec![0.0, 0.0]);
        assert_eq!(id, 0);
        assert!((d - 5.0).abs() < 1e-12);
        assert_eq!(ds.k_nearest_brute(&vec![0.0, 0.0], 3).len(), 1);
        assert_eq!(ds.range_brute(&vec![3.0, 4.0], 0.5), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_dataset_rejected() {
        let _ = Dataset::new(Vec::<Vec<f64>>::new(), Euclidean);
    }

    #[test]
    #[should_panic(expected = "need at least two points")]
    fn two_point_operations_reject_single_point_sets() {
        let ds = Dataset::new(vec![vec![1.0]], Euclidean);
        let _ = ds.nearest_excluding(0);
    }

    #[test]
    fn nearest_excluding_skips_self() {
        let ds = grid_dataset();
        let (j, d) = ds.nearest_excluding(4); // center point (1,1)
        assert_ne!(j, 4);
        assert_eq!(d, 1.0);
    }
}
