//! Id-addressed datasets: a point collection paired with a metric.

use crate::metric::Metric;

/// A finite set of data points `P` together with the metric of the ambient
/// space, addressed by dense integer ids `0..n`.
///
/// This mirrors the problem setup of Section 1.1: the data input is a set `P`
/// of `n >= 2` points from a metric space `(M, D)`. Graphs in `pg-core`
/// reference points by id (`u32`), so a `Dataset` is the bridge between graph
/// structure and geometry.
#[derive(Debug, Clone)]
pub struct Dataset<P, M> {
    points: Vec<P>,
    metric: M,
}

impl<P, M: Metric<P>> Dataset<P, M> {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty. The paper's setup assumes `n >= 2`, but
    /// this constructor deliberately also accepts a single-point dataset so
    /// degenerate cases are testable; the operations that genuinely need two
    /// points ([`Dataset::nearest_excluding`],
    /// [`Dataset::min_max_interpoint`], [`Dataset::aspect_ratio_exact`])
    /// assert `n >= 2` themselves.
    pub fn new(points: Vec<P>, metric: M) -> Self {
        assert!(
            !points.is_empty(),
            "dataset must contain at least one point"
        );
        Dataset { points, metric }
    }

    /// Number of data points `n`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point with id `i`.
    pub fn point(&self, i: usize) -> &P {
        &self.points[i]
    }

    /// All points, id-ordered.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// The metric.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Distance between data points `i` and `j`.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.metric.dist(&self.points[i], &self.points[j])
    }

    /// Distance from data point `i` to an arbitrary query point `q` of the
    /// ambient space.
    #[inline]
    pub fn dist_to(&self, i: usize, q: &P) -> f64 {
        self.metric.dist(&self.points[i], q)
    }

    /// Monotone comparison surrogate between data points `i` and `j` — see
    /// [`Metric::surrogate`]. Counts as one distance computation.
    #[inline]
    pub fn dist_surrogate(&self, i: usize, j: usize) -> f64 {
        self.metric.surrogate(&self.points[i], &self.points[j])
    }

    /// Monotone comparison surrogate from data point `i` to query `q` — the
    /// hot-path primitive of the search routines (squared distance under
    /// [`Euclidean`](crate::Euclidean), so no `sqrt` per comparison).
    #[inline]
    pub fn surrogate_to(&self, i: usize, q: &P) -> f64 {
        self.metric.surrogate(&self.points[i], q)
    }

    /// Maps a surrogate value back to the true distance (pure float
    /// transform, not counted); see [`Metric::dist_from_surrogate`].
    #[inline]
    pub fn dist_from_surrogate(&self, s: f64) -> f64 {
        self.metric.dist_from_surrogate(s)
    }

    /// Exact nearest neighbor of `q` by brute force: returns `(id, dist)`.
    /// Scans in surrogate space (no `sqrt` per candidate under `L_2`).
    pub fn nearest_brute(&self, q: &P) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for i in 0..self.len() {
            let s = self.surrogate_to(i, q);
            if s < best.1 {
                best = (i, s);
            }
        }
        (best.0, self.dist_from_surrogate(best.1))
    }

    /// Exact `k` nearest neighbors of `q` by brute force, ascending by
    /// distance (ties broken by id).
    ///
    /// Partition-based: `select_nth_unstable_by` isolates the top `k` in
    /// `O(n)`, then only those `k` are sorted — `O(n + k log k)` instead of
    /// the full `O(n log n)` sort. Comparisons run in surrogate space.
    pub fn k_nearest_brute(&self, q: &P, k: usize) -> Vec<(usize, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let mut all: Vec<(usize, f64)> = (0..self.len())
            .map(|i| (i, self.surrogate_to(i, q)))
            .collect();
        let by_dist_then_id =
            |a: &(usize, f64), b: &(usize, f64)| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0));
        if k < all.len() {
            all.select_nth_unstable_by(k - 1, by_dist_then_id);
            all.truncate(k);
        }
        all.sort_by(by_dist_then_id);
        for e in &mut all {
            e.1 = self.dist_from_surrogate(e.1);
        }
        all
    }

    /// Nearest *other* data point to data point `i`: returns `(id, dist)`.
    /// Panics if the dataset has fewer than two points.
    pub fn nearest_excluding(&self, i: usize) -> (usize, f64) {
        assert!(self.len() >= 2, "need at least two points");
        let mut best = (usize::MAX, f64::INFINITY);
        for j in 0..self.len() {
            if j == i {
                continue;
            }
            let d = self.dist(i, j);
            if d < best.1 {
                best = (j, d);
            }
        }
        best
    }

    /// All ids within distance `r` of `q` (closed ball `B(q, r)`), ascending.
    pub fn range_brute(&self, q: &P, r: f64) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.dist_to(i, q) <= r)
            .collect()
    }

    /// Maps point ids through `f`, keeping the metric.
    pub fn map_metric<M2: Metric<P>>(self, m2: M2) -> Dataset<P, M2> {
        Dataset {
            points: self.points,
            metric: m2,
        }
    }
}

impl<P: Sync, M: Metric<P> + Sync> Dataset<P, M> {
    /// Exact minimum and maximum inter-point distances `(d_min, d_max)` by
    /// the full `O(n^2)` scan, sharded across the thread pool (one row of
    /// the upper triangle per work item). `d_max` is the diameter `diam(P)`.
    ///
    /// `min`/`max` over finite `f64` are exact (no rounding), so the
    /// reduction is order-independent: the result is **bit-identical for
    /// every thread count**, asserted by tests like the parallel graph
    /// builds.
    ///
    /// The scan reduces in surrogate space and maps only the two final
    /// scalars back — a monotone non-decreasing map commutes with `min`/
    /// `max`, so this equals reducing true distances bit for bit while
    /// skipping the per-pair `sqrt` under `L_2`.
    pub fn min_max_interpoint(&self) -> (f64, f64) {
        assert!(self.len() >= 2, "need at least two points");
        let n = self.len();
        let per_row = rayon::par_map_range(n - 1, |i| {
            let mut smin = f64::INFINITY;
            let mut smax: f64 = 0.0;
            for j in (i + 1)..n {
                let s = self.dist_surrogate(i, j);
                smin = smin.min(s);
                smax = smax.max(s);
            }
            (smin, smax)
        });
        let (smin, smax) = per_row
            .into_iter()
            .fold((f64::INFINITY, 0.0_f64), |(lo, hi), (smin, smax)| {
                (lo.min(smin), hi.max(smax))
            });
        (
            self.dist_from_surrogate(smin),
            self.dist_from_surrogate(smax),
        )
    }

    /// Exact aspect ratio `Δ = diam(P) / d_min` by the full `O(n^2)` scan
    /// (parallel, see [`Dataset::min_max_interpoint`]).
    pub fn aspect_ratio_exact(&self) -> f64 {
        let (dmin, dmax) = self.min_max_interpoint();
        assert!(dmin > 0.0, "duplicate points have zero minimum distance");
        dmax / dmin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::Euclidean;

    fn grid_dataset() -> Dataset<Vec<f64>, Euclidean> {
        // 3x3 unit grid.
        let mut pts = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                pts.push(vec![x as f64, y as f64]);
            }
        }
        Dataset::new(pts, Euclidean)
    }

    #[test]
    fn brute_nearest_is_correct() {
        let ds = grid_dataset();
        let q = vec![1.9, 1.9];
        let (id, d) = ds.nearest_brute(&q);
        assert_eq!(ds.point(id), &vec![2.0, 2.0]);
        assert!((d - (0.1f64 * 0.1 * 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn k_nearest_is_sorted_and_exact() {
        let ds = grid_dataset();
        let q = vec![0.0, 0.0];
        let knn = ds.k_nearest_brute(&q, 4);
        assert_eq!(knn.len(), 4);
        assert_eq!(knn[0].1, 0.0); // the corner itself
        assert_eq!(knn[1].1, 1.0);
        assert_eq!(knn[2].1, 1.0);
        assert!((knn[3].1 - 2f64.sqrt()).abs() < 1e-12);
        assert!(knn.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn min_max_and_aspect_ratio() {
        let ds = grid_dataset();
        let (dmin, dmax) = ds.min_max_interpoint();
        assert_eq!(dmin, 1.0);
        assert!((dmax - 8f64.sqrt()).abs() < 1e-12);
        assert!((ds.aspect_ratio_exact() - 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn range_brute_matches_definition() {
        let ds = grid_dataset();
        let ids = ds.range_brute(&vec![0.0, 0.0], 1.0);
        assert_eq!(ids, vec![0, 1, 3]); // (0,0), (0,1), (1,0)
    }

    #[test]
    fn single_point_dataset_is_allowed_and_usable() {
        // The documented below-paper-minimum case: n = 1 constructs fine and
        // every single-point-safe query works on it.
        let ds = Dataset::new(vec![vec![3.0, 4.0]], Euclidean);
        assert_eq!(ds.len(), 1);
        assert!(!ds.is_empty());
        let (id, d) = ds.nearest_brute(&vec![0.0, 0.0]);
        assert_eq!(id, 0);
        assert!((d - 5.0).abs() < 1e-12);
        assert_eq!(ds.k_nearest_brute(&vec![0.0, 0.0], 3).len(), 1);
        assert_eq!(ds.range_brute(&vec![3.0, 4.0], 0.5), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_dataset_rejected() {
        let _ = Dataset::new(Vec::<Vec<f64>>::new(), Euclidean);
    }

    #[test]
    #[should_panic(expected = "need at least two points")]
    fn two_point_operations_reject_single_point_sets() {
        let ds = Dataset::new(vec![vec![1.0]], Euclidean);
        let _ = ds.nearest_excluding(0);
    }

    #[test]
    fn nearest_excluding_skips_self() {
        let ds = grid_dataset();
        let (j, d) = ds.nearest_excluding(4); // center point (1,1)
        assert_ne!(j, 4);
        assert_eq!(d, 1.0);
    }

    /// Deterministic pseudo-random dataset for the selection/scan tests.
    fn scattered_dataset(n: usize, seed: u64) -> Dataset<Vec<f64>, Euclidean> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 50.0
        };
        Dataset::new(
            (0..n).map(|_| vec![next(), next(), next()]).collect(),
            Euclidean,
        )
    }

    #[test]
    fn partitioned_k_nearest_matches_full_sort_for_every_k() {
        let ds = scattered_dataset(120, 3);
        let q = vec![25.0, 10.0, 40.0];
        // Reference: the seed's full-sort implementation.
        let mut full: Vec<(usize, f64)> = (0..ds.len()).map(|i| (i, ds.dist_to(i, &q))).collect();
        full.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        for k in [0usize, 1, 2, 7, 119, 120, 500] {
            let got = ds.k_nearest_brute(&q, k);
            let want: Vec<(usize, f64)> = full.iter().copied().take(k).collect();
            assert_eq!(got, want, "k = {k}");
        }
    }

    #[test]
    fn min_max_interpoint_is_thread_count_invariant() {
        let ds = scattered_dataset(90, 9);
        // Sequential reference.
        let mut dmin = f64::INFINITY;
        let mut dmax: f64 = 0.0;
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let d = ds.dist(i, j);
                dmin = dmin.min(d);
                dmax = dmax.max(d);
            }
        }
        let machine = std::thread::available_parallelism().map_or(1, |t| t.get());
        for threads in [1usize, 2, machine] {
            let got = rayon::with_threads(threads, || ds.min_max_interpoint());
            assert_eq!(got, (dmin, dmax), "diverged at {threads} threads");
        }
    }

    #[test]
    fn surrogate_helpers_round_trip_under_l2() {
        let ds = grid_dataset();
        let s = ds.dist_surrogate(0, 8);
        assert_eq!(s, 8.0); // squared distance across the grid diagonal
        assert_eq!(ds.dist_from_surrogate(s), ds.dist(0, 8));
        let q = vec![0.5, 0.0];
        assert_eq!(ds.surrogate_to(0, &q), 0.25);
    }
}
