//! Angular (great-circle) distance — the metric behind cosine-similarity
//! retrieval.
//!
//! `Angular.dist(a, b) = arccos(<a, b> / (|a| |b|))`, the angle between the
//! two vectors in radians. On the **unit sphere** this is a genuine metric
//! (the spherical triangle inequality); on raw `R^d` it is a pseudometric
//! (collinear vectors are at distance zero), so datasets should store
//! normalized embeddings — which is standard practice for cosine retrieval
//! anyway. [`normalize`] is provided for that.
//!
//! The unit sphere `S^{d-1}` has doubling dimension `O(d)`, so all of the
//! paper's machinery (Theorem 1.1 in particular) applies directly — a test
//! in this module builds `G_net` over angular distance and checks the PG
//! property, demonstrating the library on a non-`L_p` metric.

use crate::metric::Metric;

/// Angular distance in radians (see module docs). Intended for unit-norm
/// points; panics in debug builds when a zero vector is supplied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Angular;

impl<P: AsRef<[f64]> + ?Sized> Metric<P> for Angular {
    #[inline]
    fn dist(&self, a: &P, b: &P) -> f64 {
        let (a, b) = (a.as_ref(), b.as_ref());
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        debug_assert!(na > 0.0 && nb > 0.0, "angular distance of a zero vector");
        (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0).acos()
    }
}

/// Normalizes a vector to unit `L_2` norm. Panics on the zero vector.
pub fn normalize(v: &[f64]) -> Vec<f64> {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    assert!(norm > 0.0, "cannot normalize the zero vector");
    v.iter().map(|x| x / norm).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::axioms;

    #[test]
    fn right_angles_and_opposites() {
        let e1 = vec![1.0, 0.0];
        let e2 = vec![0.0, 1.0];
        let neg = vec![-1.0, 0.0];
        assert!((Angular.dist(&e1, &e2) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((Angular.dist(&e1, &neg) - std::f64::consts::PI).abs() < 1e-12);
        assert_eq!(Angular.dist(&e1, &e1), 0.0);
    }

    #[test]
    fn scale_invariance() {
        let a = vec![0.3, -0.7, 0.1];
        let b = vec![1.0, 2.0, -0.5];
        let scaled: Vec<f64> = b.iter().map(|x| x * 17.0).collect();
        assert!((Angular.dist(&a, &b) - Angular.dist(&a, &scaled)).abs() < 1e-12);
    }

    #[test]
    fn axioms_hold_on_the_unit_sphere() {
        // Distinct unit vectors: identity, symmetry, triangle.
        let pts: Vec<Vec<f64>> = vec![
            normalize(&[1.0, 0.0, 0.0]),
            normalize(&[1.0, 1.0, 0.0]),
            normalize(&[0.2, -0.8, 0.5]),
            normalize(&[-1.0, 0.1, 0.1]),
            normalize(&[0.0, 0.0, 1.0]),
        ];
        axioms::check_all(&Angular, &pts).unwrap();
    }

    #[test]
    fn normalize_produces_unit_vectors() {
        let v = normalize(&[3.0, 4.0]);
        assert!((v.iter().map(|x| x * x).sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((v[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn zero_vector_rejected() {
        let _ = normalize(&[0.0, 0.0]);
    }
}
