//! `L_p` metrics on `R^d`.
//!
//! The paper works with a general metric space `(M, D)` and specializes to
//! `(R^d, L_2)` in Section 5 and `(R^d, L_inf)` in Section 4. All three
//! metrics here accept any point type that can be viewed as `&[f64]`
//! (`Vec<f64>`, `[f64; N]`, slices, [`FlatRow`](crate::FlatRow)), so datasets
//! can store whatever layout is convenient — the contiguous
//! [`FlatPoints`](crate::FlatPoints) layout being the fast one.
//!
//! # Kernels
//!
//! The free functions ([`l2_squared`], [`l2`], [`l1`], [`linf`]) are the
//! workspace's distance kernels. They accumulate in **eight independent
//! lanes** plus a scalar remainder, which breaks the loop-carried dependency
//! chain of the naive loop (the add/max latency, not throughput, bounds the
//! naive loop) and lets LLVM auto-vectorize without any target-feature gates
//! or external dependencies. The `*_scalar` variants
//! keep the original single-accumulator loops as a reference: the unit tests
//! pin the unrolled kernels against them (exactly on integer-valued inputs,
//! to relative `1e-12` otherwise — only the summation *order* differs), and
//! `exp_perf_report` benchmarks the speedup PR over PR.

use crate::metric::Metric;

/// The Euclidean metric `L_2(p, q) = sqrt(sum_i (p[i] - q[i])^2)`.
///
/// Its [`Metric::surrogate`] is the **squared** distance ([`l2_squared`]):
/// comparison-only code paths (greedy routing, beam search, brute-force
/// selection) skip the `sqrt` entirely and pay it once per reported value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

/// The Chebyshev metric `L_inf(p, q) = max_i |p[i] - q[i]|`.
///
/// Used by the hard instance of Section 4, whose data-to-data distances are
/// `L_inf` on integer blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

/// The Manhattan metric `L_1(p, q) = sum_i |p[i] - q[i]|`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

/// Squared Euclidean distance; **not** a metric (fails the triangle
/// inequality) but the monotone comparison surrogate of [`Euclidean`]:
/// `a < b` iff `sqrt(a) < sqrt(b)`, and exact `f64` ties coincide, so any
/// ordering decision made on squared values agrees with the true metric.
///
/// Eight-lane unrolled; see the module docs.
#[inline]
pub fn l2_squared(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    let mut s = [0.0f64; 8];
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        // Fixed-size views: no per-lane bounds checks, clean vector lowering.
        let (xa, xb): (&[f64; 8], &[f64; 8]) = (xa.try_into().unwrap(), xb.try_into().unwrap());
        for l in 0..8 {
            let d = xa[l] - xb[l];
            s[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    (((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]))) + tail
}

/// Euclidean distance on raw slices: `sqrt` of [`l2_squared`].
#[inline]
pub fn l2(a: &[f64], b: &[f64]) -> f64 {
    l2_squared(a, b).sqrt()
}

/// Chebyshev distance on raw slices. Eight-lane unrolled; `max` over finite
/// values is exact and order-independent, so this is bit-identical to
/// [`linf_scalar`] on the finite inputs metrics require. The lane update is
/// written as a compare-and-select (not `f64::max`) so it lowers to the
/// packed-max instruction.
#[inline]
pub fn linf(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    let mut m = [0.0f64; 8];
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        let (xa, xb): (&[f64; 8], &[f64; 8]) = (xa.try_into().unwrap(), xb.try_into().unwrap());
        for l in 0..8 {
            let v = (xa[l] - xb[l]).abs();
            m[l] = if v > m[l] { v } else { m[l] };
        }
    }
    let mut tail: f64 = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail = tail.max((x - y).abs());
    }
    (((m[0].max(m[1])).max(m[2].max(m[3]))).max((m[4].max(m[5])).max(m[6].max(m[7])))).max(tail)
}

/// Manhattan distance on raw slices. Eight-lane unrolled; see module docs.
#[inline]
pub fn l1(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    let mut s = [0.0f64; 8];
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        let (xa, xb): (&[f64; 8], &[f64; 8]) = (xa.try_into().unwrap(), xb.try_into().unwrap());
        for l in 0..8 {
            s[l] += (xa[l] - xb[l]).abs();
        }
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += (x - y).abs();
    }
    (((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]))) + tail
}

/// Reference single-accumulator squared-Euclidean loop (the seed's kernel).
/// Kept for kernel pinning tests and the `exp_perf_report` trajectory; use
/// [`l2_squared`] everywhere else.
#[inline]
pub fn l2_squared_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Reference scalar Euclidean distance; see [`l2_squared_scalar`].
#[inline]
pub fn l2_scalar(a: &[f64], b: &[f64]) -> f64 {
    l2_squared_scalar(a, b).sqrt()
}

/// Reference scalar Chebyshev loop; see [`l2_squared_scalar`].
#[inline]
pub fn linf_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc: f64 = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc = acc.max((x - y).abs());
    }
    acc
}

/// Reference scalar Manhattan loop; see [`l2_squared_scalar`].
#[inline]
pub fn l1_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += (x - y).abs();
    }
    acc
}

impl<P: AsRef<[f64]> + ?Sized> Metric<P> for Euclidean {
    #[inline]
    fn dist(&self, a: &P, b: &P) -> f64 {
        l2(a.as_ref(), b.as_ref())
    }

    #[inline]
    fn surrogate(&self, a: &P, b: &P) -> f64 {
        l2_squared(a.as_ref(), b.as_ref())
    }

    #[inline]
    fn dist_from_surrogate(&self, s: f64) -> f64 {
        s.sqrt()
    }
}

impl<P: AsRef<[f64]> + ?Sized> Metric<P> for Chebyshev {
    #[inline]
    fn dist(&self, a: &P, b: &P) -> f64 {
        linf(a.as_ref(), b.as_ref())
    }
}

impl<P: AsRef<[f64]> + ?Sized> Metric<P> for Manhattan {
    #[inline]
    fn dist(&self, a: &P, b: &P) -> f64 {
        l1(a.as_ref(), b.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_hand_computation() {
        assert_eq!(l2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn linf_matches_hand_computation() {
        assert_eq!(linf(&[0.0, 0.0], &[3.0, 4.0]), 4.0);
        assert_eq!(linf(&[-1.0, 2.0], &[1.0, 2.5]), 2.0);
    }

    #[test]
    fn l1_matches_hand_computation() {
        assert_eq!(l1(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
    }

    #[test]
    fn norm_ordering_l_inf_le_l2_le_l1() {
        let a = [0.3, -1.2, 4.5, 0.0];
        let b = [-2.0, 0.7, 3.3, 9.1];
        assert!(linf(&a, &b) <= l2(&a, &b) + 1e-12);
        assert!(l2(&a, &b) <= l1(&a, &b) + 1e-12);
    }

    #[test]
    fn works_on_vec_and_array_points() {
        let v1 = vec![1.0, 2.0];
        let v2 = vec![4.0, 6.0];
        assert_eq!(Euclidean.dist(&v1, &v2), 5.0);
        let a1 = [1.0, 2.0];
        let a2 = [4.0, 6.0];
        assert_eq!(Euclidean.dist(&a1, &a2), 5.0);
    }

    /// Deterministic pseudo-random coordinates (SplitMix64 bits mapped into
    /// [-8, 8)) so the kernel pinning sweeps need no RNG dependency.
    fn coords(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64 * 16.0 - 8.0
            })
            .collect()
    }

    #[test]
    fn unrolled_kernels_match_scalar_on_odd_dims_and_remainders() {
        // d = 1, 3, 5, 7 exercise the pure-remainder and chunk+remainder
        // paths; 4 and 8 the exact-chunk path; 13 a longer mixed case.
        for d in [1usize, 2, 3, 4, 5, 6, 7, 8, 13, 32, 129] {
            let a = coords(2 * d as u64 + 1, d);
            let b = coords(7 * d as u64 + 5, d);
            let (s, sr) = (l2_squared(&a, &b), l2_squared_scalar(&a, &b));
            assert!(
                (s - sr).abs() <= 1e-12 * sr.abs().max(1.0),
                "l2_squared diverged at d={d}: {s} vs {sr}"
            );
            let (s, sr) = (l1(&a, &b), l1_scalar(&a, &b));
            assert!(
                (s - sr).abs() <= 1e-12 * sr.abs().max(1.0),
                "l1 diverged at d={d}: {s} vs {sr}"
            );
            // max has no rounding: bit-identical for every length.
            assert_eq!(linf(&a, &b), linf_scalar(&a, &b), "linf diverged at d={d}");
        }
    }

    #[test]
    fn unrolled_kernels_exact_on_integer_coordinates() {
        // Integer-valued inputs make every partial sum exact, so unrolled
        // and scalar summation orders must agree to the bit.
        for d in [1usize, 3, 4, 5, 7, 8, 11] {
            let a: Vec<f64> = (0..d).map(|i| (i as f64) * 3.0 - 7.0).collect();
            let b: Vec<f64> = (0..d).map(|i| (i as f64 * i as f64) - 2.0).collect();
            assert_eq!(l2_squared(&a, &b), l2_squared_scalar(&a, &b), "d={d}");
            assert_eq!(l1(&a, &b), l1_scalar(&a, &b), "d={d}");
            assert_eq!(linf(&a, &b), linf_scalar(&a, &b), "d={d}");
        }
    }

    /// Pins P = Vec<f64>: the surrogate-mapping method alone does not
    /// mention the point type, so concrete calls need a bounded context.
    fn round_trip<M: Metric<Vec<f64>>>(m: &M, a: &Vec<f64>, b: &Vec<f64>) -> (f64, f64, f64) {
        let s = m.surrogate(a, b);
        (s, m.dist_from_surrogate(s), m.dist(a, b))
    }

    #[test]
    fn euclidean_surrogate_is_consistent_with_dist() {
        let a = coords(11, 9);
        let b = coords(12, 9);
        let (s, via_surrogate, direct) = round_trip(&Euclidean, &a, &b);
        assert_eq!(s, l2_squared(&a, &b));
        // Contract 1: bit-identical round-trip.
        assert_eq!(via_surrogate, direct);
        // Defaults on the other metrics: surrogate == dist, identity map.
        let (s1, via1, direct1) = round_trip(&Manhattan, &a, &b);
        assert_eq!(s1, direct1);
        assert_eq!(via1, s1);
    }

    #[test]
    fn surrogate_forwards_through_references() {
        let a = vec![0.0, 0.0];
        let b = vec![3.0, 4.0];
        let (s, via_surrogate, direct) = round_trip(&&Euclidean, &a, &b);
        assert_eq!(s, 25.0);
        assert_eq!(via_surrogate, 5.0);
        assert_eq!(direct, 5.0);
    }
}
