//! `L_p` metrics on `R^d`.
//!
//! The paper works with a general metric space `(M, D)` and specializes to
//! `(R^d, L_2)` in Section 5 and `(R^d, L_inf)` in Section 4. All three
//! metrics here accept any point type that can be viewed as `&[f64]`
//! (`Vec<f64>`, `[f64; N]`, slices), so datasets can store whatever layout is
//! convenient.

use crate::metric::Metric;

/// The Euclidean metric `L_2(p, q) = sqrt(sum_i (p[i] - q[i])^2)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

/// The Chebyshev metric `L_inf(p, q) = max_i |p[i] - q[i]|`.
///
/// Used by the hard instance of Section 4, whose data-to-data distances are
/// `L_inf` on integer blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

/// The Manhattan metric `L_1(p, q) = sum_i |p[i] - q[i]|`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

/// Squared Euclidean distance; **not** a metric (fails the triangle
/// inequality) but useful as a comparison kernel where monotonicity is all
/// that matters. Kept separate from [`Euclidean`] so it can never be passed
/// where a true metric is required by generic code paths that rely on the
/// triangle inequality.
#[inline]
pub fn l2_squared(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance on raw slices.
#[inline]
pub fn l2(a: &[f64], b: &[f64]) -> f64 {
    l2_squared(a, b).sqrt()
}

/// Chebyshev distance on raw slices.
#[inline]
pub fn linf(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc: f64 = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc = acc.max((x - y).abs());
    }
    acc
}

/// Manhattan distance on raw slices.
#[inline]
pub fn l1(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += (x - y).abs();
    }
    acc
}

impl<P: AsRef<[f64]> + ?Sized> Metric<P> for Euclidean {
    #[inline]
    fn dist(&self, a: &P, b: &P) -> f64 {
        l2(a.as_ref(), b.as_ref())
    }
}

impl<P: AsRef<[f64]> + ?Sized> Metric<P> for Chebyshev {
    #[inline]
    fn dist(&self, a: &P, b: &P) -> f64 {
        linf(a.as_ref(), b.as_ref())
    }
}

impl<P: AsRef<[f64]> + ?Sized> Metric<P> for Manhattan {
    #[inline]
    fn dist(&self, a: &P, b: &P) -> f64 {
        l1(a.as_ref(), b.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_hand_computation() {
        assert_eq!(l2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn linf_matches_hand_computation() {
        assert_eq!(linf(&[0.0, 0.0], &[3.0, 4.0]), 4.0);
        assert_eq!(linf(&[-1.0, 2.0], &[1.0, 2.5]), 2.0);
    }

    #[test]
    fn l1_matches_hand_computation() {
        assert_eq!(l1(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
    }

    #[test]
    fn norm_ordering_l_inf_le_l2_le_l1() {
        let a = [0.3, -1.2, 4.5, 0.0];
        let b = [-2.0, 0.7, 3.3, 9.1];
        assert!(linf(&a, &b) <= l2(&a, &b) + 1e-12);
        assert!(l2(&a, &b) <= l1(&a, &b) + 1e-12);
    }

    #[test]
    fn works_on_vec_and_array_points() {
        let v1 = vec![1.0, 2.0];
        let v2 = vec![4.0, 6.0];
        assert_eq!(Euclidean.dist(&v1, &v2), 5.0);
        let a1 = [1.0, 2.0];
        let a2 = [4.0, 6.0];
        assert_eq!(Euclidean.dist(&a1, &a2), 5.0);
    }
}
