//! Distance-computation instrumentation.
//!
//! The paper defines query time as the **number of distance computations**
//! performed by `greedy` (Section 1.1: "a `Q` query time guarantee ...
//! directly translates into a maximum running time of `O(Q)` because distance
//! calculation is the bottleneck"). Every experiment in this workspace
//! therefore measures distance evaluations through [`Counting`], which wraps
//! any metric and counts calls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metric::Metric;

/// A metric wrapper that counts distance evaluations.
///
/// The counter uses a relaxed atomic so shared references (`&Counting<M>`)
/// can be handed to several data structures at once; the overhead is a single
/// uncontended `fetch_add` per distance call.
///
/// **Clones share the counter** (it is reference-counted): handing a clone to
/// another structure keeps all distance evaluations flowing into one total,
/// which is what the instrumented experiments need.
///
/// # Example
///
/// ```
/// use pg_metric::{Counting, Euclidean, Metric};
///
/// let m = Counting::new(Euclidean);
/// let a = vec![0.0, 0.0];
/// let b = vec![3.0, 4.0];
/// assert_eq!(m.dist(&a, &b), 5.0);
/// assert_eq!(m.count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Counting<M> {
    inner: M,
    count: Arc<AtomicU64>,
}

impl<M: Clone> Clone for Counting<M> {
    fn clone(&self) -> Self {
        Counting {
            inner: self.inner.clone(),
            count: Arc::clone(&self.count),
        }
    }
}

impl<M> Counting<M> {
    /// Wraps `inner`, starting the counter at zero.
    pub fn new(inner: M) -> Self {
        Counting {
            inner,
            count: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of distance evaluations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }

    /// Returns the current count and resets the counter — convenient for
    /// per-phase measurements (`let build_cost = m.take();`).
    pub fn take(&self) -> u64 {
        self.count.swap(0, Ordering::Relaxed)
    }

    /// A reference to the wrapped metric (does not count).
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Unwraps, discarding the counter.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<P: ?Sized, M: Metric<P>> Metric<P> for Counting<M> {
    #[inline]
    fn dist(&self, a: &P, b: &P) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.dist(a, b)
    }

    /// Counts exactly like [`Counting::dist`]: a surrogate evaluation does
    /// the same coordinate work, so it is one distance computation in the
    /// paper's cost model. Comparison-only code paths therefore keep their
    /// `dist_comps` accounting unchanged when they switch to surrogates.
    #[inline]
    fn surrogate(&self, a: &P, b: &P) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.surrogate(a, b)
    }

    /// Pure float transform — **not** counted.
    #[inline]
    fn dist_from_surrogate(&self, s: f64) -> f64 {
        self.inner.dist_from_surrogate(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::Euclidean;

    #[test]
    fn counts_every_call() {
        let m = Counting::new(Euclidean);
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let mut total = 0.0;
        for a in &pts {
            for b in &pts {
                total += m.dist(a, b);
            }
        }
        assert!(total > 0.0);
        assert_eq!(m.count(), 100);
    }

    #[test]
    fn take_resets() {
        let m = Counting::new(Euclidean);
        let a = vec![0.0];
        let b = vec![1.0];
        m.dist(&a, &b);
        m.dist(&a, &b);
        assert_eq!(m.take(), 2);
        assert_eq!(m.count(), 0);
        m.dist(&a, &b);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn clones_share_the_counter() {
        let m = Counting::new(Euclidean);
        let m2 = m.clone();
        let a = vec![0.0];
        let b = vec![1.0];
        m.dist(&a, &b);
        m2.dist(&a, &b);
        assert_eq!(m.count(), 2);
        assert_eq!(m2.count(), 2);
        m.reset();
        assert_eq!(m2.count(), 0);
    }

    #[test]
    fn shared_references_count_into_same_counter() {
        let m = Counting::new(Euclidean);
        let r1 = &m;
        let r2 = &m;
        let a = vec![0.0];
        let b = vec![1.0];
        r1.dist(&a, &b);
        r2.dist(&a, &b);
        assert_eq!(m.count(), 2);
    }
}
