//! Contiguous point storage: the cache-friendly layout for `R^d` datasets.
//!
//! The seed stored Euclidean datasets as `Vec<Vec<f64>>` — one heap
//! allocation per point, so every distance computation chases a pointer to a
//! scattered row. [`FlatPoints`] packs all `n` points into a single
//! row-major `n × d` buffer: `row(i)` is a direct slice at offset `i * d`,
//! adjacent ids are adjacent in memory, and a linear scan streams through
//! the cache the way the hardware wants.
//!
//! To plug into the workspace's generic machinery (`Dataset<P, M>`, the
//! search routines, every graph construction) without a new set of APIs,
//! [`FlatPoints::into_dataset`] converts the buffer into a
//! `Dataset<FlatRow, M>`: a [`FlatRow`] is a cheap handle
//! (`Arc<[f64]>` + offset) that implements `AsRef<[f64]>`, so all `L_p`
//! metrics and every `P: AsRef<[f64]>`-generic algorithm accept it
//! unchanged while the coordinates stay contiguous. Query points use the
//! same type via `FlatRow::from(vec)` (a one-row buffer) or
//! [`FlatPoints::into_rows`] for whole query sets.
//!
//! ```
//! use pg_metric::{Euclidean, FlatPoints, FlatRow, Metric};
//!
//! let mut fp = FlatPoints::new(2);
//! fp.push(&[0.0, 0.0]);
//! fp.push(&[3.0, 4.0]);
//! assert_eq!(fp.row(1), &[3.0, 4.0]);
//!
//! let data = fp.into_dataset(Euclidean);
//! assert_eq!(data.dist(0, 1), 5.0);
//! let q = FlatRow::from(vec![3.0, 0.0]);
//! assert_eq!(data.nearest_brute(&q).0, 0);
//! ```
//!
//! Generators should fill flat storage directly via [`FlatPoints::from_fn`]
//! (the `pg_workloads` `*_flat` variants do), and serving systems should
//! persist it: the buffer round-trips losslessly through the `pg_store`
//! snapshot format via [`FlatPoints::as_slice`] on the way out and
//! [`FlatPoints::try_from_raw`] on the way back. The full design rationale
//! (why a 24-byte handle, why one shared allocation) lives in
//! `ARCHITECTURE.md` at the repository root.

use std::sync::Arc;

use crate::dataset::Dataset;
use crate::metric::Metric;

/// An `n × d` row-major contiguous point buffer (see the module docs).
///
/// The invariant `data.len() == n * dim` always holds; rows are addressed by
/// dense ids `0..n` exactly like [`Dataset`] points. There is deliberately
/// no `Default`: a buffer needs a dimension (`dim >= 1`), so construct via
/// [`FlatPoints::new`] / [`FlatPoints::with_capacity`] / [`FlatPoints::from_fn`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlatPoints {
    data: Vec<f64>,
    dim: usize,
}

impl FlatPoints {
    /// An empty buffer for `dim`-dimensional points (`dim >= 1`).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1, "dimension must be at least 1");
        FlatPoints {
            data: Vec::new(),
            dim,
        }
    }

    /// [`FlatPoints::new`] with capacity pre-reserved for `n` points.
    pub fn with_capacity(n: usize, dim: usize) -> Self {
        assert!(dim >= 1, "dimension must be at least 1");
        FlatPoints {
            data: Vec::with_capacity(n * dim),
            dim,
        }
    }

    /// Builds the `n × d` buffer from a coordinate function — the generator
    /// entry point: workloads fill flat storage directly instead of routing
    /// through `Vec<Vec<f64>>`. `f(i)` must append exactly `dim` values for
    /// point `i` (asserted).
    ///
    /// ```
    /// use pg_metric::FlatPoints;
    ///
    /// // A 4 × 3 buffer without any intermediate per-point Vec.
    /// let fp = FlatPoints::from_fn(4, 3, |i, out| {
    ///     out.extend((0..3).map(|j| (i * 3 + j) as f64));
    /// });
    /// assert_eq!(fp.len(), 4);
    /// assert_eq!(fp.row(2), &[6.0, 7.0, 8.0]);
    /// ```
    pub fn from_fn(n: usize, dim: usize, mut f: impl FnMut(usize, &mut Vec<f64>)) -> Self {
        let mut fp = FlatPoints::with_capacity(n, dim);
        for i in 0..n {
            let before = fp.data.len();
            f(i, &mut fp.data);
            assert_eq!(
                fp.data.len() - before,
                dim,
                "generator wrote the wrong number of coordinates for point {i}"
            );
        }
        fp
    }

    /// Appends one point (`p.len()` must equal the buffer's dimension).
    pub fn push(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dim, "dimension mismatch");
        self.data.extend_from_slice(p);
    }

    /// Number of points `n`.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the buffer holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The dimension `d` (row stride).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The coordinates of point `i` — a direct slice into the buffer.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Iterates over all rows in id order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// The whole `n * d` buffer, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Copies out the legacy nested layout (one `Vec` per point).
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        self.rows().map(|r| r.to_vec()).collect()
    }

    /// Rebuilds a buffer from a raw row-major coordinate vector — the
    /// deserialization entry point (`pg_store` snapshots carry exactly this
    /// vector). Unlike the panicking constructors, untrusted input gets a
    /// typed rejection: the length must be a non-zero multiple of `dim`,
    /// `dim >= 1`, and every value finite.
    pub fn try_from_raw(data: Vec<f64>, dim: usize) -> Result<Self, String> {
        if dim == 0 {
            return Err("dimension must be at least 1".into());
        }
        if data.is_empty() {
            return Err("coordinate buffer is empty".into());
        }
        if !data.len().is_multiple_of(dim) {
            return Err(format!(
                "coordinate buffer length {} is not a multiple of dim = {dim}",
                data.len()
            ));
        }
        if data.iter().any(|c| !c.is_finite()) {
            return Err("non-finite coordinate".into());
        }
        Ok(FlatPoints { data, dim })
    }

    /// Converts into per-point [`FlatRow`] handles that all share one
    /// allocation — the point type for flat-backed [`Dataset`]s and query
    /// batches.
    pub fn into_rows(self) -> Vec<FlatRow> {
        assert!(
            self.data.len() <= u32::MAX as usize,
            "flat buffer exceeds u32 addressing (4G coordinates)"
        );
        let dim = self.dim;
        let n = self.len();
        let buf: Arc<[f64]> = self.data.into();
        (0..n)
            .map(|i| FlatRow {
                buf: Arc::clone(&buf),
                start: (i * dim) as u32,
                dim: dim as u32,
            })
            .collect()
    }

    /// Converts into a flat-backed dataset: `Dataset<FlatRow, M>` with all
    /// coordinates in one contiguous allocation. Panics if empty, exactly
    /// like [`Dataset::new`].
    pub fn into_dataset<M: Metric<FlatRow>>(self, metric: M) -> Dataset<FlatRow, M> {
        Dataset::new(self.into_rows(), metric)
    }
}

impl From<Vec<Vec<f64>>> for FlatPoints {
    /// Flattens a nested point set (all rows must share one dimension).
    fn from(rows: Vec<Vec<f64>>) -> Self {
        FlatPoints::from(&rows[..])
    }
}

impl From<&[Vec<f64>]> for FlatPoints {
    fn from(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot infer dimension from zero rows");
        let mut fp = FlatPoints::with_capacity(rows.len(), rows[0].len());
        for r in rows {
            fp.push(r);
        }
        fp
    }
}

/// A point handle into a shared contiguous buffer (see the module docs).
///
/// `Clone` is an `Arc` bump; `AsRef<[f64]>` yields the coordinate slice, so
/// every `P: AsRef<[f64]>` metric and algorithm accepts `FlatRow` points
/// directly. Offsets are `u32` (up to 4G coordinates per buffer), keeping
/// the handle at 24 bytes — the same footprint as the `Vec<f64>` header it
/// replaces, so the handle array costs no extra cache traffic.
#[derive(Debug, Clone)]
pub struct FlatRow {
    buf: Arc<[f64]>,
    start: u32,
    dim: u32,
}

impl FlatRow {
    /// The coordinate slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        let start = self.start as usize;
        &self.buf[start..start + self.dim as usize]
    }

    /// The dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }
}

impl AsRef<[f64]> for FlatRow {
    #[inline]
    fn as_ref(&self) -> &[f64] {
        self.coords()
    }
}

impl From<Vec<f64>> for FlatRow {
    /// Wraps a single owned point (e.g. an ad-hoc query) in its own one-row
    /// buffer.
    fn from(p: Vec<f64>) -> Self {
        let dim = p.len();
        assert!(dim >= 1, "dimension must be at least 1");
        assert!(dim <= u32::MAX as usize, "point dimension exceeds u32");
        FlatRow {
            buf: p.into(),
            start: 0,
            dim: dim as u32,
        }
    }
}

impl From<&[f64]> for FlatRow {
    fn from(p: &[f64]) -> Self {
        FlatRow::from(p.to_vec())
    }
}

impl PartialEq for FlatRow {
    /// Coordinate equality (handles into different buffers compare equal
    /// when the points coincide).
    fn eq(&self, other: &Self) -> bool {
        self.coords() == other.coords()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::Euclidean;

    #[test]
    fn push_row_and_iteration_round_trip() {
        let mut fp = FlatPoints::with_capacity(3, 2);
        fp.push(&[0.0, 1.0]);
        fp.push(&[2.0, 3.0]);
        fp.push(&[4.0, 5.0]);
        assert_eq!(fp.len(), 3);
        assert_eq!(fp.dim(), 2);
        assert_eq!(fp.row(1), &[2.0, 3.0]);
        assert_eq!(fp.rows().count(), 3);
        assert_eq!(fp.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(fp.to_nested()[2], vec![4.0, 5.0]);
    }

    #[test]
    fn nested_round_trip_is_lossless() {
        let nested = vec![vec![1.5, -2.0, 0.25], vec![0.0, 7.0, 9.0]];
        let fp = FlatPoints::from(nested.clone());
        assert_eq!(fp.to_nested(), nested);
    }

    #[test]
    fn from_fn_builds_without_intermediate_rows() {
        let fp = FlatPoints::from_fn(4, 3, |i, out| {
            out.extend((0..3).map(|j| (i * 3 + j) as f64));
        });
        assert_eq!(fp.len(), 4);
        assert_eq!(fp.row(2), &[6.0, 7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "wrong number of coordinates")]
    fn from_fn_rejects_ragged_generators() {
        let _ = FlatPoints::from_fn(2, 3, |i, out| {
            out.resize(out.len() + 3 - i, 0.0);
        });
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_rejects_wrong_dimension() {
        let mut fp = FlatPoints::new(2);
        fp.push(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn rows_share_one_allocation() {
        let mut fp = FlatPoints::new(2);
        fp.push(&[0.0, 0.0]);
        fp.push(&[3.0, 4.0]);
        let rows = fp.into_rows();
        assert_eq!(rows.len(), 2);
        assert!(Arc::ptr_eq(&rows[0].buf, &rows[1].buf));
        assert_eq!(rows[1].coords(), &[3.0, 4.0]);
        assert_eq!(rows[1].dim(), 2);
    }

    #[test]
    fn flat_dataset_matches_nested_distances() {
        let nested = vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![6.0, 8.0]];
        let flat = FlatPoints::from(nested.clone()).into_dataset(Euclidean);
        let nest = Dataset::new(nested, Euclidean);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(flat.dist(i, j), nest.dist(i, j));
            }
        }
        let q = FlatRow::from(vec![3.1, 3.9]);
        assert_eq!(flat.nearest_brute(&q).0, 1);
    }

    #[test]
    fn try_from_raw_round_trips_and_rejects_bad_input() {
        let fp = FlatPoints::from(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let back = FlatPoints::try_from_raw(fp.as_slice().to_vec(), fp.dim()).unwrap();
        assert_eq!(back, fp);
        assert!(FlatPoints::try_from_raw(vec![1.0, 2.0], 0).is_err());
        assert!(FlatPoints::try_from_raw(Vec::new(), 2).is_err());
        assert!(FlatPoints::try_from_raw(vec![1.0, 2.0, 3.0], 2).is_err());
        assert!(FlatPoints::try_from_raw(vec![1.0, f64::INFINITY], 2).is_err());
        assert!(FlatPoints::try_from_raw(vec![1.0, f64::NAN], 2).is_err());
    }

    #[test]
    fn flat_row_equality_is_coordinate_equality() {
        let a = FlatRow::from(vec![1.0, 2.0]);
        let mut fp = FlatPoints::new(2);
        fp.push(&[1.0, 2.0]);
        let b = fp.into_rows().pop().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, FlatRow::from(vec![1.0, 2.5]));
    }
}
