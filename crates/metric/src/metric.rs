//! The [`Metric`] trait.

/// A metric (distance function) over points of type `P`.
///
/// Implementations must satisfy the metric axioms of Section 1.1:
///
/// 1. **Identity of indiscernibles**: `dist(a, b) == 0.0` iff `a == b`;
/// 2. **Symmetry**: `dist(a, b) == dist(b, a)`;
/// 3. **Triangle inequality**: `dist(a, b) <= dist(a, c) + dist(b, c)`.
///
/// Distances are non-negative finite `f64` values. The axioms are checked by
/// property tests (see [`axioms`]) for every metric in the workspace,
/// including the adversarial metric family `D_{p*}` of Section 4 implemented
/// in `pg-hardness`.
pub trait Metric<P: ?Sized> {
    /// The distance `D(a, b)` between two points.
    fn dist(&self, a: &P, b: &P) -> f64;

    /// A monotone *surrogate* of the distance, for comparison-only code
    /// paths.
    ///
    /// The routing procedures (`greedy`, `query`, beam search) only ever
    /// *compare* distances to the query; the actual values are reported once
    /// at the end. A metric may therefore expose a cheaper monotone stand-in
    /// — Euclidean uses the **squared** distance, skipping the `sqrt` on
    /// every comparison. Implementations must guarantee:
    ///
    /// 1. `dist_from_surrogate(surrogate(a, b))` is **bit-identical** to
    ///    `dist(a, b)`;
    /// 2. `surrogate(a, b) <= surrogate(c, d)` implies
    ///    `dist(a, b) <= dist(c, d)`, and surrogate equality implies
    ///    distance equality.
    ///
    /// Note the implication is one-way: a rounded monotone map can collapse
    /// *distinct* surrogates onto *equal* distances (correctly-rounded
    /// `sqrt` does, by pigeonhole), so the surrogate order refines the
    /// distance order. Comparison-only code that switches to surrogates
    /// therefore never gets a wrong answer — where the two orders differ,
    /// the surrogate is the more discriminating (pre-rounding) comparison —
    /// but it may break a rounded-distance tie that `dist`-based code
    /// would have seen.
    ///
    /// One `surrogate` call counts as one distance computation in the
    /// paper's cost model (the [`Counting`](crate::Counting) wrapper counts
    /// it), because it does the same coordinate work. The default is the
    /// distance itself.
    #[inline]
    fn surrogate(&self, a: &P, b: &P) -> f64 {
        self.dist(a, b)
    }

    /// Maps a [`surrogate`](Metric::surrogate) value back to the true
    /// distance (default: identity). Must be monotone non-decreasing; this
    /// is a pure float transform, **not** a distance computation.
    #[inline]
    fn dist_from_surrogate(&self, s: f64) -> f64 {
        s
    }
}

impl<P: ?Sized, M: Metric<P> + ?Sized> Metric<P> for &M {
    #[inline]
    fn dist(&self, a: &P, b: &P) -> f64 {
        (**self).dist(a, b)
    }

    #[inline]
    fn surrogate(&self, a: &P, b: &P) -> f64 {
        (**self).surrogate(a, b)
    }

    #[inline]
    fn dist_from_surrogate(&self, s: f64) -> f64 {
        (**self).dist_from_surrogate(s)
    }
}

/// Helpers for checking the metric axioms on concrete instances.
///
/// These are deliberately exposed as library functions (not only as tests) so
/// that downstream crates can re-check the axioms for their own metrics —
/// `pg-hardness` uses them to validate the adversarial metrics `D_{p*}`.
pub mod axioms {
    use super::Metric;

    /// Absolute slack used when comparing floating-point distances.
    pub const EPS: f64 = 1e-9;

    /// Checks symmetry `D(a, b) == D(b, a)` up to floating-point slack.
    pub fn symmetric<P: ?Sized, M: Metric<P>>(m: &M, a: &P, b: &P) -> bool {
        let ab = m.dist(a, b);
        let ba = m.dist(b, a);
        ab.is_finite() && ba.is_finite() && (ab - ba).abs() <= EPS * (1.0 + ab.abs())
    }

    /// Checks non-negativity of `D(a, b)`.
    pub fn non_negative<P: ?Sized, M: Metric<P>>(m: &M, a: &P, b: &P) -> bool {
        m.dist(a, b) >= 0.0
    }

    /// Checks the triangle inequality `D(a, b) <= D(a, c) + D(b, c)` up to
    /// relative floating-point slack.
    pub fn triangle<P: ?Sized, M: Metric<P>>(m: &M, a: &P, b: &P, c: &P) -> bool {
        let ab = m.dist(a, b);
        let ac = m.dist(a, c);
        let bc = m.dist(b, c);
        ab <= ac + bc + EPS * (1.0 + ab + ac + bc)
    }

    /// Checks `D(a, a) == 0`.
    pub fn zero_self<P: ?Sized, M: Metric<P>>(m: &M, a: &P) -> bool {
        m.dist(a, a).abs() <= EPS
    }

    /// Checks all axioms over every (ordered) triple drawn from `pts`.
    ///
    /// Quadratic/cubic in `pts.len()` — intended for small test inputs.
    pub fn check_all<P, M: Metric<P>>(m: &M, pts: &[P]) -> Result<(), String> {
        for (i, a) in pts.iter().enumerate() {
            if !zero_self(m, a) {
                return Err(format!("D(p{i}, p{i}) != 0"));
            }
            for (j, b) in pts.iter().enumerate() {
                if !non_negative(m, a, b) {
                    return Err(format!("D(p{i}, p{j}) < 0"));
                }
                if !symmetric(m, a, b) {
                    return Err(format!("D(p{i}, p{j}) != D(p{j}, p{i})"));
                }
                for (k, c) in pts.iter().enumerate() {
                    if !triangle(m, a, b, c) {
                        return Err(format!(
                            "triangle inequality violated on (p{i}, p{j}, p{k})"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::axioms;
    use crate::lp::Euclidean;

    #[test]
    fn euclidean_axioms_on_small_set() {
        let pts: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![-3.5, 2.25],
            vec![1e-9, -1e-9],
        ];
        axioms::check_all(&Euclidean, &pts).unwrap();
    }

    #[test]
    fn metric_impl_for_references() {
        // `&M` must also be a metric, so instrumented metrics can be shared.
        fn takes_metric<M: super::Metric<Vec<f64>>>(m: M) -> f64 {
            m.dist(&vec![0.0], &vec![3.0])
        }
        let e = Euclidean;
        assert_eq!(takes_metric(e), 3.0);
        assert_eq!(takes_metric(e), 3.0);
    }
}
