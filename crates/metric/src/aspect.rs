//! Aspect-ratio estimation.
//!
//! The remark at the end of Section 2.4 explains how to remove the assumption
//! that `d_min` and `d_max = diam(P)` are known: compute in `O(n log n)` time
//! values `d̂_min ∈ [d_min / 2, d_min]` and `d̂_max ∈ [d_max, 2 d_max]`, so
//! that `d̂_max / d̂_min` approximates the aspect ratio `Δ` up to a factor 4.
//!
//! * `d̂_max` ("take an arbitrary point p and set d̂_max = 2 max_{p'} D(p, p')")
//!   is implemented here — it needs only `n - 1` distance evaluations.
//! * `d̂_min` needs a 2-ANN structure; the paper-faithful implementation lives
//!   in `pg-covertree` (`approx_min_dist`), and the hierarchical net builder
//!   of `pg-nets` recovers an equivalent estimate for free (the deepest net
//!   level radius lies in `[d_min / 2, d_min)`). The exact `O(n^2)` versions
//!   are on [`crate::Dataset`] for testing.

use crate::dataset::Dataset;
use crate::metric::Metric;

/// Upper estimate of the diameter from Section 2.4's remark:
/// `d̂_max = 2 * max_{p'} D(p_0, p')`, guaranteed to lie in
/// `[d_max, 2 d_max]` by the triangle inequality.
///
/// Costs exactly `n - 1` distance evaluations.
pub fn approx_diameter<P, M: Metric<P>>(data: &Dataset<P, M>) -> f64 {
    let mut maxd: f64 = 0.0;
    for i in 1..data.len() {
        maxd = maxd.max(data.dist(0, i));
    }
    2.0 * maxd
}

/// `ceil(log2 x)` for positive finite `x`, clamped below at 0.
///
/// Used throughout for the paper's level indices, e.g. `h = ceil(log diam(P))`
/// (Eq. 1) and `η = ceil(log(1 + 2/ε))` (Eq. 3).
pub fn ceil_log2(x: f64) -> u32 {
    assert!(x.is_finite() && x > 0.0, "ceil_log2 of non-positive value");
    if x <= 1.0 {
        return 0;
    }
    // Floating-point log2 can land just below an integer; round carefully.
    let l = x.log2();
    let c = l.ceil();
    // If x is (numerically) an exact power of two, make sure we don't round up.
    if (2f64.powi(c as i32 - 1) - x).abs() <= f64::EPSILON * x {
        (c as u32).saturating_sub(1)
    } else {
        c as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::Euclidean;

    #[test]
    fn approx_diameter_within_factor_two() {
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                vec![
                    (i as f64 * 0.37).sin() * 10.0,
                    (i as f64 * 0.73).cos() * 3.0,
                ]
            })
            .collect();
        let ds = Dataset::new(pts, Euclidean);
        let (_, dmax) = ds.min_max_interpoint();
        let est = approx_diameter(&ds);
        assert!(
            est >= dmax - 1e-12,
            "estimate {est} below true diameter {dmax}"
        );
        assert!(
            est <= 2.0 * dmax + 1e-12,
            "estimate {est} above 2x diameter {dmax}"
        );
    }

    #[test]
    fn ceil_log2_exact_powers() {
        assert_eq!(ceil_log2(1.0), 0);
        assert_eq!(ceil_log2(2.0), 1);
        assert_eq!(ceil_log2(4.0), 2);
        assert_eq!(ceil_log2(1024.0), 10);
    }

    #[test]
    fn ceil_log2_between_powers() {
        assert_eq!(ceil_log2(3.0), 2);
        assert_eq!(ceil_log2(5.0), 3);
        assert_eq!(ceil_log2(1.5), 1);
        assert_eq!(ceil_log2(0.5), 0);
    }
}
