//! Property tests for the metric kernel: axioms for every `L_p` metric on
//! random vectors, instrumentation exactness, and estimator bands.

use pg_metric::aspect::{approx_diameter, ceil_log2};
use pg_metric::metric::axioms;
use pg_metric::{Chebyshev, Counting, Dataset, Euclidean, Manhattan, Metric, Scaled};
use proptest::prelude::*;

fn vec3() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e4f64..1e4, 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn euclidean_axioms(a in vec3(), b in vec3(), c in vec3()) {
        let m = Euclidean;
        prop_assert!(axioms::zero_self(&m, &a));
        prop_assert!(axioms::symmetric(&m, &a, &b));
        prop_assert!(axioms::non_negative(&m, &a, &b));
        prop_assert!(axioms::triangle(&m, &a, &b, &c));
    }

    #[test]
    fn chebyshev_axioms(a in vec3(), b in vec3(), c in vec3()) {
        let m = Chebyshev;
        prop_assert!(axioms::symmetric(&m, &a, &b));
        prop_assert!(axioms::triangle(&m, &a, &b, &c));
    }

    #[test]
    fn manhattan_axioms(a in vec3(), b in vec3(), c in vec3()) {
        let m = Manhattan;
        prop_assert!(axioms::symmetric(&m, &a, &b));
        prop_assert!(axioms::triangle(&m, &a, &b, &c));
    }

    #[test]
    fn norm_sandwich(a in vec3(), b in vec3()) {
        // L_inf <= L_2 <= L_1 <= d * L_inf.
        let linf = Chebyshev.dist(&a, &b);
        let l2 = Euclidean.dist(&a, &b);
        let l1 = Manhattan.dist(&a, &b);
        prop_assert!(linf <= l2 + 1e-9);
        prop_assert!(l2 <= l1 + 1e-9);
        prop_assert!(l1 <= 3.0 * linf + 1e-9);
    }

    #[test]
    fn counting_is_exact(pts in prop::collection::vec(vec3(), 2..20)) {
        let m = Counting::new(Euclidean);
        let k = pts.len();
        for i in 0..k {
            for j in 0..k {
                let _ = m.dist(&pts[i], &pts[j]);
            }
        }
        prop_assert_eq!(m.count(), (k * k) as u64);
    }

    #[test]
    fn scaling_commutes_with_distance(a in vec3(), b in vec3(), f in 0.001f64..1000.0) {
        let m = Scaled::new(Euclidean, f);
        let lhs = m.dist(&a, &b);
        let rhs = f * Euclidean.dist(&a, &b);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()));
    }

    #[test]
    fn ceil_log2_is_correct(x in 1u64..1_000_000) {
        let c = ceil_log2(x as f64);
        prop_assert!((1u64 << c) >= x, "2^{c} < {x}");
        if c > 0 {
            prop_assert!((1u64 << (c - 1)) < x, "2^{} >= {x}", c - 1);
        }
    }

    #[test]
    fn approx_diameter_band(pts in prop::collection::vec(vec3(), 2..25)) {
        let ds = Dataset::new(pts, Euclidean);
        let (_, dmax) = ds.min_max_interpoint();
        prop_assume!(dmax > 0.0);
        let est = approx_diameter(&ds);
        prop_assert!(est >= dmax - 1e-9);
        prop_assert!(est <= 2.0 * dmax + 1e-9);
    }

    #[test]
    fn brute_force_knn_is_sorted_and_consistent(
        pts in prop::collection::vec(vec3(), 3..25),
        q in vec3(),
        k in 1usize..5,
    ) {
        let ds = Dataset::new(pts, Euclidean);
        let knn = ds.k_nearest_brute(&q, k);
        prop_assert_eq!(knn.len(), k.min(ds.len()));
        prop_assert!(knn.windows(2).all(|w| w[0].1 <= w[1].1));
        let (nn, d) = ds.nearest_brute(&q);
        prop_assert_eq!(knn[0].1, d);
        let _ = nn;
    }
}
