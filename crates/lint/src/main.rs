//! The `pg_lint` binary: runs the rule engine over the workspace and
//! reports findings in human or JSON form. See the crate docs
//! (`cargo doc -p pg_lint`) and `ARCHITECTURE.md` § "Static analysis".

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pg_lint::rules::{self, Severity, RULES};
use pg_lint::tokenizer::SourceFile;
use pg_lint::workspace::{self, Workspace};
use pg_lint::{json, manifest_rules};

const USAGE: &str = "\
pg_lint — invariant-enforcement lint pass over the workspace

USAGE:
    pg_lint [OPTIONS]

OPTIONS:
    --root <PATH>       Workspace root (default: walk up from cwd to a
                        Cargo.toml containing [workspace])
    --deny              Exit 1 if any deny-severity finding remains
    --json              Emit the report as JSON on stdout
    --list-rules        Print the rule catalogue and exit
    --write-wire-lock   Regenerate crates/serve/wire.lock from the
                        sources (after a *reviewed* protocol change)
    --help              Show this help
";

struct Options {
    root: Option<PathBuf>,
    deny: bool,
    json: bool,
    list_rules: bool,
    write_wire_lock: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        deny: false,
        json: false,
        list_rules: false,
        write_wire_lock: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let path = args.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(path));
            }
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--write-wire-lock" => opts.write_wire_lock = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no Cargo.toml with [workspace] above the current directory".to_string());
        }
    }
}

fn list_rules() {
    println!("{:<22} {:<5} description", "rule", "sev");
    for r in RULES {
        println!("{:<22} {:<5} {}", r.id, r.severity.label(), r.describes);
    }
}

fn write_wire_lock(root: &Path) -> Result<(), String> {
    let ws = Workspace::discover(root)?;
    let protocol = SourceFile::parse(
        workspace::WIRE_PROTOCOL,
        &ws.read(workspace::WIRE_PROTOCOL)?,
    );
    let error = SourceFile::parse(workspace::WIRE_ERROR, &ws.read(workspace::WIRE_ERROR)?);
    let consts = manifest_rules::extract_wire_consts(&protocol, &error);
    if consts.is_empty() {
        return Err("extracted no wire constants; refusing to write an empty manifest".to_string());
    }
    let text = manifest_rules::render_wire_lock(&consts);
    let path = root.join(workspace::WIRE_LOCK);
    std::fs::write(&path, &text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!(
        "wrote {} ({} frozen constants)",
        workspace::WIRE_LOCK,
        consts.len()
    );
    Ok(())
}

/// Escapes a string for a JSON report.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn print_json(report: &rules::Report) {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}{}\n",
            json_str(f.rule),
            json_str(f.severity.label()),
            json_str(&f.path),
            f.line,
            json_str(&f.message),
            if i + 1 < report.findings.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"suppressed\": {},\n  \"files_scanned\": {}\n}}",
        report.suppressed.len(),
        report.files_scanned
    ));
    // The report must itself be valid JSON — parse it back with our own
    // parser before printing, so a quoting bug cannot ship garbage to CI.
    if let Err(e) = json::parse(&out) {
        eprintln!("internal error: emitted invalid JSON ({e})");
        std::process::exit(2);
    }
    println!("{out}");
}

fn print_human(report: &rules::Report, deny: bool) {
    for f in &report.findings {
        println!(
            "{}: [{}] {}:{} — {}",
            f.severity.label(),
            f.rule,
            f.path,
            f.line,
            f.message
        );
    }
    let denies = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    println!(
        "pg_lint: {} file(s) scanned, {} finding(s) ({} deny), {} suppressed by pragma",
        report.files_scanned,
        report.findings.len(),
        denies,
        report.suppressed.len()
    );
    if denies > 0 && !deny {
        println!("note: run with --deny to make these findings fail the build (CI does)");
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pg_lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }
    let root = match opts.root.map(Ok).unwrap_or_else(find_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pg_lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.write_wire_lock {
        return match write_wire_lock(&root) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("pg_lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    let report = match rules::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pg_lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        print_json(&report);
    } else {
        print_human(&report, opts.deny);
    }
    if opts.deny && report.has_deny() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
