//! The rule engine: the rule catalogue, findings, severities,
//! suppression handling, and the whole-workspace driver.
//!
//! Each rule enforces one invariant that is otherwise only prose in
//! `ARCHITECTURE.md`/`CHANGES.md` (the catalogue lives in
//! `ARCHITECTURE.md` § "Static analysis"). Findings on source lines can
//! be suppressed with an inline `// pg-lint: allow(<rule>, <reason>)`
//! pragma on the flagged line or the line above; the reason is mandatory
//! and malformed or unused pragmas are findings themselves, so a
//! suppression can neither be silent nor rot.

use std::collections::HashSet;
use std::path::Path;

use crate::manifest_rules;
use crate::source_rules;
use crate::tokenizer::SourceFile;
use crate::workspace::{self, Workspace};

/// How a finding affects the exit code under `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported, never fails the run. Reserved for advisory rules.
    Warn,
    /// Fails the run under `--deny` (the CI gate).
    Deny,
}

impl Severity {
    /// Lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The rule id (see [`RULES`]).
    pub rule: &'static str,
    /// The rule's severity.
    pub severity: Severity,
    /// Workspace-relative file.
    pub path: String,
    /// 1-based line (0 when the finding is about the file as a whole).
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

/// A catalogue entry: id, severity, one-line description.
pub struct RuleInfo {
    /// Stable rule id, used in pragmas and reports.
    pub id: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// One-line description for `--list-rules`.
    pub describes: &'static str,
}

/// The shipped rule catalogue. Ids are stable: pragmas reference them.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-panic-path",
        severity: Severity::Deny,
        describes: "no unwrap/expect/panic!/unreachable!/indexing in the designated never-panic decode/load modules",
    },
    RuleInfo {
        id: "no-nondeterminism",
        severity: Severity::Deny,
        describes: "no Instant::now/SystemTime/entropy outside pg_bench and compat/criterion",
    },
    RuleInfo {
        id: "surrogate-discipline",
        severity: Severity::Deny,
        describes: "hot-path search modules compare in surrogate space, never raw .dist(",
    },
    RuleInfo {
        id: "wire-freeze",
        severity: Severity::Deny,
        describes: "pg_serve frame kinds and error codes match crates/serve/wire.lock",
    },
    RuleInfo {
        id: "forbid-unsafe",
        severity: Severity::Deny,
        describes: "every crate root declares #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "no-external-deps",
        severity: Severity::Deny,
        describes: "every manifest references only workspace/compat crates (path or workspace deps)",
    },
    RuleInfo {
        id: "bench-artifact-schema",
        severity: Severity::Deny,
        describes: "committed BENCH_*.json artifacts parse and match the documented schema",
    },
    RuleInfo {
        id: "lint-pragma",
        severity: Severity::Deny,
        describes: "pg-lint pragmas are well-formed, name a known rule, and suppress something",
    },
];

/// Looks up a rule's severity; `None` for unknown ids.
pub fn severity_of(rule: &str) -> Option<Severity> {
    RULES.iter().find(|r| r.id == rule).map(|r| r.severity)
}

/// The outcome of a whole-workspace run.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed findings, in scan order.
    pub findings: Vec<Finding>,
    /// Findings silenced by a pragma (kept for reporting counts).
    pub suppressed: Vec<Finding>,
    /// Number of files scanned (sources + manifests + artifacts).
    pub files_scanned: usize,
}

impl Report {
    /// True if any finding is deny-severity.
    pub fn has_deny(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Deny)
    }
}

/// Applies pragma suppression to raw findings from one source file, and
/// emits `lint-pragma` findings for malformed, unknown-rule, or unused
/// pragmas.
pub fn apply_suppressions(
    file: &SourceFile,
    raw: Vec<Finding>,
    findings: &mut Vec<Finding>,
    suppressed: &mut Vec<Finding>,
) {
    let mut used: HashSet<(u32, String)> = HashSet::new();
    for f in raw {
        if file.allowed(f.rule, f.line) {
            for a in &file.allows {
                if a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                    used.insert((a.line, a.rule.clone()));
                }
            }
            suppressed.push(f);
        } else {
            findings.push(f);
        }
    }
    for bad in &file.bad_pragmas {
        findings.push(Finding {
            rule: "lint-pragma",
            severity: Severity::Deny,
            path: file.path.clone(),
            line: bad.line,
            message: format!("malformed pg-lint pragma: {}", bad.problem),
        });
    }
    for a in &file.allows {
        if severity_of(&a.rule).is_none() {
            findings.push(Finding {
                rule: "lint-pragma",
                severity: Severity::Deny,
                path: file.path.clone(),
                line: a.line,
                message: format!("pragma allows unknown rule `{}`", a.rule),
            });
        } else if !used.contains(&(a.line, a.rule.clone())) {
            findings.push(Finding {
                rule: "lint-pragma",
                severity: Severity::Deny,
                path: file.path.clone(),
                line: a.line,
                message: format!(
                    "unused pragma: `{}` fires no finding on line {} or {}",
                    a.rule,
                    a.line,
                    a.line + 1
                ),
            });
        }
    }
}

/// Runs every rule over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<Report, String> {
    let ws = Workspace::discover(root)?;
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut files_scanned = 0usize;

    // --- Token rules over source files -------------------------------
    // One parse per file; each rule picks the files it applies to.
    let mut all_src: Vec<String> = Vec::new();
    for m in &ws.members {
        for f in &m.src_files {
            all_src.push(f.clone());
        }
    }
    all_src.sort();
    all_src.dedup();

    for rel in &all_src {
        let text = ws.read(rel)?;
        let file = SourceFile::parse(rel, &text);
        files_scanned += 1;

        let mut raw = Vec::new();
        if workspace::NO_PANIC_PATHS.contains(&rel.as_str()) {
            raw.extend(source_rules::check_no_panic(&file));
        }
        let exempt = workspace::NONDETERMINISM_EXEMPT
            .iter()
            .any(|prefix| rel.starts_with(prefix));
        if !exempt {
            raw.extend(source_rules::check_nondeterminism(&file));
        }
        if workspace::SURROGATE_PATHS.contains(&rel.as_str()) {
            raw.extend(source_rules::check_surrogate(&file));
        }
        apply_suppressions(&file, raw, &mut findings, &mut suppressed);
    }

    // --- forbid-unsafe over crate roots ------------------------------
    for m in &ws.members {
        for rel in &m.crate_roots {
            let text = ws.read(rel)?;
            let file = SourceFile::parse(rel, &text);
            findings.extend(source_rules::check_forbid_unsafe(&file));
        }
    }

    // --- no-external-deps over manifests -----------------------------
    let mut manifests: Vec<String> = ws.members.iter().map(|m| m.manifest.clone()).collect();
    manifests.sort();
    manifests.dedup();
    for rel in &manifests {
        let text = ws.read(rel)?;
        files_scanned += 1;
        findings.extend(manifest_rules::check_external_deps(rel, &text));
    }

    // --- wire-freeze --------------------------------------------------
    let protocol = SourceFile::parse(
        workspace::WIRE_PROTOCOL,
        &ws.read(workspace::WIRE_PROTOCOL)?,
    );
    let error = SourceFile::parse(workspace::WIRE_ERROR, &ws.read(workspace::WIRE_ERROR)?);
    let lock_text = ws.read(workspace::WIRE_LOCK).ok();
    findings.extend(manifest_rules::check_wire_freeze(
        &protocol,
        &error,
        lock_text.as_deref(),
        workspace::WIRE_LOCK,
    ));

    // --- bench-artifact-schema ----------------------------------------
    for rel in ws.bench_artifacts()? {
        let text = ws.read(&rel)?;
        files_scanned += 1;
        findings.extend(manifest_rules::check_bench_artifact(&rel, &text));
    }

    Ok(Report {
        findings,
        suppressed,
        files_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_typed() {
        let mut seen = HashSet::new();
        for r in RULES {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
            assert!(severity_of(r.id).is_some());
        }
        assert_eq!(severity_of("nope"), None);
    }

    #[test]
    fn deny_and_warn_drive_has_deny() {
        let mk = |severity| Finding {
            rule: "no-panic-path",
            severity,
            path: "x.rs".into(),
            line: 1,
            message: "m".into(),
        };
        let warn_only = Report {
            findings: vec![mk(Severity::Warn)],
            suppressed: vec![],
            files_scanned: 1,
        };
        assert!(!warn_only.has_deny());
        let with_deny = Report {
            findings: vec![mk(Severity::Warn), mk(Severity::Deny)],
            suppressed: vec![],
            files_scanned: 1,
        };
        assert!(with_deny.has_deny());
    }

    #[test]
    fn suppression_consumes_findings_and_flags_unused_pragmas() {
        let src = "\
// pg-lint: allow(no-panic-path, guarded above)
let a = v[0];
// pg-lint: allow(no-panic-path, stale pragma)
let b = 1;
// pg-lint: allow(not-a-rule, whatever)
";
        let file = SourceFile::parse("t.rs", src);
        let raw = vec![Finding {
            rule: "no-panic-path",
            severity: Severity::Deny,
            path: "t.rs".into(),
            line: 2,
            message: "indexing".into(),
        }];
        let mut findings = Vec::new();
        let mut suppressed = Vec::new();
        apply_suppressions(&file, raw, &mut findings, &mut suppressed);
        assert_eq!(suppressed.len(), 1);
        // Two lint-pragma findings: the unused pragma and the unknown rule.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "lint-pragma"));
        assert!(findings.iter().any(|f| f.message.contains("unused")));
        assert!(findings.iter().any(|f| f.message.contains("unknown rule")));
    }
}
