//! Workspace discovery: members, crate roots, manifests, and the
//! designated-path configuration the source rules run against.
//!
//! Everything here reads files and the root `Cargo.toml`; nothing is
//! hard-coded about *which* crates exist except the small designation
//! lists below — the rule catalogue in `ARCHITECTURE.md` § "Static
//! analysis" documents each list and why its entries are on it.

use std::fs;
use std::path::{Path, PathBuf};

/// Files whose decode/load paths are documented as **never panicking**
/// (`no-panic-path` applies): the `pg_store` snapshot parser, the
/// `pg_serve` wire protocol, and the `pg_core` typed snapshot loader.
pub const NO_PANIC_PATHS: &[&str] = &[
    "crates/store/src/lib.rs",
    "crates/serve/src/protocol.rs",
    "crates/core/src/snapshot.rs",
];

/// Hot-path search modules that must compare in surrogate space
/// (`surrogate-discipline` applies): raw `.dist(` calls here would
/// silently undo the PR 3 squared-space optimization. The quantized
/// compare path (PR 10) lives in `search.rs`/`engine.rs` and the compact
/// kernels in `metric/quant.rs`; the reorder pass must stay distance-free.
pub const SURROGATE_PATHS: &[&str] = &[
    "crates/core/src/search.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/sharded.rs",
    "crates/core/src/reorder.rs",
    "crates/metric/src/quant.rs",
];

/// Crates exempt from `no-nondeterminism`: the benchmark harness and the
/// criterion stand-in exist to measure wall-clock time.
pub const NONDETERMINISM_EXEMPT: &[&str] = &["crates/bench", "crates/compat/criterion"];

/// The committed wire-constant manifest `wire-freeze` checks against.
pub const WIRE_LOCK: &str = "crates/serve/wire.lock";

/// The two source files wire constants are extracted from.
pub const WIRE_PROTOCOL: &str = "crates/serve/src/protocol.rs";
/// See [`WIRE_PROTOCOL`].
pub const WIRE_ERROR: &str = "crates/serve/src/error.rs";

/// A workspace member: its manifest and discovered crate-root files.
#[derive(Debug)]
pub struct Member {
    /// Workspace-relative crate directory (`"."` for the facade package).
    pub dir: String,
    /// Workspace-relative path of the member's `Cargo.toml`.
    pub manifest: String,
    /// Crate-root source files: `src/lib.rs`, `src/main.rs`, and every
    /// `src/bin/*.rs` — each is the root of its own compilation unit, so
    /// `forbid-unsafe` checks each one.
    pub crate_roots: Vec<String>,
    /// Every `.rs` file under the member's `src/` tree (the scan set for
    /// `no-nondeterminism`).
    pub src_files: Vec<String>,
}

/// The loaded workspace: root directory and members.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute root directory.
    pub root: PathBuf,
    /// All members, including the facade package at `"."`.
    pub members: Vec<Member>,
}

impl Workspace {
    /// Discovers the workspace at `root` by parsing the root `Cargo.toml`'s
    /// `members` list. The facade package (the root `Cargo.toml`'s own
    /// `[package]`) is included as member `"."`.
    pub fn discover(root: &Path) -> Result<Workspace, String> {
        let manifest_path = root.join("Cargo.toml");
        let text = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let mut dirs = parse_members(&text);
        if text.contains("[package]") {
            dirs.push(".".to_string());
        }
        if dirs.is_empty() {
            return Err(format!(
                "{} declares no workspace members",
                manifest_path.display()
            ));
        }
        let mut members = Vec::new();
        for dir in dirs {
            let abs = root.join(&dir);
            let rel = |suffix: &str| {
                if dir == "." {
                    suffix.to_string()
                } else {
                    format!("{dir}/{suffix}")
                }
            };
            let mut crate_roots = Vec::new();
            for candidate in ["src/lib.rs", "src/main.rs"] {
                if abs.join(candidate).is_file() {
                    crate_roots.push(rel(candidate));
                }
            }
            let bin_dir = abs.join("src/bin");
            if bin_dir.is_dir() {
                for name in sorted_entries(&bin_dir)? {
                    if name.ends_with(".rs") {
                        crate_roots.push(rel(&format!("src/bin/{name}")));
                    }
                }
            }
            let mut src_files = Vec::new();
            let src_dir = abs.join("src");
            if src_dir.is_dir() {
                collect_rs(&src_dir, &abs, &mut src_files)?;
                src_files = src_files.into_iter().map(|f| rel(&f)).collect();
            }
            members.push(Member {
                manifest: rel("Cargo.toml"),
                dir,
                crate_roots,
                src_files,
            });
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            members,
        })
    }

    /// Reads a workspace-relative file.
    pub fn read(&self, rel: &str) -> Result<String, String> {
        fs::read_to_string(self.root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))
    }

    /// Workspace-relative paths of the committed `BENCH_*.json` artifacts
    /// at the root, sorted.
    pub fn bench_artifacts(&self) -> Result<Vec<String>, String> {
        let mut out: Vec<String> = sorted_entries(&self.root)?
            .into_iter()
            .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
            .collect();
        out.sort();
        Ok(out)
    }
}

/// Walks `dir` recursively collecting `.rs` paths relative to `base`.
fn collect_rs(dir: &Path, base: &Path, out: &mut Vec<String>) -> Result<(), String> {
    for name in sorted_entries(dir)? {
        let path = dir.join(&name);
        if path.is_dir() {
            collect_rs(&path, base, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(base)
                .map_err(|e| format!("path outside base: {e}"))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Directory entries by name, sorted for deterministic scan order.
fn sorted_entries(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read dir entry: {e}"))?;
        names.push(entry.file_name().to_string_lossy().into_owned());
    }
    names.sort();
    Ok(names)
}

/// Extracts the `members = [...]` string list from a root `Cargo.toml`.
/// TOML-lite: good enough for this workspace's hand-written manifests,
/// which keep one member per line inside the brackets.
pub fn parse_members(text: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_list = false;
    for line in text.lines() {
        let line = strip_toml_comment(line).trim().to_string();
        if !in_list {
            // Only the top-level `members = [` of the `[workspace]` table —
            // default-members lists the same entries, skip it.
            if line.starts_with("members") && line.contains('[') && !line.starts_with("default-") {
                in_list = true;
            }
            continue;
        }
        if line.starts_with(']') {
            break;
        }
        // One quoted path per line, with a trailing comma.
        if let Some(start) = line.find('"') {
            if let Some(end) = line[start + 1..].find('"') {
                members.push(line[start + 1..start + 1 + end].to_string());
            }
        }
    }
    members
}

/// A dependency entry found in a manifest, for `no-external-deps`.
#[derive(Debug, PartialEq)]
pub struct DepEntry {
    /// The dependency name as written.
    pub name: String,
    /// 1-based manifest line.
    pub line: u32,
    /// True if the entry resolves inside the workspace: `path = "…"` or
    /// `workspace = true` (either the `name.workspace = true` key form or
    /// the inline-table field).
    pub is_internal: bool,
}

/// Scans a manifest for dependency entries across every
/// `*dependencies*` table (`[dependencies]`, `[dev-dependencies]`,
/// `[build-dependencies]`, `[workspace.dependencies]`,
/// `[target.….dependencies]`, and `[dependencies.<name>]` sub-tables).
pub fn parse_deps(text: &str) -> Vec<DepEntry> {
    let mut deps = Vec::new();
    let mut in_dep_table = false;
    // A `[dependencies.<name>]` sub-table awaiting its path/workspace key.
    let mut open_subtable: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            let header = line.trim_matches(|c| c == '[' || c == ']');
            let parts: Vec<&str> = header.split('.').collect();
            let dep_positions: Vec<usize> = parts
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    matches!(
                        **p,
                        "dependencies" | "dev-dependencies" | "build-dependencies"
                    )
                })
                .map(|(i, _)| i)
                .collect();
            open_subtable = None;
            if let Some(&pos) = dep_positions.first() {
                if pos + 1 < parts.len() {
                    // `[dependencies.serde]`: the header names the dep.
                    deps.push(DepEntry {
                        name: parts[pos + 1..].join("."),
                        line: line_no,
                        is_internal: false,
                    });
                    open_subtable = Some(deps.len() - 1);
                    in_dep_table = false;
                } else {
                    in_dep_table = true;
                }
            } else {
                in_dep_table = false;
            }
            continue;
        }
        if let Some(dep_idx) = open_subtable {
            if line.starts_with("path") || line == "workspace = true" {
                deps[dep_idx].is_internal = true;
            }
            continue;
        }
        if !in_dep_table {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        // `name.workspace = true`
        if let Some(name) = key.strip_suffix(".workspace") {
            deps.push(DepEntry {
                name: name.trim().to_string(),
                line: line_no,
                is_internal: value == "true",
            });
            continue;
        }
        // `name = { … }` or `name = "version"`
        let is_internal = value.contains("path =") || value.contains("workspace = true");
        deps.push(DepEntry {
            name: key.to_string(),
            line: line_no,
            is_internal,
        });
    }
    deps
}

/// Drops a `# …` comment, respecting quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse_from_a_root_manifest() {
        let toml = r#"
[workspace]
resolver = "2"
default-members = [
    ".",
    "crates/a",
]
members = [
    "crates/a", # trailing comment
    "crates/b/c",
]
"#;
        assert_eq!(parse_members(toml), vec!["crates/a", "crates/b/c"]);
    }

    #[test]
    fn deps_classify_workspace_path_and_version_forms() {
        let toml = r#"
[package]
name = "x"

[dependencies]
pg_core.workspace = true
rand = { path = "crates/compat/rand", version = "0.9.0" }
serde = "1.0"
inline_ws = { workspace = true }

[dev-dependencies]
proptest.workspace = true

[dependencies.sub_external]
version = "2.0"

[dependencies.sub_internal]
path = "../other"
"#;
        let deps = parse_deps(toml);
        let by_name = |n: &str| deps.iter().find(|d| d.name == n).unwrap();
        assert!(by_name("pg_core").is_internal);
        assert!(by_name("rand").is_internal);
        assert!(!by_name("serde").is_internal);
        assert!(by_name("inline_ws").is_internal);
        assert!(by_name("proptest").is_internal);
        assert!(!by_name("sub_external").is_internal);
        assert!(by_name("sub_internal").is_internal);
    }

    #[test]
    fn non_dependency_tables_are_ignored() {
        let toml = r#"
[workspace.package]
version = "0.1.0"

[[bin]]
name = "exp_thing"
path = "src/bin/exp_thing.rs"

[lib]
name = "x"
"#;
        assert!(parse_deps(toml).is_empty());
    }

    #[test]
    fn comments_respect_strings() {
        assert_eq!(
            strip_toml_comment(r#"a = "x # y" # real"#),
            r#"a = "x # y" "#
        );
    }
}
