//! # pg_lint — invariant-enforcement lint pass over the workspace
//!
//! `pg_lint` machine-checks the invariants this workspace's documentation
//! promises but `rustc`/`clippy` cannot see: never-panic decode paths,
//! determinism of result paths, surrogate-space discipline on the hot
//! path, the frozen wire protocol, the `unsafe`-free build, the
//! no-external-crates compat policy, and the schema of committed
//! benchmark artifacts. The rule catalogue with rationale lives in
//! `ARCHITECTURE.md` § "Static analysis".
//!
//! ## Design
//!
//! - **Zero dependencies, even internal ones.** The linter enforces the
//!   dependency policy, so it depends on nothing itself: a hand-rolled
//!   [tokenizer], a minimal [json] parser, and a TOML-lite manifest
//!   scanner in [workspace].
//! - **Token-stream, not regex.** Rules run over a real token stream
//!   ([`tokenizer::SourceFile`]) that understands nested block comments,
//!   raw strings, char-vs-lifetime, and inline `#[cfg(test)]` spans — so
//!   comments, string literals, and test code can never fire (or mask) a
//!   finding.
//! - **Suppressions carry reasons.** `// pg-lint: allow(<rule>, <why>)`
//!   on the flagged line or the line above silences one rule; the reason
//!   is mandatory, and malformed, unknown-rule, or unused pragmas are
//!   deny findings themselves (`lint-pragma`), so suppressions cannot
//!   rot silently.
//!
//! ## Usage
//!
//! ```text
//! cargo run --release -p pg_lint -- --deny        # the CI gate
//! cargo run -p pg_lint -- --list-rules            # catalogue
//! cargo run -p pg_lint -- --json                  # machine-readable report
//! cargo run -p pg_lint -- --write-wire-lock       # after a reviewed protocol change
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod manifest_rules;
pub mod rules;
pub mod source_rules;
pub mod tokenizer;
pub mod workspace;
