//! A comment/string/raw-string-aware Rust tokenizer over `std`.
//!
//! This is not a full Rust lexer — it is exactly the lexer the lint rules
//! need: it distinguishes code from comments and string/char literals (so
//! `.unwrap()` inside a doctest comment or an error message never fires a
//! rule), tracks line numbers, collects `// pg-lint: allow(rule, reason)`
//! suppression pragmas, and marks the token spans of inline
//! `#[cfg(test)]` items so test code is exempt from the production-path
//! rules. The same discipline as `pg_store`'s byte parser applies:
//! tokenizing is total — any input produces a token stream, never a panic.
//!
//! Handled lexical shapes: line comments (`//`, `///`, `//!`), nested
//! block comments (`/* /* */ */`), string literals with escapes, raw
//! strings (`r"…"`, `r#"…"#`, any number of `#`), byte and raw-byte
//! strings (`b"…"`, `br#"…"#`), raw identifiers (`r#type`), char literals
//! (`'a'`, `'\''`, `'\u{1F600}'`) vs lifetimes (`'a`, `'static`).

/// One lexical token. Literals keep no text except numbers (the
/// wire-freeze rule reads constant values); rules match on identifiers
/// and punctuation.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword (`unwrap`, `const`, `KIND_PING`, …).
    Ident(String),
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct(char),
    /// A lifetime (`'a`, `'static`). The name is irrelevant to every rule.
    Lifetime,
    /// A string, raw-string, byte-string, char or byte literal.
    Literal,
    /// A numeric literal, with its source text (`129`, `0xFF`, `1.5e3`).
    Num(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A parsed `// pg-lint: allow(rule, reason)` pragma.
#[derive(Debug, Clone, PartialEq)]
pub struct Allow {
    /// 1-based line the pragma comment sits on. The pragma suppresses
    /// findings on this line and the next one (so it can trail the flagged
    /// expression or stand on its own line above it).
    pub line: u32,
    /// The rule id inside `allow(…)`.
    pub rule: String,
    /// The justification after the comma. The engine rejects empty
    /// reasons: every suppression must carry a written why.
    pub reason: String,
}

/// A `pg-lint:` comment that does not parse as a well-formed pragma.
/// These become findings — a typo must not silently disable a rule.
#[derive(Debug, Clone, PartialEq)]
pub struct BadPragma {
    /// 1-based line of the malformed comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// A tokenized source file: the token stream, the per-token
/// `#[cfg(test)]` membership, and the suppression pragmas found in its
/// comments.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, used verbatim in findings.
    pub path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// `in_test[i]` is true iff `tokens[i]` lies inside the body of an
    /// item annotated `#[cfg(test)]` (inline `mod tests { … }`, a test-only
    /// fn, …).
    pub in_test: Vec<bool>,
    /// Well-formed suppression pragmas.
    pub allows: Vec<Allow>,
    /// Malformed `pg-lint:` comments.
    pub bad_pragmas: Vec<BadPragma>,
}

impl SourceFile {
    /// Tokenizes `text`. Total: any byte sequence yields a `SourceFile`.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let mut lx = Lexer {
            chars: text.chars().collect(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            allows: Vec::new(),
            bad_pragmas: Vec::new(),
        };
        lx.run();
        let in_test = mark_cfg_test_spans(&lx.tokens);
        SourceFile {
            path: path.to_string(),
            tokens: lx.tokens,
            in_test,
            allows: lx.allows,
            bad_pragmas: lx.bad_pragmas,
        }
    }

    /// True if some pragma allows `rule` on `line` (the pragma's own line
    /// or the line directly below it).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    allows: Vec<Allow>,
    bad_pragmas: Vec<BadPragma>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.tokens.push(Token { tok, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.string_body();
                    self.push(Tok::Literal, line);
                }
                '\'' => self.char_or_lifetime(),
                _ if c.is_ascii_digit() => self.number(),
                _ if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
    }

    /// Consumes `//…` to end of line; scans the text for a pragma. Doc
    /// comments (`///`, `//!`) are documentation, never pragmas — prose
    /// *describing* the pragma syntax must not register as one.
    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if !text.starts_with("///") && !text.starts_with("//!") {
            self.scan_pragma(&text, line);
        }
    }

    /// Consumes a (possibly nested) `/* … */` block comment. An
    /// unterminated comment swallows the rest of the file, mirroring
    /// rustc's recovery.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes the body of a `"…"` string, honoring `\"` and `\\`.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes `r##"…"##` after the prefix letters, given the number of
    /// `#` marks already counted (cursor sits on the opening quote).
    fn raw_string_body(&mut self, hashes: usize) {
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    let mut seen = 0;
                    while seen < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// `'a'` / `'\n'` (char literal) vs `'a` / `'static` (lifetime).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        match self.peek(0) {
            // Escape: definitely a char literal.
            Some('\\') => {
                self.bump();
                self.bump(); // the escaped char (covers \' and \\)
                             // Consume to the closing quote (handles \u{…}).
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Literal, line);
            }
            // `'x'` is a char; `'x` (no closing quote) is a lifetime.
            Some(c) if c == '_' || c.is_alphanumeric() => {
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(Tok::Literal, line);
                } else {
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(Tok::Lifetime, line);
                }
            }
            // `'('` and other single-char literals.
            Some(_) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(Tok::Literal, line);
            }
            None => self.push(Tok::Punct('\''), line),
        }
    }

    /// A numeric literal: integer, float, hex/oct/bin, exponents,
    /// suffixes. Stops before `..` so range expressions keep their
    /// punctuation.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let continues = c.is_ascii_alphanumeric()
                || c == '_'
                // A decimal point, but not `..` (range) and only before a digit.
                || (c == '.'
                    && self.peek(1) != Some('.')
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                // An exponent sign: `1e-3`, but not hex and only after e/E.
                || ((c == '+' || c == '-')
                    && matches!(text.chars().last(), Some('e') | Some('E'))
                    && !text.starts_with("0x"));
            if !continues {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::Num(text), line);
    }

    /// An identifier — or the raw/byte string and raw-identifier forms
    /// that *start* like one (`r"…"`, `br#"…"#`, `r#type`).
    fn ident_or_prefixed(&mut self) {
        let line = self.line;
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String prefixes: the ident is exactly r/b/br and a quote (or
        // raw-string hashes) follows with no gap.
        let is_raw_prefix = name == "r" || name == "br";
        let is_byte_prefix = name == "b";
        if is_raw_prefix {
            let mut hashes = 0;
            while self.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(hashes) == Some('"') {
                for _ in 0..hashes {
                    self.bump();
                }
                self.raw_string_body(hashes);
                self.push(Tok::Literal, line);
                return;
            }
            // `r#ident` — raw identifier: retokenize the ident part.
            if name == "r"
                && hashes == 1
                && self.peek(1).is_some_and(|c| c == '_' || c.is_alphabetic())
            {
                self.bump(); // '#'
                let mut raw = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        raw.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(Tok::Ident(raw), line);
                return;
            }
        }
        if is_byte_prefix {
            if self.peek(0) == Some('"') {
                self.bump();
                self.string_body();
                self.push(Tok::Literal, line);
                return;
            }
            if self.peek(0) == Some('\'') {
                self.char_or_lifetime();
                return;
            }
        }
        self.push(Tok::Ident(name), line);
    }

    /// Looks for `pg-lint:` in a line comment and parses the pragma.
    fn scan_pragma(&mut self, text: &str, line: u32) {
        let Some(at) = text.find("pg-lint:") else {
            return;
        };
        let rest = text[at + "pg-lint:".len()..].trim();
        let bad = |problem: &str| BadPragma {
            line,
            problem: problem.to_string(),
        };
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            self.bad_pragmas
                .push(bad("expected `pg-lint: allow(<rule>, <reason>)`"));
            return;
        };
        let Some((rule, reason)) = inner.split_once(',') else {
            self.bad_pragmas.push(bad(
                "missing `, <reason>` — every suppression needs a written why",
            ));
            return;
        };
        let rule = rule.trim();
        let reason = reason.trim();
        if rule.is_empty() || reason.is_empty() {
            self.bad_pragmas
                .push(bad("rule id and reason must both be non-empty"));
            return;
        }
        self.allows.push(Allow {
            line,
            rule: rule.to_string(),
            reason: reason.to_string(),
        });
    }
}

/// Marks which tokens live inside the body of an item annotated
/// `#[cfg(test)]`. Detection is syntactic: the exact attribute token
/// sequence, then (skipping any further attributes) the item's
/// brace-delimited body. An out-of-line `#[cfg(test)] mod x;` has no
/// inline body, so its span is empty — by policy this workspace keeps
/// test modules inline.
fn mark_cfg_test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let ident = |i: usize, name: &str| matches!(&tokens.get(i), Some(Token { tok: Tok::Ident(n), .. }) if n == name);
    let punct = |i: usize, ch: char| matches!(&tokens.get(i), Some(Token { tok: Tok::Punct(c), .. }) if *c == ch);

    let mut i = 0;
    while i < tokens.len() {
        let is_cfg_test = punct(i, '#')
            && punct(i + 1, '[')
            && ident(i + 2, "cfg")
            && punct(i + 3, '(')
            && ident(i + 4, "test")
            && punct(i + 5, ')')
            && punct(i + 6, ']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip any further attributes between the cfg and the item.
        while punct(j, '#') && punct(j + 1, '[') {
            let mut depth = 0usize;
            j += 1;
            while j < tokens.len() {
                if punct(j, '[') {
                    depth += 1;
                } else if punct(j, ']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Find the item's body: the first `{` before any item-ending `;`.
        let mut body_start = None;
        while j < tokens.len() {
            if punct(j, ';') {
                break;
            }
            if punct(j, '{') {
                body_start = Some(j);
                break;
            }
            j += 1;
        }
        if let Some(start) = body_start {
            let mut depth = 0usize;
            let mut k = start;
            while k < tokens.len() {
                if punct(k, '{') {
                    depth += 1;
                } else if punct(k, '}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                in_test[k] = true;
                k += 1;
            }
            if k < tokens.len() {
                in_test[k] = true; // the closing brace
            }
            i = k + 1;
        } else {
            i = j + 1;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        SourceFile::parse("t.rs", src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn line_and_nested_block_comments_are_invisible() {
        let src = r#"
            // unwrap() in a comment
            /* outer /* nested unwrap() */ still comment */ real
            /// doc: x.unwrap()
            //! inner doc: panic!()
        "#;
        assert_eq!(idents(src), vec!["real"]);
    }

    #[test]
    fn unterminated_block_comment_swallows_the_rest() {
        assert_eq!(idents("a /* no end\n b c"), vec!["a"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let msg = "call unwrap() now \" really"; after"#;
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes_hide_their_contents() {
        let src = r###"let s = r#"embedded "quote" and unwrap()"#; tail"###;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "tail"]);
    }

    #[test]
    fn raw_string_with_two_hashes_and_inner_hash_quote() {
        let src = "let s = r##\"one \"# not the end\"##; done";
        assert_eq!(idents(src), vec!["let", "s", "done"]);
    }

    #[test]
    fn byte_and_raw_byte_strings_are_literals() {
        let src = r##"let a = b"bytes unwrap()"; let b2 = br#"raw bytes"#; end"##;
        assert_eq!(idents(src), vec!["let", "a", "let", "b2", "end"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "let c = 'a'; let q = '\\''; fn f<'a>(x: &'a str) {} let n = '\\n';";
        let file = SourceFile::parse("t.rs", src);
        let lifetimes = file
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let literals = file.tokens.iter().filter(|t| t.tok == Tok::Literal).count();
        assert_eq!(lifetimes, 2, "{:?}", file.tokens);
        assert_eq!(literals, 3, "{:?}", file.tokens);
    }

    #[test]
    fn static_lifetime_and_unicode_escape() {
        let src = "fn f(x: &'static str) { let e = '\\u{1F600}'; }";
        let file = SourceFile::parse("t.rs", src);
        assert_eq!(
            file.tokens
                .iter()
                .filter(|t| t.tok == Tok::Lifetime)
                .count(),
            1
        );
        assert_eq!(
            file.tokens.iter().filter(|t| t.tok == Tok::Literal).count(),
            1
        );
    }

    #[test]
    fn raw_identifiers_tokenize_as_their_name() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn numbers_keep_text_and_ranges_stay_punctuation() {
        let file = SourceFile::parse("t.rs", "const K: u8 = 129; for i in 0..10 {}");
        let nums: Vec<String> = file
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["129", "0", "10"]);
    }

    #[test]
    fn float_and_hex_literals() {
        let file = SourceFile::parse("t.rs", "let a = 1.5e-3; let b = 0xFF_u8; let c = 2.0;");
        let nums: Vec<String> = file
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "0xFF_u8", "2.0"]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let file = SourceFile::parse("t.rs", "a\nb\n\nc");
        let lines: Vec<u32> = file.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn cfg_test_mod_span_is_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn live2() {}";
        let file = SourceFile::parse("t.rs", src);
        for (tok, in_test) in file.tokens.iter().zip(&file.in_test) {
            let name = match &tok.tok {
                Tok::Ident(s) => s.as_str(),
                _ => continue,
            };
            match name {
                "live" | "live2" | "cfg" | "test" => assert!(!in_test, "{name} marked as test"),
                "unwrap" | "t" | "x" => assert!(in_test, "{name} not marked as test"),
                _ => {}
            }
        }
    }

    #[test]
    fn cfg_test_fn_with_second_attribute() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { y.unwrap(); }\nfn live() {}";
        let file = SourceFile::parse("t.rs", src);
        for (tok, in_test) in file.tokens.iter().zip(&file.in_test) {
            if let Tok::Ident(s) = &tok.tok {
                if s == "unwrap" {
                    assert!(in_test);
                }
                if s == "live" {
                    assert!(!in_test);
                }
            }
        }
    }

    #[test]
    fn out_of_line_cfg_test_mod_marks_nothing_after_the_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() { z.unwrap(); }";
        let file = SourceFile::parse("t.rs", src);
        for (tok, in_test) in file.tokens.iter().zip(&file.in_test) {
            if let Tok::Ident(s) = &tok.tok {
                if s == "unwrap" {
                    assert!(!in_test);
                }
            }
        }
    }

    #[test]
    fn pragmas_parse_with_rule_and_reason() {
        let src = "let x = v[0]; // pg-lint: allow(no-panic-path, bounds checked above)\n";
        let file = SourceFile::parse("t.rs", src);
        assert_eq!(file.allows.len(), 1);
        assert_eq!(file.allows[0].rule, "no-panic-path");
        assert_eq!(file.allows[0].reason, "bounds checked above");
        assert!(file.allowed("no-panic-path", 1));
        assert!(file.allowed("no-panic-path", 2)); // next line too
        assert!(!file.allowed("no-panic-path", 3));
        assert!(!file.allowed("other-rule", 1));
    }

    #[test]
    fn malformed_pragmas_are_reported() {
        let cases = [
            "// pg-lint: allow(no-panic-path)",       // no reason
            "// pg-lint: allow(no-panic-path, )",     // empty reason
            "// pg-lint: deny(no-panic-path, x)",     // not allow(…)
            "// pg-lint: allow(no-panic-path, broke", // unclosed
        ];
        for src in cases {
            let file = SourceFile::parse("t.rs", src);
            assert_eq!(file.allows.len(), 0, "{src}");
            assert_eq!(file.bad_pragmas.len(), 1, "{src}");
        }
    }

    #[test]
    fn pragma_inside_a_string_is_ignored() {
        let src = r#"let s = "pg-lint: allow(x, y)";"#;
        let file = SourceFile::parse("t.rs", src);
        assert!(file.allows.is_empty());
        assert!(file.bad_pragmas.is_empty());
    }

    #[test]
    fn pragma_mentioned_in_doc_comments_is_ignored() {
        // Documentation may *describe* the pragma syntax without
        // registering as a (malformed) pragma.
        let src = "\
//! Suppress with `// pg-lint: allow(<rule>, <reason>)`.
/// The pragma shape is `pg-lint: allow(rule, reason)`.
fn f() {}
";
        let file = SourceFile::parse("t.rs", src);
        assert!(file.allows.is_empty(), "{:?}", file.allows);
        assert!(file.bad_pragmas.is_empty(), "{:?}", file.bad_pragmas);
    }

    #[test]
    fn tokenizer_is_total_on_arbitrary_bytes() {
        // Miscellaneous pathological inputs: must not panic.
        for src in [
            "'", "\"", "r#", "r#\"", "/*", "b'", "1e", "#![", "'''", "\\",
        ] {
            let _ = SourceFile::parse("t.rs", src);
        }
    }
}
