//! A minimal, total JSON parser for validating `BENCH_*.json` artifacts.
//!
//! Hand-rolled over `std` like every parser in this workspace (the compat
//! policy forbids external crates). It supports exactly the JSON the bench
//! artifacts use — objects, arrays, strings with escapes, numbers,
//! `true`/`false`/`null` — and is strict where corruption matters: a
//! truncated file, trailing bytes after the top-level value, or a
//! malformed number all return a typed error instead of a best-effort
//! value, so a hand-edited or chopped artifact fails loudly.

use std::fmt;

/// A parsed JSON value. Object keys keep insertion order (validation
/// messages cite paths, not indices, so ordering only affects display).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite: JSON has no NaN/Inf syntax).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// A parse failure: what went wrong and the 1-based line it happened on.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line of the offending byte.
    pub line: u32,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Parses one complete JSON document. Trailing non-whitespace bytes are an
/// error — a truncated-then-concatenated artifact cannot half-parse.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
        line: 1,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(p.err("trailing data after the top-level value"));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            message: msg.into(),
            line: self.line,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), JsonError> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(self.err(format!("expected '{c}', found '{got}'"))),
            None => Err(self.err(format!("expected '{c}', found end of input"))),
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some('t') => self.keyword("true", Value::Bool(true)),
            Some('f') => self.keyword("false", Value::Bool(false)),
            Some('n') => self.keyword("null", Value::Null),
            Some(c) => Err(self.err(format!("unexpected character '{c}'"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        for expected in word.chars() {
            if self.peek() == Some(expected) {
                self.bump();
            } else {
                return Err(self.err(format!("invalid literal (expected `{word}`)")));
            }
        }
        Ok(value)
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Obj(fields)),
                Some(c) => return Err(self.err(format!("expected ',' or '}}', found '{c}'"))),
                None => return Err(self.err("object not closed before end of input")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Arr(items)),
                Some(c) => return Err(self.err(format!("expected ',' or ']', found '{c}'"))),
                None => return Err(self.err("array not closed before end of input")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("string not closed before end of input")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs are not needed by any artifact;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    Some(c) => return Err(self.err(format!("invalid escape '\\{c}'"))),
                    None => return Err(self.err("escape at end of input")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let mut text = String::new();
        if self.peek() == Some('-') {
            text.push('-');
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            // `+`/`-` only directly after an exponent marker.
            if matches!(self.peek(), Some('+') | Some('-'))
                && !matches!(text.chars().last(), Some('e') | Some('E'))
            {
                break;
            }
            text.push(self.bump().expect("peeked"));
        }
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("malformed number `{text}`")))?;
        if !n.is_finite() {
            return Err(self.err(format!("number `{text}` overflows f64")));
        }
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_artifact_shape() {
        let v = parse(
            r#"{"schema_version": 1, "label": "pr3", "smoke": false,
                "kernels": [{"kernel": "l2", "ns": 4.532, "x": null}],
                "nested": {"a": [1, -2.5, 1e3]}}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema_version").unwrap().as_num(), Some(1.0));
        assert_eq!(v.get("label").unwrap().as_str(), Some("pr3"));
        assert_eq!(v.get("smoke"), Some(&Value::Bool(false)));
        let kernels = match v.get("kernels").unwrap() {
            Value::Arr(items) => items,
            other => panic!("{other:?}"),
        };
        assert_eq!(kernels[0].get("x"), Some(&Value::Null));
    }

    #[test]
    fn truncation_and_trailing_data_fail() {
        assert!(parse(r#"{"a": 1"#).is_err());
        assert!(parse(r#"{"a": 1} extra"#).is_err());
        assert!(parse(r#"[1, 2"#).is_err());
        assert!(parse(r#""unclosed"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn malformed_numbers_and_literals_fail() {
        assert!(parse("1.2.3").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1e999").is_err()); // overflows to inf
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn error_lines_are_tracked() {
        let err = parse("{\n\"a\": 1,\n\"b\": tru\n}").unwrap_err();
        assert_eq!(err.line, 3);
    }
}
