//! Manifest-backed rules: `wire-freeze`, `no-external-deps`,
//! `bench-artifact-schema`.

use crate::json::{self, Value};
use crate::rules::{Finding, Severity};
use crate::tokenizer::{SourceFile, Tok};
use crate::workspace;

fn finding(rule: &'static str, path: &str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        severity: crate::rules::severity_of(rule).unwrap_or(Severity::Deny),
        path: path.to_string(),
        line,
        message,
    }
}

// ---------------------------------------------------------------------------
// wire-freeze
// ---------------------------------------------------------------------------

/// One frozen wire constant: its manifest kind, name, value, and (when
/// extracted from source) the line it was declared on.
#[derive(Debug, Clone, PartialEq)]
pub struct WireConst {
    /// `"protocol-version"`, `"frame-kind"`, or `"error-code"`.
    pub kind: &'static str,
    /// Constant name (`KIND_PING`, `Malformed`, `PROTOCOL_VERSION`).
    pub name: String,
    /// The frozen numeric value.
    pub value: u64,
    /// 1-based source line (0 when parsed from the lock file).
    pub line: u32,
}

/// Extracts the frozen wire constants from `pg_serve` sources:
/// `PROTOCOL_VERSION` and every `const KIND_*: u8 = N;` from
/// `protocol.rs`, and every `ErrorCode::Name => N` arm (the `code()`
/// mapping) from `error.rs`. Test spans are skipped, so fixture tables in
/// `#[cfg(test)]` cannot shadow the real constants.
pub fn extract_wire_consts(protocol: &SourceFile, error: &SourceFile) -> Vec<WireConst> {
    let mut out = Vec::new();
    let toks = &protocol.tokens;
    let ident = |i: usize| match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct =
        |i: usize, c: char| matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c);
    let num = |i: usize| match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Num(s)) => parse_u64(s),
        _ => None,
    };
    for i in 0..toks.len() {
        if protocol.in_test[i] {
            continue;
        }
        if ident(i) != Some("const") {
            continue;
        }
        let Some(name) = ident(i + 1) else { continue };
        let is_kind = name.starts_with("KIND_");
        let is_version = name == "PROTOCOL_VERSION";
        if !is_kind && !is_version {
            continue;
        }
        // const NAME : u8 = N ;
        if punct(i + 2, ':') && ident(i + 3) == Some("u8") && punct(i + 4, '=') {
            if let Some(value) = num(i + 5) {
                out.push(WireConst {
                    kind: if is_kind {
                        "frame-kind"
                    } else {
                        "protocol-version"
                    },
                    name: name.to_string(),
                    value,
                    line: toks[i + 1].line,
                });
            }
        }
    }
    // ErrorCode::Name => N  (only `code()` has this arm shape; `from_code`
    // reverses it and `for_error` has no number after the arrow).
    let toks = &error.tokens;
    let ident = |i: usize| match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct =
        |i: usize, c: char| matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c);
    let num = |i: usize| match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Num(s)) => parse_u64(s),
        _ => None,
    };
    for i in 0..toks.len() {
        if error.in_test[i] {
            continue;
        }
        if ident(i) == Some("ErrorCode")
            && punct(i + 1, ':')
            && punct(i + 2, ':')
            && punct(i + 4, '=')
            && punct(i + 5, '>')
        {
            if let (Some(name), Some(value)) = (ident(i + 3), num(i + 6)) {
                let entry = WireConst {
                    kind: "error-code",
                    name: name.to_string(),
                    value,
                    line: toks[i + 3].line,
                };
                if !out.contains(&entry) {
                    out.push(entry);
                }
            }
        }
    }
    out
}

fn parse_u64(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    if let Some(hex) = clean.strip_prefix("0x") {
        u64::from_str_radix(
            hex.trim_end_matches(|c: char| c.is_alphabetic() && !c.is_ascii_hexdigit()),
            16,
        )
        .ok()
    } else {
        clean
            .trim_end_matches(|c: char| c.is_alphabetic())
            .parse()
            .ok()
    }
}

/// Renders the manifest text for `--write-wire-lock`: deterministic order
/// (version, frame kinds by value, error codes by value).
pub fn render_wire_lock(consts: &[WireConst]) -> String {
    let mut out = String::from(
        "# Frozen wire constants of pg_serve (frame kinds and error codes are\n\
         # frozen forever; extend the protocol by appending codes). pg_lint's\n\
         # wire-freeze rule fails if the sources diverge from this manifest.\n\
         # After a *reviewed* protocol change, regenerate with:\n\
         #   cargo run -p pg_lint -- --write-wire-lock\n",
    );
    let section = |kind: &str| {
        let mut rows: Vec<&WireConst> = consts.iter().filter(|c| c.kind == kind).collect();
        rows.sort_by_key(|c| (c.value, c.name.clone()));
        let mut s = String::new();
        for c in rows {
            s.push_str(&format!("{} {} {}\n", c.kind, c.name, c.value));
        }
        s
    };
    out.push_str(&section("protocol-version"));
    out.push_str(&section("frame-kind"));
    out.push_str(&section("error-code"));
    out
}

/// Parses a `wire.lock` manifest. Unknown kinds or malformed lines yield
/// findings (a corrupted manifest must not silently weaken the freeze).
pub fn parse_wire_lock(text: &str, lock_path: &str) -> (Vec<WireConst>, Vec<Finding>) {
    let mut consts = Vec::new();
    let mut findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let parsed = if parts.len() == 3 {
            let kind = match parts[0] {
                "protocol-version" => Some("protocol-version"),
                "frame-kind" => Some("frame-kind"),
                "error-code" => Some("error-code"),
                _ => None,
            };
            kind.zip(parts[2].parse::<u64>().ok())
                .map(|(k, v)| WireConst {
                    kind: k,
                    name: parts[1].to_string(),
                    value: v,
                    line: 0,
                })
        } else {
            None
        };
        match parsed {
            Some(c) => consts.push(c),
            None => findings.push(finding(
                "wire-freeze",
                lock_path,
                line_no,
                format!("malformed manifest line `{line}` (expected `<kind> <name> <value>`)"),
            )),
        }
    }
    (consts, findings)
}

/// `wire-freeze`: the constants extracted from the sources must match the
/// committed manifest exactly — value changes, removals, and unreviewed
/// additions all fail. `lock_text = None` (missing manifest) is itself a
/// finding.
pub fn check_wire_freeze(
    protocol: &SourceFile,
    error: &SourceFile,
    lock_text: Option<&str>,
    lock_path: &str,
) -> Vec<Finding> {
    let actual = extract_wire_consts(protocol, error);
    let mut findings = Vec::new();
    // Extraction sanity: an empty set means the extractor (or a rewrite of
    // protocol.rs) broke — fail loudly rather than vacuously passing.
    if !actual.iter().any(|c| c.kind == "frame-kind") {
        findings.push(finding(
            "wire-freeze",
            &protocol.path,
            1,
            "no `const KIND_*: u8` frame kinds found — protocol.rs was restructured past the extractor".to_string(),
        ));
    }
    if !actual.iter().any(|c| c.kind == "error-code") {
        findings.push(finding(
            "wire-freeze",
            &error.path,
            1,
            "no `ErrorCode::… => n` code arms found — error.rs was restructured past the extractor"
                .to_string(),
        ));
    }
    let Some(lock_text) = lock_text else {
        findings.push(finding(
            "wire-freeze",
            lock_path,
            0,
            format!("missing wire manifest {lock_path}; generate it with --write-wire-lock and commit it"),
        ));
        return findings;
    };
    let (expected, mut lock_findings) = parse_wire_lock(lock_text, lock_path);
    findings.append(&mut lock_findings);
    for a in &actual {
        match expected.iter().find(|e| e.kind == a.kind && e.name == a.name) {
            None => findings.push(finding(
                "wire-freeze",
                if a.kind == "error-code" { &error.path } else { &protocol.path },
                a.line,
                format!(
                    "{} {} = {} is not in {lock_path} — a protocol extension must update the manifest in the same reviewed change",
                    a.kind, a.name, a.value
                ),
            )),
            Some(e) if e.value != a.value => findings.push(finding(
                "wire-freeze",
                if a.kind == "error-code" { &error.path } else { &protocol.path },
                a.line,
                format!(
                    "{} {} changed: source says {}, {lock_path} froze {} — wire codes are frozen forever",
                    a.kind, a.name, a.value, e.value
                ),
            )),
            Some(_) => {}
        }
    }
    for e in &expected {
        if !actual.iter().any(|a| a.kind == e.kind && a.name == e.name) {
            findings.push(finding(
                "wire-freeze",
                lock_path,
                0,
                format!(
                    "{} {} = {} is frozen in the manifest but no longer declared in the sources",
                    e.kind, e.name, e.value
                ),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// no-external-deps
// ---------------------------------------------------------------------------

/// `no-external-deps`: every dependency entry in a manifest must resolve
/// inside the workspace (`path = …` or `workspace = true`). Machine-checks
/// the PR 1 compat policy: the build environment has no crates.io access,
/// so a version-only dependency can never build here.
pub fn check_external_deps(manifest_path: &str, text: &str) -> Vec<Finding> {
    workspace::parse_deps(text)
        .into_iter()
        .filter(|d| !d.is_internal)
        .map(|d| {
            finding(
                "no-external-deps",
                manifest_path,
                d.line,
                format!(
                    "dependency `{}` is not a workspace/path dependency; the compat policy (crates/compat/README.md) forbids external crates",
                    d.name
                ),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// bench-artifact-schema
// ---------------------------------------------------------------------------

/// `bench-artifact-schema`: a committed `BENCH_*.json` must parse fully
/// and match the documented envelope (EXPERIMENTS.md § "The
/// `BENCH_<label>.json` trajectory format"): `schema_version: 1`, `label`
/// string, `smoke` bool, `threads` positive integer, at least one known
/// payload section, bounded scores, and a zero `hotswap.errors` — so a
/// hand-edited or truncated artifact fails before it poisons the perf
/// trajectory.
pub fn check_bench_artifact(path: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |line: u32, message: String| {
        out.push(finding("bench-artifact-schema", path, line, message));
    };
    let root = match json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            push(e.line, format!("artifact does not parse: {}", e.message));
            return out;
        }
    };
    if !matches!(root, Value::Obj(_)) {
        push(
            1,
            format!("top level must be an object, found {}", root.type_name()),
        );
        return out;
    }
    match root.get("schema_version").and_then(Value::as_num) {
        Some(v) if (v - 1.0).abs() < f64::EPSILON => {}
        Some(v) => push(
            1,
            format!("schema_version {v} is not the documented version 1"),
        ),
        None => push(1, "missing numeric `schema_version`".to_string()),
    }
    if root.get("label").and_then(Value::as_str).is_none() {
        push(1, "missing string `label`".to_string());
    }
    if !matches!(root.get("smoke"), Some(Value::Bool(_))) {
        push(1, "missing boolean `smoke`".to_string());
    }
    match root.get("threads").and_then(Value::as_num) {
        Some(t) if t >= 1.0 && t.fract() == 0.0 => {}
        Some(t) => push(
            1,
            format!("`threads` must be a positive integer, found {t}"),
        ),
        None => push(1, "missing numeric `threads`".to_string()),
    }
    let known = [
        "kernels",
        "queries",
        "suite",
        "frontiers",
        "serve",
        "shard",
        "quant",
    ];
    if !known.iter().any(|k| root.get(k).is_some()) {
        push(
            1,
            format!("no known payload section (expected one of {known:?})"),
        );
    }
    if let Some(kernels) = root.get("kernels") {
        check_rows(kernels, "kernels", &["kernel", "d"], &mut push);
    }
    if let Some(frontiers) = root.get("frontiers") {
        match frontiers {
            Value::Arr(items) => {
                for (i, f) in items.iter().enumerate() {
                    let ctx = format!("frontiers[{i}]");
                    for key in ["workload", "algo", "axis"] {
                        if f.get(key).and_then(Value::as_str).is_none() {
                            push(1, format!("{ctx}.{key} must be a string"));
                        }
                    }
                    match f.get("rows") {
                        Some(Value::Arr(rows)) => {
                            for (j, row) in rows.iter().enumerate() {
                                for key in ["recall", "success_at_eps"] {
                                    if let Some(v) = row.get(key).and_then(Value::as_num) {
                                        if !(0.0..=1.0).contains(&v) {
                                            push(
                                                1,
                                                format!(
                                                    "{ctx}.rows[{j}].{key} = {v} is outside [0, 1] — a score cannot exceed 1"
                                                ),
                                            );
                                        }
                                    } else {
                                        push(1, format!("{ctx}.rows[{j}].{key} must be a number"));
                                    }
                                }
                                for key in ["param", "dist_comps"] {
                                    if row.get(key).and_then(Value::as_num).is_none() {
                                        push(1, format!("{ctx}.rows[{j}].{key} must be a number"));
                                    }
                                }
                            }
                        }
                        _ => push(1, format!("{ctx}.rows must be an array")),
                    }
                }
            }
            other => push(
                1,
                format!("`frontiers` must be an array, found {}", other.type_name()),
            ),
        }
    }
    if let Some(serve) = root.get("serve") {
        if !matches!(serve, Value::Obj(_)) {
            push(
                1,
                format!("`serve` must be an object, found {}", serve.type_name()),
            );
        } else {
            for key in ["batched", "unbatched", "hotswap"] {
                if !matches!(serve.get(key), Some(Value::Obj(_))) {
                    push(1, format!("serve.{key} must be an object"));
                }
            }
            if let Some(errors) = serve.get("hotswap").and_then(|h| h.get("errors")) {
                if errors.as_num() != Some(0.0) {
                    push(
                        1,
                        format!(
                            "serve.hotswap.errors must be 0 (the binary gates on it), found {errors:?}"
                        ),
                    );
                }
            }
        }
    }
    if let Some(shard) = root.get("shard") {
        if !matches!(shard, Value::Obj(_)) {
            push(
                1,
                format!("`shard` must be an object, found {}", shard.type_name()),
            );
        } else {
            match shard.get("parity") {
                Some(parity @ Value::Obj(_)) => {
                    if parity.get("failures").and_then(Value::as_num) != Some(0.0) {
                        push(
                            1,
                            "shard.parity.failures must be 0 (exp_shard asserts sharded/unsharded \
                             bit-equality before any timing)"
                                .to_string(),
                        );
                    }
                }
                _ => push(1, "shard.parity must be an object".to_string()),
            }
            for sec in ["build", "search"] {
                match shard.get(sec) {
                    Some(Value::Arr(rows)) => {
                        for (j, row) in rows.iter().enumerate() {
                            match row.get("recall").and_then(Value::as_num) {
                                Some(v) if (0.0..=1.0).contains(&v) => {}
                                Some(v) => push(
                                    1,
                                    format!(
                                        "shard.{sec}[{j}].recall = {v} is outside [0, 1] — a score cannot exceed 1"
                                    ),
                                ),
                                None => push(
                                    1,
                                    format!("shard.{sec}[{j}].recall must be a number"),
                                ),
                            }
                            for key in ["shards", "n"] {
                                if row.get(key).and_then(Value::as_num).is_none() {
                                    push(1, format!("shard.{sec}[{j}].{key} must be a number"));
                                }
                            }
                        }
                    }
                    _ => push(1, format!("shard.{sec} must be an array")),
                }
            }
        }
    }
    if let Some(quant) = root.get("quant") {
        if !matches!(quant, Value::Obj(_)) {
            push(
                1,
                format!("`quant` must be an object, found {}", quant.type_name()),
            );
        } else {
            match quant.get("parity") {
                Some(parity @ Value::Obj(_)) => {
                    if parity.get("failures").and_then(Value::as_num) != Some(0.0) {
                        push(
                            1,
                            "quant.parity.failures must be 0 (exp_quant asserts the exact \
                             re-rank and reorder bit-equality before any timing)"
                                .to_string(),
                        );
                    }
                }
                _ => push(1, "quant.parity must be an object".to_string()),
            }
            match quant.get("locality") {
                Some(Value::Arr(rows)) => {
                    for (j, row) in rows.iter().enumerate() {
                        if row.get("workload").and_then(Value::as_str).is_none() {
                            push(1, format!("quant.locality[{j}].workload must be a string"));
                        }
                        for key in ["mean_gap_before", "mean_gap_after"] {
                            if row.get(key).and_then(Value::as_num).is_none() {
                                push(1, format!("quant.locality[{j}].{key} must be a number"));
                            }
                        }
                    }
                }
                _ => push(1, "quant.locality must be an array".to_string()),
            }
            match quant.get("frontiers") {
                Some(Value::Arr(items)) => {
                    let mut has_f64_baseline = false;
                    for (i, f) in items.iter().enumerate() {
                        let ctx = format!("quant.frontiers[{i}]");
                        for key in ["workload", "precision"] {
                            if f.get(key).and_then(Value::as_str).is_none() {
                                push(1, format!("{ctx}.{key} must be a string"));
                            }
                        }
                        if f.get("precision").and_then(Value::as_str) == Some("f64") {
                            has_f64_baseline = true;
                        }
                        match f.get("rows") {
                            Some(Value::Arr(rows)) => {
                                for (j, row) in rows.iter().enumerate() {
                                    for key in ["recall", "success_at_eps"] {
                                        match row.get(key).and_then(Value::as_num) {
                                            Some(v) if (0.0..=1.0).contains(&v) => {}
                                            Some(v) => push(
                                                1,
                                                format!(
                                                    "{ctx}.rows[{j}].{key} = {v} is outside [0, 1] — a score cannot exceed 1"
                                                ),
                                            ),
                                            None => push(
                                                1,
                                                format!("{ctx}.rows[{j}].{key} must be a number"),
                                            ),
                                        }
                                    }
                                    for key in ["param", "dist_comps"] {
                                        if row.get(key).and_then(Value::as_num).is_none() {
                                            push(
                                                1,
                                                format!("{ctx}.rows[{j}].{key} must be a number"),
                                            );
                                        }
                                    }
                                }
                            }
                            _ => push(1, format!("{ctx}.rows must be an array")),
                        }
                    }
                    if !items.is_empty() && !has_f64_baseline {
                        push(
                            1,
                            "quant.frontiers has no precision \"f64\" entry — quantized rows \
                             are meaningless without the exact baseline on the same axes"
                                .to_string(),
                        );
                    }
                }
                _ => push(1, "quant.frontiers must be an array".to_string()),
            }
        }
    }
    out
}

/// Checks that `section` is an array of objects each carrying `required`
/// keys (shallow — deeper fields are machine-dependent numbers).
fn check_rows(section: &Value, name: &str, required: &[&str], push: &mut impl FnMut(u32, String)) {
    match section {
        Value::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                if !matches!(item, Value::Obj(_)) {
                    push(1, format!("{name}[{i}] must be an object"));
                    continue;
                }
                for key in required {
                    if item.get(key).is_none() {
                        push(1, format!("{name}[{i}] is missing `{key}`"));
                    }
                }
            }
        }
        other => push(
            1,
            format!("`{name}` must be an array, found {}", other.type_name()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::SourceFile;

    fn proto(src: &str) -> SourceFile {
        SourceFile::parse("crates/serve/src/protocol.rs", src)
    }

    fn errf(src: &str) -> SourceFile {
        SourceFile::parse("crates/serve/src/error.rs", src)
    }

    const PROTO_FIXTURE: &str = "
pub const PROTOCOL_VERSION: u8 = 1;
const KIND_PING: u8 = 0;
const KIND_PONG: u8 = 128;
#[cfg(test)]
mod tests {
    const KIND_FAKE: u8 = 99;
}
";

    const ERROR_FIXTURE: &str = "
impl ErrorCode {
    pub fn code(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Internal => 10,
        }
    }
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::Malformed,
            10 => ErrorCode::Internal,
            _ => return None,
        })
    }
}
";

    #[test]
    fn extraction_finds_version_kinds_and_codes_but_not_test_consts() {
        let consts = extract_wire_consts(&proto(PROTO_FIXTURE), &errf(ERROR_FIXTURE));
        let names: Vec<&str> = consts.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "PROTOCOL_VERSION",
                "KIND_PING",
                "KIND_PONG",
                "Malformed",
                "Internal"
            ]
        );
        assert!(!names.contains(&"KIND_FAKE"));
        let pong = consts.iter().find(|c| c.name == "KIND_PONG").unwrap();
        assert_eq!(pong.value, 128);
        assert_eq!(pong.kind, "frame-kind");
    }

    #[test]
    fn wire_freeze_roundtrips_through_its_own_manifest() {
        let p = proto(PROTO_FIXTURE);
        let e = errf(ERROR_FIXTURE);
        let lock = render_wire_lock(&extract_wire_consts(&p, &e));
        let findings = check_wire_freeze(&p, &e, Some(&lock), "wire.lock");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn wire_freeze_fails_on_changed_added_and_removed_constants() {
        let p = proto(PROTO_FIXTURE);
        let e = errf(ERROR_FIXTURE);
        let lock = render_wire_lock(&extract_wire_consts(&p, &e));

        // Changed value.
        let mutated = proto(&PROTO_FIXTURE.replace("KIND_PONG: u8 = 128", "KIND_PONG: u8 = 127"));
        let findings = check_wire_freeze(&mutated, &e, Some(&lock), "wire.lock");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("frozen forever"));

        // Unreviewed addition.
        let extended = proto(&PROTO_FIXTURE.replace(
            "const KIND_PING: u8 = 0;",
            "const KIND_PING: u8 = 0;\nconst KIND_BATCH: u8 = 4;",
        ));
        let findings = check_wire_freeze(&extended, &e, Some(&lock), "wire.lock");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("must update the manifest"));

        // Removal.
        let shrunk = proto(&PROTO_FIXTURE.replace("const KIND_PONG: u8 = 128;\n", ""));
        let findings = check_wire_freeze(&shrunk, &e, Some(&lock), "wire.lock");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no longer declared"));
    }

    #[test]
    fn wire_freeze_fails_on_missing_or_corrupt_manifest() {
        let p = proto(PROTO_FIXTURE);
        let e = errf(ERROR_FIXTURE);
        let findings = check_wire_freeze(&p, &e, None, "wire.lock");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("missing wire manifest"));

        let findings = check_wire_freeze(&p, &e, Some("frame-kind KIND_PING zero\n"), "wire.lock");
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("malformed manifest line")),
            "{findings:?}"
        );
    }

    #[test]
    fn wire_freeze_fails_if_extraction_goes_dark() {
        let empty = proto("fn nothing() {}");
        let findings = check_wire_freeze(&empty, &errf("fn x() {}"), Some(""), "wire.lock");
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn external_deps_fire_on_version_only_entries() {
        let bad = "[dependencies]\nserde = \"1.0\"\npg_core.workspace = true\n";
        let findings = check_external_deps("crates/x/Cargo.toml", bad);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("serde"));
        assert_eq!(findings[0].line, 2);

        let good =
            "[dependencies]\npg_core.workspace = true\nrand = { path = \"crates/compat/rand\" }\n";
        assert!(check_external_deps("crates/x/Cargo.toml", good).is_empty());
    }

    const GOOD_ARTIFACT: &str = r#"{
  "schema_version": 1, "label": "pr5", "smoke": false, "threads": 1,
  "suite": {"n": 1200, "m": 80, "k": 10, "eps": 1.0},
  "frontiers": [
    {"workload": "uniform-2d", "algo": "gnet", "axis": "ef", "k": 10,
     "rows": [{"param": 2.0, "recall": 0.2, "mean_dist_ratio": 1.0,
               "success_at_eps": 1.0, "dist_comps": 277.3, "hops": 3.8,
               "qps": null}]}
  ]
}"#;

    #[test]
    fn good_artifact_passes() {
        let findings = check_bench_artifact("BENCH_x.json", GOOD_ARTIFACT);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn truncated_artifact_fails_to_parse() {
        let cut = &GOOD_ARTIFACT[..GOOD_ARTIFACT.len() / 2];
        let findings = check_bench_artifact("BENCH_x.json", cut);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("does not parse"));
    }

    #[test]
    fn hand_edited_recall_above_one_fails() {
        let poisoned = GOOD_ARTIFACT.replace("\"recall\": 0.2", "\"recall\": 1.2");
        let findings = check_bench_artifact("BENCH_x.json", &poisoned);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("outside [0, 1]"));
    }

    #[test]
    fn missing_envelope_fields_fail() {
        let findings = check_bench_artifact("BENCH_x.json", r#"{"kernels": []}"#);
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("schema_version")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("label")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("smoke")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("threads")), "{msgs:?}");
    }

    #[test]
    fn nonzero_hotswap_errors_fail() {
        let artifact = r#"{
  "schema_version": 1, "label": "pr6", "smoke": false, "threads": 2,
  "serve": {"batched": {}, "unbatched": {}, "hotswap": {"swaps": 14, "errors": 3}}
}"#;
        let findings = check_bench_artifact("BENCH_x.json", artifact);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("hotswap.errors"));
    }

    const SHARD_ARTIFACT: &str = r#"{
  "schema_version": 1, "label": "pr9", "smoke": false, "threads": 1,
  "shard": {
    "parity": {"n": 1500, "shard_counts": [1, 2, 3, 8], "thread_counts": [1, 2, 1], "failures": 0},
    "build": [{"shards": 8, "n": 1000000, "dist_comps": 9, "seconds": 1.5,
               "ef": 64, "k": 10, "recall": 0.97}],
    "search": [{"shards": 8, "n": 1000000, "ef": 64, "k": 10,
                "sampled_queries": 100, "recall": 0.97, "dist_comps": 812.0, "qps": 900.0}]
  }
}"#;

    #[test]
    fn good_shard_artifact_passes() {
        let findings = check_bench_artifact("BENCH_pr9.json", SHARD_ARTIFACT);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn shard_parity_failures_and_bad_scores_fail() {
        // A recorded parity failure is the one thing that must never ship.
        let poisoned = SHARD_ARTIFACT.replace("\"failures\": 0", "\"failures\": 1");
        let findings = check_bench_artifact("BENCH_pr9.json", &poisoned);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("parity.failures"));

        // Hand-edited recall above 1 fails in both row sections.
        let poisoned = SHARD_ARTIFACT.replace("\"recall\": 0.97", "\"recall\": 1.97");
        let findings = check_bench_artifact("BENCH_pr9.json", &poisoned);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .all(|f| f.message.contains("outside [0, 1]")));

        // A shard section without its parity gate is malformed.
        let gateless = SHARD_ARTIFACT.replace("\"parity\"", "\"prty\"");
        let findings = check_bench_artifact("BENCH_pr9.json", &gateless);
        assert!(
            findings.iter().any(|f| f.message.contains("shard.parity")),
            "{findings:?}"
        );
    }

    const QUANT_ARTIFACT: &str = r#"{
  "schema_version": 1, "label": "pr10", "smoke": false, "threads": 2,
  "suite": {"n": 1200, "m": 80, "k": 10, "eps": 1.0},
  "quant": {
    "parity": {"rerank_checks": 4, "reorder_checks": 40, "thread_checks": 6, "failures": 0},
    "locality": [{"workload": "uniform-2d", "mean_gap_before": 434.9, "mean_gap_after": 417.0}],
    "frontiers": [
      {"workload": "uniform-2d", "precision": "f64", "axis": "ef", "k": 10,
       "rows": [{"param": 2, "recall": 0.21, "mean_dist_ratio": 1.1,
                 "success_at_eps": 0.9, "dist_comps": 120.0, "hops": 4.1, "qps": 90000.0}]},
      {"workload": "uniform-2d", "precision": "sq8", "axis": "ef", "k": 10,
       "rows": [{"param": 2, "recall": 0.2, "mean_dist_ratio": 1.2,
                 "success_at_eps": 0.88, "dist_comps": 118.0, "hops": 4.0, "qps": 110000.0}]}
    ]
  }
}"#;

    #[test]
    fn good_quant_artifact_passes() {
        let findings = check_bench_artifact("BENCH_pr10.json", QUANT_ARTIFACT);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn quant_parity_failures_bad_scores_and_missing_baseline_fail() {
        // A recorded parity failure is the one thing that must never ship.
        let poisoned = QUANT_ARTIFACT.replace("\"failures\": 0", "\"failures\": 2");
        let findings = check_bench_artifact("BENCH_pr10.json", &poisoned);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("quant.parity.failures"));

        // Hand-edited recall above 1.
        let poisoned = QUANT_ARTIFACT.replace("\"recall\": 0.2,", "\"recall\": 3.2,");
        let findings = check_bench_artifact("BENCH_pr10.json", &poisoned);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("outside [0, 1]"));

        // Quantized frontiers without the exact f64 baseline are meaningless.
        let baseless = QUANT_ARTIFACT.replace("\"precision\": \"f64\"", "\"precision\": \"f32\"");
        let findings = check_bench_artifact("BENCH_pr10.json", &baseless);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("f64"));

        // A quant section without its parity gate is malformed.
        let gateless = QUANT_ARTIFACT.replace("\"parity\"", "\"prty\"");
        let findings = check_bench_artifact("BENCH_pr10.json", &gateless);
        assert!(
            findings.iter().any(|f| f.message.contains("quant.parity")),
            "{findings:?}"
        );
    }
}
