//! Token-stream rules: `no-panic-path`, `no-nondeterminism`,
//! `surrogate-discipline`, `forbid-unsafe`.
//!
//! All four scan the [`SourceFile`] token stream, so comments, doctests
//! inside doc comments, and string literals can never fire a rule, and
//! code inside inline `#[cfg(test)]` items is exempt from the
//! production-path rules (tests may unwrap, time things, and call
//! `.dist(` freely).

use crate::rules::{Finding, Severity};
use crate::tokenizer::{SourceFile, Tok, Token};

/// Keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = …`, `return [x]`, `in [1, 2]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "break", "continue", "for",
    "while", "loop", "move", "as", "where", "impl", "fn", "pub", "use", "const", "static", "type",
    "struct", "enum", "trait", "mod", "crate", "dyn", "box", "yield", "await",
];

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s),
        _ => None,
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    matches!(t.tok, Tok::Punct(p) if p == c)
}

fn finding(rule: &'static str, file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule,
        severity: crate::rules::severity_of(rule).unwrap_or(Severity::Deny),
        path: file.path.clone(),
        line,
        message,
    }
}

/// `no-panic-path`: in the designated never-panic decode/load modules, no
/// `.unwrap(` / `.expect(` / `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` and no index expressions (`x[…]` — slice indexing
/// panics out of bounds) outside `#[cfg(test)]`. Provably-infallible
/// sites carry a `// pg-lint: allow(no-panic-path, <why>)` pragma, so
/// every remaining site has a written justification.
pub fn check_no_panic(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if let Some(name) = ident(t) {
            // `.unwrap(` / `.expect(`
            if (name == "unwrap" || name == "expect")
                && i > 0
                && is_punct(&toks[i - 1], '.')
                && toks.get(i + 1).is_some_and(|n| is_punct(n, '('))
            {
                out.push(finding(
                    "no-panic-path",
                    file,
                    t.line,
                    format!(".{name}() can panic; return the module's typed error instead"),
                ));
            }
            // `panic!` family
            if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                && toks.get(i + 1).is_some_and(|n| is_punct(n, '!'))
            {
                out.push(finding(
                    "no-panic-path",
                    file,
                    t.line,
                    format!("{name}! in a never-panic module"),
                ));
            }
            // Index expression: ident followed by `[` (skipping keywords).
            if toks.get(i + 1).is_some_and(|n| is_punct(n, '['))
                && !NON_INDEX_KEYWORDS.contains(&name)
            {
                out.push(finding(
                    "no-panic-path",
                    file,
                    t.line,
                    format!(
                        "index expression `{name}[…]` can panic; use get()/take-style accessors"
                    ),
                ));
            }
        }
        // Index after a call or another index: `f(x)[0]`, `a[0][1]`.
        if (is_punct(t, ')') || is_punct(t, ']'))
            && toks.get(i + 1).is_some_and(|n| is_punct(n, '['))
            && !file.in_test[i]
        {
            out.push(finding(
                "no-panic-path",
                file,
                toks[i + 1].line,
                "index expression can panic; use get()/take-style accessors".to_string(),
            ));
        }
    }
    out
}

/// `no-nondeterminism`: no wall-clock or entropy sources (`Instant::now`,
/// `SystemTime`, `thread_rng`, `from_entropy`) outside `pg_bench` and
/// `compat/criterion`. Protects the bit-identical-across-thread-counts
/// discipline: a timestamp or random draw on a result path makes runs
/// unreproducible.
pub fn check_nondeterminism(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let Some(name) = ident(&toks[i]) else {
            continue;
        };
        let flagged = match name {
            // `Instant::now(` — the `::now` requirement keeps type
            // mentions (`fn f(t: Instant)`) legal.
            "Instant" => {
                is_punct_at(toks, i + 1, ':')
                    && is_punct_at(toks, i + 2, ':')
                    && toks.get(i + 3).and_then(ident) == Some("now")
            }
            "SystemTime" | "thread_rng" | "from_entropy" => true,
            _ => false,
        };
        if flagged {
            out.push(finding(
                "no-nondeterminism",
                file,
                toks[i].line,
                format!("`{name}` is a nondeterminism source; only pg_bench and compat/criterion may measure time or draw entropy"),
            ));
        }
    }
    out
}

fn is_punct_at(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| is_punct(t, c))
}

/// `surrogate-discipline`: the designated hot-path search modules must
/// compare in surrogate space (`surrogate_to` / `dist_from_surrogate`) —
/// a raw `.dist(` call there silently reverts the squared-space
/// optimization and re-introduces a `sqrt` per candidate.
pub fn check_surrogate(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        if ident(&toks[i]) == Some("dist")
            && i > 0
            && is_punct(&toks[i - 1], '.')
            && toks.get(i + 1).is_some_and(|n| is_punct(n, '('))
        {
            out.push(finding(
                "surrogate-discipline",
                file,
                toks[i].line,
                ".dist( in a surrogate-space module; compare with surrogate_to and convert once via dist_from_surrogate"
                    .to_string(),
            ));
        }
    }
    out
}

/// `forbid-unsafe`: the crate root must carry the inner attribute
/// `#![forbid(unsafe_code)]`, so `unsafe` cannot enter any compilation
/// unit of the workspace without loudly editing a crate root.
pub fn check_forbid_unsafe(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let found = is_punct_at(toks, i, '#')
            && is_punct_at(toks, i + 1, '!')
            && is_punct_at(toks, i + 2, '[')
            && toks.get(i + 3).and_then(ident) == Some("forbid")
            && is_punct_at(toks, i + 4, '(')
            && toks.get(i + 5).and_then(ident) == Some("unsafe_code")
            && is_punct_at(toks, i + 6, ')')
            && is_punct_at(toks, i + 7, ']');
        if found {
            return Vec::new();
        }
    }
    vec![finding(
        "forbid-unsafe",
        file,
        1,
        "crate root is missing #![forbid(unsafe_code)]".to_string(),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("fixture.rs", src)
    }

    #[test]
    fn no_panic_flags_each_shape_once() {
        let src = r#"
fn f(v: &[u8]) {
    let a = v.first().unwrap();
    let b = maybe().expect("msg");
    let c = v[0];
    let d = lookup(v)[1];
    panic!("boom");
    unreachable!();
}
"#;
        let got = check_no_panic(&parse(src));
        assert_eq!(got.len(), 6, "{got:?}");
        let lines: Vec<u32> = got.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn no_panic_ignores_safe_shapes() {
        let src = r#"
fn f(v: &[u8], m: &std::collections::HashMap<u8, u8>) -> Option<u8> {
    let a = v.first()?;                    // no unwrap
    let b = x.unwrap_or(3);                // distinct ident
    let c = x.unwrap_or_else(|| 4);
    let arr: [u8; 4] = [0; 4];             // array type + literal
    let [p, q] = pair;                     // slice pattern after `let`
    #[cfg(feature = "x")]
    let attr_ok = 1;
    v.get(0).copied()
}
#[cfg(test)]
mod tests {
    fn t() { v[0]; x.unwrap(); panic!("fine in tests"); }
}
"#;
        let got = check_no_panic(&parse(src));
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn no_panic_skips_comments_and_strings() {
        let src = r##"
//! let x = v.unwrap(); // doctest in docs
fn f() {
    let msg = "call .unwrap() and panic!";
    let raw = r#"v[0]"#;
}
"##;
        let got = check_no_panic(&parse(src));
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn nondeterminism_flags_clock_and_entropy() {
        let src = r#"
fn f() {
    let t = Instant::now();
    let s = std::time::SystemTime::now();
    let r = thread_rng();
    let g = StdRng::from_entropy();
}
"#;
        let got = check_nondeterminism(&parse(src));
        assert_eq!(got.len(), 4, "{got:?}");
    }

    #[test]
    fn nondeterminism_allows_instant_as_a_type_and_tests() {
        let src = r#"
fn store(t: Instant) -> Instant { t }
#[cfg(test)]
mod tests {
    fn t() { let x = Instant::now(); }
}
"#;
        let got = check_nondeterminism(&parse(src));
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn surrogate_flags_raw_dist_only() {
        let bad = "fn f() { let d = data.dist(a, b); }";
        assert_eq!(check_surrogate(&parse(bad)).len(), 1);
        let good = r#"
fn f() {
    let s = data.surrogate_to(a, q);
    let d = data.dist_from_surrogate(s);
    let other = distance(a, b); // plain fn call, not .dist(
}
"#;
        assert!(check_surrogate(&parse(good)).is_empty());
    }

    #[test]
    fn forbid_unsafe_passes_with_header_and_fails_without() {
        let good = "#![warn(missing_docs)]\n#![forbid(unsafe_code)]\nfn main() {}";
        assert!(check_forbid_unsafe(&parse(good)).is_empty());
        let bad = "#![warn(missing_docs)]\nfn main() {}";
        let got = check_forbid_unsafe(&parse(bad));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "forbid-unsafe");
        // A forbid in a comment does not count.
        let tricky = "// #![forbid(unsafe_code)]\nfn main() {}";
        assert_eq!(check_forbid_unsafe(&parse(tricky)).len(), 1);
    }
}
