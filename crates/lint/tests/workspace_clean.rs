//! Integration tests: the real workspace lints clean, the wire freeze
//! actually bites on a tampered protocol, and the full engine fires every
//! rule on a deliberately-broken mini workspace.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};

use pg_lint::manifest_rules;
use pg_lint::rules;
use pg_lint::tokenizer::SourceFile;
use pg_lint::workspace;

/// The real workspace root, two levels above this crate.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn the_workspace_lints_clean() {
    let report = rules::run(&repo_root()).expect("lint run succeeds");
    assert!(
        report.findings.is_empty(),
        "the committed workspace must lint clean; found:\n{:#?}",
        report.findings
    );
    // The audited decode paths carry written justifications — if the
    // pragmas vanish wholesale, something rewrote those files.
    assert!(
        report.suppressed.len() >= 10,
        "expected the audited pragma sites, saw {}",
        report.suppressed.len()
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn wire_freeze_catches_a_tampered_frame_kind_against_the_committed_lock() {
    let root = repo_root();
    let read = |rel: &str| fs::read_to_string(root.join(rel)).expect("source exists");
    let protocol_text = read(workspace::WIRE_PROTOCOL);
    let error = SourceFile::parse(workspace::WIRE_ERROR, &read(workspace::WIRE_ERROR));
    let lock = read(workspace::WIRE_LOCK);

    // Untampered sources match the committed manifest.
    let protocol = SourceFile::parse(workspace::WIRE_PROTOCOL, &protocol_text);
    let clean =
        manifest_rules::check_wire_freeze(&protocol, &error, Some(&lock), workspace::WIRE_LOCK);
    assert!(clean.is_empty(), "{clean:?}");

    // Changing one frame-kind value without touching wire.lock must fail.
    let tampered_text =
        protocol_text.replace("const KIND_PONG: u8 = 128;", "const KIND_PONG: u8 = 127;");
    assert_ne!(
        tampered_text, protocol_text,
        "fixture went stale: KIND_PONG moved"
    );
    let tampered = SourceFile::parse(workspace::WIRE_PROTOCOL, &tampered_text);
    let findings =
        manifest_rules::check_wire_freeze(&tampered, &error, Some(&lock), workspace::WIRE_LOCK);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "wire-freeze");
    assert!(findings[0].message.contains("KIND_PONG"));

    // Adding a new kind without updating the manifest must also fail.
    let extended_text = protocol_text.replace(
        "const KIND_PING: u8 = 0;",
        "const KIND_PING: u8 = 0;\nconst KIND_BATCH: u8 = 4;",
    );
    assert_ne!(
        extended_text, protocol_text,
        "fixture went stale: KIND_PING moved"
    );
    let extended = SourceFile::parse(workspace::WIRE_PROTOCOL, &extended_text);
    let findings =
        manifest_rules::check_wire_freeze(&extended, &error, Some(&lock), workspace::WIRE_LOCK);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("KIND_BATCH"));
}

#[test]
fn the_committed_lock_freezes_every_wire_constant() {
    let root = repo_root();
    let read = |rel: &str| fs::read_to_string(root.join(rel)).expect("source exists");
    let protocol = SourceFile::parse(workspace::WIRE_PROTOCOL, &read(workspace::WIRE_PROTOCOL));
    let error = SourceFile::parse(workspace::WIRE_ERROR, &read(workspace::WIRE_ERROR));
    let consts = manifest_rules::extract_wire_consts(&protocol, &error);

    // The expected population comes from the committed lock file itself —
    // not from counts hardcoded here, which silently went stale the moment
    // anyone appended a wire constant. The lock must parse finding-free…
    let lock_text = read(workspace::WIRE_LOCK);
    let (locked, problems) = manifest_rules::parse_wire_lock(&lock_text, workspace::WIRE_LOCK);
    assert!(problems.is_empty(), "{problems:?}");

    // …and the sources must declare exactly the locked population, kind by
    // kind — tamper detection without magic numbers.
    let count = |set: &[manifest_rules::WireConst], kind: &str| {
        set.iter().filter(|c| c.kind == kind).count()
    };
    for kind in ["protocol-version", "frame-kind", "error-code"] {
        let in_lock = count(&locked, kind);
        assert!(in_lock >= 1, "lock holds no {kind} constants");
        assert_eq!(
            count(&consts, kind),
            in_lock,
            "{kind}: sources and committed lock disagree\n{consts:?}"
        );
    }
    assert_eq!(consts.len(), locked.len(), "{consts:?}");
    // And the committed manifest is exactly the regenerated one, so
    // `--write-wire-lock` is idempotent on a clean tree.
    assert_eq!(lock_text, manifest_rules::render_wire_lock(&consts));
}

/// A scratch directory under the test binary's target dir (no tempfile
/// crate; unique per test via the name argument).
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.0.join(rel);
        fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        fs::write(path, text).expect("write fixture");
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn a_broken_mini_workspace_fires_the_file_level_rules() {
    let ws = Scratch::new("pg_lint_broken_ws");
    ws.write(
        "Cargo.toml",
        "[workspace]\nmembers = [\n    \"crates/bad\",\n]\n",
    );
    // External dep + missing forbid-unsafe + a bad artifact + an unknown
    // pragma, all in one workspace.
    ws.write(
        "crates/bad/Cargo.toml",
        "[package]\nname = \"bad\"\n\n[dependencies]\nserde = \"1.0\"\n",
    );
    ws.write(
        "crates/bad/src/lib.rs",
        "// pg-lint: allow(not-a-rule, nonsense)\npub fn f() {}\n",
    );
    ws.write("BENCH_bad.json", "{\"schema_version\": 2}");
    // wire-freeze needs the serve sources; a mini workspace without them
    // is a setup error, so give it a consistent trio.
    ws.write(
        workspace::WIRE_PROTOCOL,
        "const PROTOCOL_VERSION: u8 = 1;\nconst KIND_PING: u8 = 0;\n",
    );
    ws.write(
        workspace::WIRE_ERROR,
        "impl ErrorCode { fn code(self) -> u16 { match self { ErrorCode::Malformed => 1 } } }\n",
    );
    let protocol = SourceFile::parse(
        workspace::WIRE_PROTOCOL,
        "const PROTOCOL_VERSION: u8 = 1;\nconst KIND_PING: u8 = 0;\n",
    );
    let error = SourceFile::parse(
        workspace::WIRE_ERROR,
        "impl ErrorCode { fn code(self) -> u16 { match self { ErrorCode::Malformed => 1 } } }\n",
    );
    ws.write(
        workspace::WIRE_LOCK,
        &manifest_rules::render_wire_lock(&manifest_rules::extract_wire_consts(&protocol, &error)),
    );

    let report = rules::run(&ws.0).expect("run succeeds");
    let rules_fired: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules_fired.contains(&"no-external-deps"), "{rules_fired:?}");
    assert!(rules_fired.contains(&"forbid-unsafe"), "{rules_fired:?}");
    assert!(
        rules_fired.contains(&"bench-artifact-schema"),
        "{rules_fired:?}"
    );
    assert!(rules_fired.contains(&"lint-pragma"), "{rules_fired:?}");
    assert!(report.has_deny());
}

#[test]
fn a_clean_mini_workspace_lints_clean() {
    let ws = Scratch::new("pg_lint_clean_ws");
    ws.write(
        "Cargo.toml",
        "[workspace]\nmembers = [\n    \"crates/good\",\n]\n",
    );
    ws.write(
        "crates/good/Cargo.toml",
        "[package]\nname = \"good\"\n\n[dependencies]\n",
    );
    ws.write(
        "crates/good/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() -> u32 { 7 }\n",
    );
    ws.write(
        workspace::WIRE_PROTOCOL,
        "const PROTOCOL_VERSION: u8 = 1;\nconst KIND_PING: u8 = 0;\n",
    );
    ws.write(
        workspace::WIRE_ERROR,
        "impl ErrorCode { fn code(self) -> u16 { match self { ErrorCode::Malformed => 1 } } }\n",
    );
    let protocol = SourceFile::parse(
        workspace::WIRE_PROTOCOL,
        "const PROTOCOL_VERSION: u8 = 1;\nconst KIND_PING: u8 = 0;\n",
    );
    let error = SourceFile::parse(
        workspace::WIRE_ERROR,
        "impl ErrorCode { fn code(self) -> u16 { match self { ErrorCode::Malformed => 1 } } }\n",
    );
    ws.write(
        workspace::WIRE_LOCK,
        &manifest_rules::render_wire_lock(&manifest_rules::extract_wire_consts(&protocol, &error)),
    );

    let report = rules::run(&ws.0).expect("run succeeds");
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}
