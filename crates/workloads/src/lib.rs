//! Seeded workload generators for the experiments.
//!
//! The paper's bounds are parameterized by `n` (size), `Δ` (aspect ratio),
//! `ε` (approximation slack) and `λ` (doubling dimension), so the generators
//! here are chosen to let each experiment sweep one parameter while pinning
//! the rest:
//!
//! * [`uniform_cube`] — i.i.d. uniform points, the baseline workload;
//! * [`gaussian_clusters`] — mixture of Gaussians (recommendation-system
//!   style embeddings);
//! * [`swiss_roll`] — a 2-manifold embedded in `d >= 3` ambient dimensions:
//!   low doubling dimension despite high ambient dimension;
//! * [`lattice`] — the integer grid: exactly controlled minimum distance;
//! * [`geometric_chain`] — clusters at exponentially growing offsets:
//!   `log Δ` grows linearly in the cluster count at fixed `n`, the workload
//!   that exposes the `n log Δ` term of Theorem 1.1 versus the `Δ`-free
//!   size of Theorem 1.3;
//! * [`two_scale`] — a unit cluster plus a far satellite cluster at
//!   distance `spread`: single-knob aspect-ratio control;
//! * query generators ([`uniform_queries`], [`perturbed_queries`]).
//!
//! All generators take an explicit seed and are deterministic.
//!
//! Where this crate sits in the workspace is mapped in `ARCHITECTURE.md`
//! at the repository root.
//!
//! # Layouts
//!
//! Every generator fills contiguous [`FlatPoints`] storage directly — the
//! `*_flat` functions are the primary API and what the experiments should
//! use ([`pg_metric::FlatPoints::into_dataset`] yields the fast
//! `Dataset<FlatRow, M>`). The legacy `Vec<Vec<f64>>` variants delegate to
//! the flat generators and copy out nested rows, so for any seed the two
//! layouts hold **bit-identical coordinates** (tested below).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub use pg_metric::{FlatPoints, FlatRow};

/// Nested points type of the legacy generators (one `Vec` per point). Hot
/// paths should prefer [`FlatPoints`].
pub type Points = Vec<Vec<f64>>;

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// `n` i.i.d. uniform points in `[0, side]^d`, flat layout.
pub fn uniform_cube_flat(n: usize, d: usize, side: f64, seed: u64) -> FlatPoints {
    let mut rng = StdRng::seed_from_u64(seed);
    FlatPoints::from_fn(n, d, |_, out| {
        out.extend((0..d).map(|_| rng.random_range(0.0..side)))
    })
}

/// [`uniform_cube_flat`] in the legacy nested layout.
pub fn uniform_cube(n: usize, d: usize, side: f64, seed: u64) -> Points {
    uniform_cube_flat(n, d, side, seed).to_nested()
}

/// `n` points from `k` Gaussian clusters with the given per-coordinate
/// standard deviation; cluster centers are uniform in `[0, side]^d`. Flat
/// layout.
pub fn gaussian_clusters_flat(
    n: usize,
    d: usize,
    k: usize,
    std: f64,
    side: f64,
    seed: u64,
) -> FlatPoints {
    assert!(k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = FlatPoints::from_fn(k, d, |_, out| {
        out.extend((0..d).map(|_| rng.random_range(0.0..side)))
    });
    FlatPoints::from_fn(n, d, |i, out| {
        out.extend(
            centers
                .row(i % k)
                .iter()
                .map(|&x| x + std * gaussian(&mut rng)),
        )
    })
}

/// [`gaussian_clusters_flat`] in the legacy nested layout.
pub fn gaussian_clusters(n: usize, d: usize, k: usize, std: f64, side: f64, seed: u64) -> Points {
    gaussian_clusters_flat(n, d, k, std, side, seed).to_nested()
}

/// `n` points on a noisy swiss-roll 2-manifold embedded in `d >= 3`
/// dimensions (extra coordinates carry small noise): ambient dimension is
/// `d` but the doubling dimension stays ~2. Flat layout.
pub fn swiss_roll_flat(n: usize, d: usize, seed: u64) -> FlatPoints {
    assert!(d >= 3, "swiss roll needs ambient dimension >= 3");
    let mut rng = StdRng::seed_from_u64(seed);
    FlatPoints::from_fn(n, d, |_, out| {
        let t = rng.random_range(1.5..4.5 * std::f64::consts::PI);
        let h = rng.random_range(0.0..10.0);
        out.push(t * t.cos());
        out.push(t * t.sin());
        out.push(h);
        for _ in 3..d {
            out.push(0.01 * gaussian(&mut rng));
        }
    })
}

/// [`swiss_roll_flat`] in the legacy nested layout.
pub fn swiss_roll(n: usize, d: usize, seed: u64) -> Points {
    swiss_roll_flat(n, d, seed).to_nested()
}

/// The integer lattice `{0, spacing, ..., (side-1) * spacing}^d`
/// (`side^d` points, exact minimum distance `spacing`). Flat layout.
pub fn lattice_flat(side: usize, d: usize, spacing: f64) -> FlatPoints {
    assert!(side >= 1 && d >= 1);
    let total = side.pow(d as u32);
    assert!(total <= 4_000_000, "lattice too large: {total} points");
    let mut out = FlatPoints::with_capacity(total, d);
    let mut idx = vec![0usize; d];
    let mut row = vec![0.0; d];
    loop {
        for (r, &i) in row.iter_mut().zip(idx.iter()) {
            *r = i as f64 * spacing;
        }
        out.push(&row);
        let mut carry = true;
        for c in idx.iter_mut() {
            if carry {
                *c += 1;
                if *c == side {
                    *c = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            break;
        }
    }
    out
}

/// [`lattice_flat`] in the legacy nested layout.
pub fn lattice(side: usize, d: usize, spacing: f64) -> Points {
    lattice_flat(side, d, spacing).to_nested()
}

/// `clusters` unit-size clusters of `per_cluster` points each, cluster `j`
/// centered at `x_1 = ratio^j`. The aspect ratio is ~`ratio^clusters`, so
/// `log Δ ≈ clusters * log2(ratio)` grows while `n` stays fixed — the
/// workload for the Euclidean-separation experiments. Flat layout.
pub fn geometric_chain_flat(
    clusters: usize,
    per_cluster: usize,
    ratio: f64,
    d: usize,
    seed: u64,
) -> FlatPoints {
    assert!(ratio > 1.0 && clusters >= 1 && per_cluster >= 1 && d >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    FlatPoints::from_fn(clusters * per_cluster, d, |i, out| {
        let cx = ratio.powi((i / per_cluster) as i32);
        let first = out.len();
        out.extend((0..d).map(|_| rng.random_range(0.0..1.0)));
        out[first] += cx;
    })
}

/// [`geometric_chain_flat`] in the legacy nested layout.
pub fn geometric_chain(
    clusters: usize,
    per_cluster: usize,
    ratio: f64,
    d: usize,
    seed: u64,
) -> Points {
    geometric_chain_flat(clusters, per_cluster, ratio, d, seed).to_nested()
}

/// A 1-d Cantor-dust set embedded in the plane: the `2^levels` points
/// `x = Σ_j b_j · ratio^j` for `b ∈ {0,1}^levels`, at `y = 0`. Flat layout.
///
/// Self-similar at every scale: minimum distance 1, diameter
/// `≈ ratio^levels`, so `log Δ ≈ levels · log2(ratio)` — sweeping `ratio` at
/// fixed `levels` changes the aspect ratio without changing `n` or the
/// combinatorial structure. Doubling dimension stays ~1. This is the
/// Euclidean workload on which the `n log Δ` size of per-level nets is
/// actually attained (the separation experiment T1.3-sep).
pub fn cantor_dust_flat(levels: usize, ratio: f64) -> FlatPoints {
    assert!(
        (1..=24).contains(&levels),
        "2^levels points; keep levels <= 24"
    );
    assert!(ratio >= 2.0, "ratio must be >= 2 for separation");
    // Guard f64 exactness: the top digit's magnitude must keep ulp < 1, or
    // low digits round away and points collide.
    assert!(
        ratio.powi(levels as i32 - 1) < (2.0f64).powi(50),
        "ratio^levels too large for exact f64 coordinates"
    );
    let n = 1usize << levels;
    FlatPoints::from_fn(n, 2, |mask, out| {
        let mut x = 0.0;
        for j in 0..levels {
            if mask >> j & 1 == 1 {
                x += ratio.powi(j as i32);
            }
        }
        out.push(x);
        out.push(0.0);
    })
}

/// [`cantor_dust_flat`] in the legacy nested layout.
pub fn cantor_dust(levels: usize, ratio: f64) -> Points {
    cantor_dust_flat(levels, ratio).to_nested()
}

/// A unit cluster of `n - satellite` points at the origin plus `satellite`
/// points displaced by `spread` along the first axis: `Δ ≈ spread * n^{1/d}`.
/// Flat layout.
pub fn two_scale_flat(n: usize, d: usize, satellite: usize, spread: f64, seed: u64) -> FlatPoints {
    assert!(satellite < n);
    let mut rng = StdRng::seed_from_u64(seed);
    FlatPoints::from_fn(n, d, |i, out| {
        let first = out.len();
        out.extend((0..d).map(|_| rng.random_range(0.0..1.0)));
        if i >= n - satellite {
            out[first] += spread;
        }
    })
}

/// [`two_scale_flat`] in the legacy nested layout.
pub fn two_scale(n: usize, d: usize, satellite: usize, spread: f64, seed: u64) -> Points {
    two_scale_flat(n, d, satellite, spread, seed).to_nested()
}

/// `n` points uniform on the unit sphere `S^{d-1}` (Gaussian direction
/// method) — the natural workload for the `pg_metric::Angular` metric. Flat
/// layout.
pub fn unit_sphere_flat(n: usize, d: usize, seed: u64) -> FlatPoints {
    assert!(d >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    FlatPoints::from_fn(n, d, |_, out| loop {
        let v: Vec<f64> = (0..d).map(|_| gaussian(&mut rng)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-9 {
            out.extend(v.iter().map(|x| x / norm));
            return;
        }
    })
}

/// [`unit_sphere_flat`] in the legacy nested layout.
pub fn unit_sphere(n: usize, d: usize, seed: u64) -> Points {
    unit_sphere_flat(n, d, seed).to_nested()
}

/// `m` uniform query points in `[lo, hi]^d`, flat layout (turn into engine
/// query batches with [`FlatPoints::into_rows`]).
pub fn uniform_queries_flat(m: usize, d: usize, lo: f64, hi: f64, seed: u64) -> FlatPoints {
    let mut rng = StdRng::seed_from_u64(seed);
    FlatPoints::from_fn(m, d, |_, out| {
        out.extend((0..d).map(|_| rng.random_range(lo..hi)))
    })
}

/// [`uniform_queries_flat`] in the legacy nested layout.
pub fn uniform_queries(m: usize, d: usize, lo: f64, hi: f64, seed: u64) -> Points {
    uniform_queries_flat(m, d, lo, hi, seed).to_nested()
}

/// `m` queries obtained by Gaussian-perturbing random data points — the
/// "near-data" query distribution typical of embedding retrieval. Flat
/// layout.
pub fn perturbed_queries_flat(data: &FlatPoints, m: usize, sigma: f64, seed: u64) -> FlatPoints {
    assert!(!data.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    FlatPoints::from_fn(m, data.dim(), |_, out| {
        let base = data.row(rng.random_range(0..data.len()));
        out.extend(base.iter().map(|&x| x + sigma * gaussian(&mut rng)));
    })
}

/// [`perturbed_queries_flat`] over the legacy nested layout.
pub fn perturbed_queries(data: &[Vec<f64>], m: usize, sigma: f64, seed: u64) -> Points {
    assert!(!data.is_empty());
    perturbed_queries_flat(&FlatPoints::from(data), m, sigma, seed).to_nested()
}

/// Named standard datasets for the comparison experiments, flat layout:
/// `(name, points)`.
pub fn standard_suite_flat(n: usize, seed: u64) -> Vec<(&'static str, FlatPoints)> {
    vec![
        ("uniform-2d", uniform_cube_flat(n, 2, 100.0, seed)),
        (
            "clusters-2d",
            gaussian_clusters_flat(n, 2, 16, 1.0, 100.0, seed + 1),
        ),
        ("swiss-roll-3d", swiss_roll_flat(n, 3, seed + 2)),
        (
            "chain-2d",
            geometric_chain_flat(16, n / 16, 3.0, 2, seed + 3),
        ),
    ]
}

/// The evaluation workload suite: every [`standard_suite_flat`] dataset
/// paired with its matched query set — `m` near-data perturbed queries
/// (`σ = 0.5`, the embedding-retrieval query model) drawn with a seed
/// derived from `seed`, so `(name, points, queries)` triples are fully
/// reproducible from `(n, m, seed)` alone. This is what quality sweeps
/// (`pg_eval`, the `exp_recall` binary) iterate, and the triple is exactly
/// what a ground-truth cache fingerprint covers.
pub fn eval_suite_flat(
    n: usize,
    m: usize,
    seed: u64,
) -> Vec<(&'static str, FlatPoints, FlatPoints)> {
    standard_suite_flat(n, seed)
        .into_iter()
        .map(|(name, points)| {
            let queries = perturbed_queries_flat(&points, m, 0.5, seed ^ 0x517C_C1B7);
            (name, points, queries)
        })
        .collect()
}

/// [`standard_suite_flat`] in the legacy nested layout.
pub fn standard_suite(n: usize, seed: u64) -> Vec<(&'static str, Points)> {
    standard_suite_flat(n, seed)
        .into_iter()
        .map(|(name, fp)| (name, fp.to_nested()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::{Dataset, Euclidean};

    #[test]
    fn uniform_is_deterministic_and_in_bounds() {
        let a = uniform_cube(100, 3, 10.0, 7);
        let b = uniform_cube(100, 3, 10.0, 7);
        assert_eq!(a, b);
        assert!(a
            .iter()
            .all(|p| p.iter().all(|&x| (0.0..10.0).contains(&x))));
        let c = uniform_cube(100, 3, 10.0, 8);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn flat_and_nested_layouts_hold_identical_coordinates() {
        // The nested variants delegate to the flat generators, so for any
        // seed the coordinates agree bit for bit — this pins the contract.
        assert_eq!(
            uniform_cube_flat(50, 4, 9.0, 3).to_nested(),
            uniform_cube(50, 4, 9.0, 3)
        );
        assert_eq!(
            gaussian_clusters_flat(60, 3, 5, 0.5, 20.0, 4).to_nested(),
            gaussian_clusters(60, 3, 5, 0.5, 20.0, 4)
        );
        assert_eq!(swiss_roll_flat(40, 5, 5).to_nested(), swiss_roll(40, 5, 5));
        assert_eq!(lattice_flat(3, 3, 1.5).to_nested(), lattice(3, 3, 1.5));
        assert_eq!(
            geometric_chain_flat(4, 6, 2.5, 2, 6).to_nested(),
            geometric_chain(4, 6, 2.5, 2, 6)
        );
        assert_eq!(cantor_dust_flat(4, 3.0).to_nested(), cantor_dust(4, 3.0));
        assert_eq!(
            two_scale_flat(30, 2, 5, 100.0, 7).to_nested(),
            two_scale(30, 2, 5, 100.0, 7)
        );
        assert_eq!(
            unit_sphere_flat(25, 3, 8).to_nested(),
            unit_sphere(25, 3, 8)
        );
        assert_eq!(
            uniform_queries_flat(20, 2, -1.0, 1.0, 9).to_nested(),
            uniform_queries(20, 2, -1.0, 1.0, 9)
        );
        let data = uniform_cube(30, 2, 10.0, 10);
        assert_eq!(
            perturbed_queries_flat(&FlatPoints::from(&data[..]), 15, 0.2, 11).to_nested(),
            perturbed_queries(&data, 15, 0.2, 11)
        );
    }

    #[test]
    fn lattice_has_exact_min_distance() {
        let pts = lattice(5, 2, 2.0);
        assert_eq!(pts.len(), 25);
        let ds = Dataset::new(pts, Euclidean);
        let (dmin, _) = ds.min_max_interpoint();
        assert_eq!(dmin, 2.0);
    }

    #[test]
    fn geometric_chain_controls_log_aspect() {
        let small = geometric_chain(4, 10, 3.0, 2, 1);
        let big = geometric_chain(12, 10, 3.0, 2, 1);
        let ds_small = Dataset::new(small, Euclidean);
        let ds_big = Dataset::new(big, Euclidean);
        let a_small = ds_small.aspect_ratio_exact().log2();
        let a_big = ds_big.aspect_ratio_exact().log2();
        assert!(
            a_big > a_small + 10.0,
            "log aspect should grow ~linearly in clusters: {a_small} vs {a_big}"
        );
    }

    #[test]
    fn two_scale_spread_controls_aspect() {
        let pts = two_scale(60, 2, 10, 1e4, 3);
        let ds = Dataset::new(pts, Euclidean);
        let a = ds.aspect_ratio_exact();
        assert!(a > 1e3, "aspect {a} should be driven by the spread");
    }

    #[test]
    fn swiss_roll_has_low_doubling_dimension() {
        let pts = swiss_roll(400, 6, 4);
        assert!(pts.iter().all(|p| p.len() == 6));
        let ds = Dataset::new(pts, Euclidean);
        // Greedy covering overestimates λ by up to ~2x; a swiss roll is a
        // 2-manifold, so the estimate should stay well below that of a true
        // 6-dimensional cloud (~6+) while possibly exceeding 4 slightly.
        let est = pg_metric::doubling::greedy_cover_log2(&ds, 25, 5);
        assert!(est <= 5.0, "swiss roll doubling estimate too high: {est}");
        let cloud = uniform_cube(400, 6, 10.0, 44);
        let ds6 = Dataset::new(cloud, Euclidean);
        let est6 = pg_metric::doubling::greedy_cover_log2(&ds6, 25, 5);
        assert!(
            est < est6,
            "manifold estimate {est} should undercut full 6-d cloud {est6}"
        );
    }

    #[test]
    fn clusters_have_k_modes() {
        let pts = gaussian_clusters(200, 2, 4, 0.1, 100.0, 6);
        assert_eq!(pts.len(), 200);
        // With tiny std, points collapse near 4 centers: the 1.0-net has ~4 points.
        let ds = Dataset::new(pts, Euclidean);
        let ids: Vec<u32> = (0..200).collect();
        let net = pg_nets_greedy_net(&ds, &ids, 5.0);
        assert!(
            net.len() <= 8,
            "expected ~4 clusters, got {} net points",
            net.len()
        );
    }

    // Local copy to avoid a dev-dependency cycle with pg-nets.
    fn pg_nets_greedy_net(ds: &Dataset<Vec<f64>, Euclidean>, ids: &[u32], r: f64) -> Vec<u32> {
        let mut centers: Vec<u32> = Vec::new();
        'outer: for &p in ids {
            for &c in &centers {
                if ds.dist(p as usize, c as usize) <= r {
                    continue 'outer;
                }
            }
            centers.push(p);
        }
        centers
    }

    #[test]
    fn perturbed_queries_stay_near_data() {
        let data = uniform_cube(50, 2, 10.0, 9);
        let qs = perturbed_queries(&data, 30, 0.1, 10);
        let ds = Dataset::new(data, Euclidean);
        for q in &qs {
            let (_, d) = ds.nearest_brute(q);
            assert!(d < 2.0, "query strayed {d} from the data");
        }
    }

    #[test]
    fn eval_suite_pairs_each_dataset_with_near_data_queries() {
        let suite = eval_suite_flat(160, 24, 42);
        assert_eq!(suite.len(), 4);
        for ((name, pts, qs), (sname, spts)) in suite.iter().zip(standard_suite_flat(160, 42)) {
            assert_eq!(*name, sname);
            assert_eq!(pts, &spts, "{name}: datasets must match the standard suite");
            assert_eq!(qs.len(), 24);
            assert_eq!(qs.dim(), pts.dim());
            // Perturbed queries stay near their source points.
            let ds = Dataset::new(pts.to_nested(), Euclidean);
            for q in qs.to_nested() {
                let (_, d) = ds.nearest_brute(&q);
                assert!(d < 10.0, "{name}: query strayed {d} from the data");
            }
        }
        // Reproducible from the parameters alone.
        let again = eval_suite_flat(160, 24, 42);
        for (a, b) in suite.iter().zip(again.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn standard_suite_datasets_are_distinct_and_sized() {
        let suite = standard_suite(160, 42);
        assert_eq!(suite.len(), 4);
        for (name, pts) in &suite {
            assert!(pts.len() >= 150, "{name} too small: {}", pts.len());
        }
        // The flat suite agrees entry by entry.
        for ((name, pts), (fname, fp)) in suite.iter().zip(standard_suite_flat(160, 42)) {
            assert_eq!(*name, fname);
            assert_eq!(*pts, fp.to_nested());
        }
    }
}
