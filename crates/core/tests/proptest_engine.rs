//! Property tests for the parallel batched query engine: on random graphs,
//! datasets and thread counts (1, 2, and the machine's parallelism), every
//! `batch_*` routine must return exactly what the sequential routine
//! returns per query, and the aggregated distance count must be the sum of
//! the per-query counts.

use pg_core::{beam_search, greedy, query, Graph, QueryEngine};
use pg_metric::{Dataset, Euclidean};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic random instance: an `n`-point 2-d dataset, a random sparse
/// digraph over it, `m` queries and start vertices.
#[allow(clippy::type_complexity)]
fn random_instance(
    n: usize,
    m: usize,
    seed: u64,
) -> (Dataset<Vec<f64>, Euclidean>, Graph, Vec<Vec<f64>>, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<Vec<f64>> = (0..n)
        .map(|_| vec![rng.random_range(0.0..30.0), rng.random_range(0.0..30.0)])
        .collect();
    let data = Dataset::new(pts, Euclidean);
    let adj: Vec<Vec<u32>> = (0..n)
        .map(|_| {
            let deg = rng.random_range(0..6usize);
            (0..deg).map(|_| rng.random_range(0..n) as u32).collect()
        })
        .collect();
    let graph = Graph::from_adjacency(adj);
    let queries: Vec<Vec<f64>> = (0..m)
        .map(|_| vec![rng.random_range(-5.0..35.0), rng.random_range(-5.0..35.0)])
        .collect();
    let starts: Vec<u32> = (0..m).map(|_| rng.random_range(0..n) as u32).collect();
    (data, graph, queries, starts)
}

fn thread_counts() -> [usize; 3] {
    let machine = std::thread::available_parallelism().map_or(1, |c| c.get());
    [1, 2, machine]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_greedy_equals_sequential_greedy(
        n in 2usize..48,
        m in 1usize..20,
        seed in 0u64..1_000_000,
    ) {
        let (data, graph, queries, starts) = random_instance(n, m, seed);
        for threads in thread_counts() {
            let engine = QueryEngine::new(graph.clone(), data.clone()).with_threads(threads);
            let batch = engine.batch_greedy(&starts, &queries);
            prop_assert_eq!(batch.outcomes.len(), m);
            let mut total = 0u64;
            for (i, out) in batch.outcomes.iter().enumerate() {
                let solo = greedy(&graph, &data, starts[i], &queries[i]);
                prop_assert_eq!(out.result, solo.result);
                prop_assert_eq!(out.result_dist, solo.result_dist);
                prop_assert_eq!(&out.hops, &solo.hops);
                prop_assert_eq!(out.dist_comps, solo.dist_comps);
                prop_assert_eq!(out.self_terminated, solo.self_terminated);
                total += solo.dist_comps;
            }
            prop_assert_eq!(batch.dist_comps, total);
        }
    }

    #[test]
    fn batch_query_equals_sequential_query(
        n in 2usize..48,
        m in 1usize..20,
        seed in 0u64..1_000_000,
        budget in 1u64..120,
    ) {
        let (data, graph, queries, starts) = random_instance(n, m, seed);
        for threads in thread_counts() {
            let engine = QueryEngine::new(graph.clone(), data.clone()).with_threads(threads);
            let batch = engine.batch_query(&starts, &queries, budget);
            for (i, out) in batch.outcomes.iter().enumerate() {
                let solo = query(&graph, &data, starts[i], &queries[i], budget);
                prop_assert_eq!(out.result, solo.result);
                prop_assert_eq!(out.result_dist, solo.result_dist);
                prop_assert_eq!(&out.hops, &solo.hops);
                prop_assert_eq!(out.dist_comps, solo.dist_comps);
                prop_assert_eq!(out.self_terminated, solo.self_terminated);
                prop_assert!(out.dist_comps <= budget.max(1));
            }
        }
    }

    #[test]
    fn batch_beam_equals_sequential_beam_search(
        n in 2usize..48,
        m in 1usize..16,
        seed in 0u64..1_000_000,
        ef in 1usize..10,
        k in 1usize..6,
    ) {
        let (data, graph, queries, starts) = random_instance(n, m, seed);
        for threads in thread_counts() {
            let engine = QueryEngine::new(graph.clone(), data.clone()).with_threads(threads);
            let batch = engine.batch_beam(&starts, &queries, ef, k);
            prop_assert_eq!(batch.results.len(), m);
            let mut total = 0u64;
            for (i, res) in batch.results.iter().enumerate() {
                let (solo, comps) = beam_search(&graph, &data, starts[i], &queries[i], ef, k);
                prop_assert_eq!(res, &solo);
                total += comps;
            }
            prop_assert_eq!(batch.dist_comps, total);
        }
    }
}
