//! Sharded search: one logical index over millions of points, served by
//! `S` independent per-shard sub-indexes with a parity-pinned merge.
//!
//! The paper's fast-construction claim (Theorem 1.1) matters most at
//! scales a single in-memory build starts to strain; the NSW lineage
//! (Malkov et al.) points out the structure "can be made distributed" by
//! splitting the dataset. [`ShardedEngine`] does exactly that, under this
//! workspace's determinism discipline:
//!
//! * **Partition** — a [`ShardAssignment`] splits the global id space
//!   `0..n` into `S` non-empty, strictly-ascending id lists (seeded random
//!   assignment today, pluggable for clustered assignment later). The
//!   partition is recorded as a [`pg_store::ShardManifest`], so it is
//!   validated on every load.
//! * **Per-shard indexes** — each shard holds its own
//!   [`GNet`] + [`QueryEngine`] over a compact copy of
//!   its points; shard-local ids are positions in the ascending global-id
//!   list, so local id order agrees with global id order.
//! * **Parallel search** — a batch fans out as a `(query × shard)` cross
//!   product through the order-preserving pool
//!   (`rayon::par_map_indexed_with`), so the schedule can never reorder
//!   results.
//! * **Surrogate-space merge** — per-shard top-`k` lists come back still
//!   in surrogate space ([`beam_search_surrogate`]) and are merged on the
//!   key `(surrogate, global id)`, then mapped to true distances once.
//!   Merging *after* the distance map would round away ties the surrogate
//!   keys still distinguish; merging in surrogate space makes the result
//!   list bit-identical across shard counts and thread counts.
//!
//! # The exactness/parity contract
//!
//! With `ef >= n`, beam search on a connected graph visits every vertex of
//! its component exactly once, so each shard returns its *exact* top-`k`
//! (by `(surrogate, id)`) at a cost of exactly `shard size` distance
//! computations. Because a global top-`k` element is also a top-`k`
//! element of its own shard, merging exact per-shard lists on
//! `(surrogate, global id)` reproduces the single-engine result list —
//! results, order, and aggregate `dist_comps` — bit-for-bit, for **every**
//! shard count and thread count. `tests/proptest_sharded.rs` pins this on
//! tie-heavy integer datasets. At realistic `ef < n` the engines trade
//! recall for cost instead, which is what `exp_shard` measures.
//!
//! # Persistence
//!
//! [`ShardedEngine::save`] writes one ordinary `pg_store` snapshot per
//! shard plus a [`ShardManifest`] — written **last**, so a directory with
//! a manifest always has all its shard files. [`ShardedEngine::load`] is
//! all-or-nothing: any missing, corrupt, or inconsistent shard fails the
//! whole load with a typed [`SnapshotError`] and no partially-loaded
//! engine is observable.
//!
//! ```
//! use pg_core::sharded::{ShardAssignment, ShardedEngine};
//! use pg_metric::{Euclidean, FlatPoints, FlatRow};
//!
//! let points = FlatPoints::from_fn(120, 2, |i, out| {
//!     out.push((i % 12) as f64);
//!     out.push((i / 12) as f64);
//! });
//! let sharded = ShardedEngine::build(
//!     &points,
//!     Euclidean,
//!     1.0,
//!     3,
//!     &ShardAssignment::SeededRandom { seed: 7 },
//! );
//! let queries: Vec<FlatRow> = vec![vec![3.2, 4.1].into()];
//! // ef >= n: exact — identical to an unsharded engine over the same points.
//! let batch = sharded.batch_beam_detailed(&queries, 120, 5);
//! assert_eq!(batch.outcomes[0].results.len(), 5);
//! assert_eq!(batch.dist_comps, 120); // every point visited exactly once
//! ```

use std::path::Path;

use pg_metric::{CompactPoints, FlatPoints, FlatRow, Metric, QuantKind, Quantized};
use pg_store::{shard_file_name, BuildParams, ShardManifest, SnapshotError, SHARD_MANIFEST_FILE};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::engine::{BatchBeamDetail, BatchBeamOutcome, QueryEngine};
use crate::gnet::GNet;
use crate::graph::Graph;
use crate::params::GNetParams;
use crate::search::{beam_search_quantized_surrogate, beam_search_surrogate, BeamOutcome};
use crate::snapshot::SnapshotMetric;

/// How points are assigned to shards. Every strategy is a pure function of
/// `(n, shard count)` plus its own parameters, so a partition is
/// reproducible from the recorded configuration alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAssignment {
    /// Seeded uniform assignment: Fisher–Yates-shuffle `0..n` with the
    /// workspace `StdRng` (SplitMix64), deal the shuffled ids round-robin
    /// into the shards (balanced to within one point), then sort each
    /// shard's list ascending. The same `(seed, n, shards)` always yields
    /// the same partition. Pluggable later: a clustered strategy (e.g.
    /// net-center-based) slots in as a new variant without touching the
    /// engine.
    SeededRandom {
        /// The shuffle seed.
        seed: u64,
    },
}

impl ShardAssignment {
    /// Partitions `0..n` into `shards` strictly-ascending, non-empty id
    /// lists. Requires `1 <= shards <= n` and `n <= u32::MAX`.
    pub fn assign(&self, n: usize, shards: usize) -> Vec<Vec<u32>> {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            shards <= n,
            "cannot split {n} points into {shards} non-empty shards"
        );
        assert!(n <= u32::MAX as usize, "n exceeds u32 id space");
        match self {
            ShardAssignment::SeededRandom { seed } => {
                let mut ids: Vec<u32> = (0..n as u32).collect();
                let mut rng = StdRng::seed_from_u64(*seed);
                ids.shuffle(&mut rng);
                let mut out: Vec<Vec<u32>> = (0..shards)
                    .map(|_| Vec::with_capacity(n / shards + 1))
                    .collect();
                for (j, id) in ids.into_iter().enumerate() {
                    out[j % shards].push(id);
                }
                for shard in &mut out {
                    shard.sort_unstable();
                }
                out
            }
        }
    }
}

/// One logical index over `n` points, physically split into `S`
/// independent [`QueryEngine`] shards searched in parallel and merged in
/// surrogate space (see the module docs for the full contract).
#[derive(Debug, Clone)]
pub struct ShardedEngine<M> {
    shards: Vec<QueryEngine<FlatRow, M>>,
    global_ids: Vec<Vec<u32>>,
    build: Option<BuildParams>,
    threads: usize,
    n: usize,
}

impl<M: Metric<FlatRow> + Clone + Sync> ShardedEngine<M> {
    /// Builds a sharded engine: partitions `points` with `assignment`,
    /// then builds one `G_net` + [`QueryEngine`] per shard (each shard's
    /// build runs its inner loops on the shared pool). The metric is
    /// cloned per shard — a `Counting` wrapper's shared counter therefore
    /// aggregates build *and* search distance computations across all
    /// shards, exactly like the unsharded engines.
    pub fn build(
        points: &FlatPoints,
        metric: M,
        epsilon: f64,
        shard_count: usize,
        assignment: &ShardAssignment,
    ) -> Self {
        let n = points.len();
        let global_ids = assignment.assign(n, shard_count);
        let dim = points.dim();
        let shards: Vec<QueryEngine<FlatRow, M>> = global_ids
            .iter()
            .map(|ids| {
                let mut shard_points = FlatPoints::with_capacity(ids.len(), dim);
                for &id in ids {
                    shard_points.push(points.row(id as usize));
                }
                let data = shard_points.into_dataset(metric.clone());
                // A one-point shard is trivially navigable; `G_net`'s net
                // hierarchy (sensibly) refuses datasets this small.
                let graph = if ids.len() == 1 {
                    Graph::empty(1)
                } else {
                    GNet::build(&data, epsilon).graph
                };
                QueryEngine::new(graph, data)
            })
            .collect();
        ShardedEngine {
            shards,
            global_ids,
            build: Some(GNetParams::new(epsilon).into()),
            threads: rayon::current_num_threads(),
            n,
        }
    }
}

impl<M> ShardedEngine<M> {
    /// Number of indexed points `n` across all shards.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: every shard is non-empty by the partition invariant.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of shards `S`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard engines, in shard order.
    pub fn shards(&self) -> &[QueryEngine<FlatRow, M>] {
        &self.shards
    }

    /// The per-shard global-id lists (strictly ascending; entry `s` maps
    /// shard `s`'s local ids to global ids).
    pub fn global_ids(&self) -> &[Vec<u32>] {
        &self.global_ids
    }

    /// The recorded build parameters, if any (saved into every shard's
    /// snapshot metadata).
    pub fn build_params(&self) -> Option<BuildParams> {
        self.build
    }

    /// The worker count batch calls use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the worker count (at least 1). Like
    /// [`QueryEngine::with_threads`], this changes only the wall clock:
    /// every batch result is independent of the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be at least 1");
        self.threads = threads;
        self
    }
}

impl<M: Metric<FlatRow> + Sync> ShardedEngine<M> {
    /// Searches every query against every shard in parallel (width `ef`,
    /// top `k` per shard, each shard entered at its local vertex 0) and
    /// merges per-shard results on `(surrogate, global id)` — the
    /// deterministic tie-break that makes the output identical across
    /// shard counts and thread counts (module docs). Each outcome carries
    /// the aggregate `dist_comps`/`expansions` of its `S` shard searches;
    /// results are global ids with true distances, ascending by
    /// `(distance, id)` like every search routine in the workspace.
    pub fn batch_beam_detailed(&self, queries: &[FlatRow], ef: usize, k: usize) -> BatchBeamDetail {
        let s = self.shards.len();
        let pairs: Vec<(usize, usize)> = (0..queries.len())
            .flat_map(|q| (0..s).map(move |i| (q, i)))
            .collect();
        let per_pair = rayon::par_map_indexed_with(self.threads, &pairs, |_, &(q, i)| {
            let shard = &self.shards[i];
            beam_search_surrogate(shard.graph(), shard.data(), 0, &queries[q], ef, k)
        });
        let outcomes: Vec<BeamOutcome> = (0..queries.len())
            .map(|q| {
                let mut merged: Vec<(u32, f64)> = Vec::with_capacity(s * k);
                let mut dist_comps = 0u64;
                let mut expansions = 0u64;
                for i in 0..s {
                    let out = &per_pair[q * s + i];
                    dist_comps += out.dist_comps;
                    expansions += out.expansions;
                    for &(local, sur) in &out.results {
                        merged.push((self.global_ids[i][local as usize], sur));
                    }
                }
                merged.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                merged.truncate(k);
                let data = self.shards[0].data();
                let results = merged
                    .into_iter()
                    .map(|(id, sur)| (id, data.dist_from_surrogate(sur)))
                    .collect();
                BeamOutcome {
                    results,
                    dist_comps,
                    expansions,
                }
            })
            .collect();
        let dist_comps = outcomes.iter().map(|o| o.dist_comps).sum();
        BatchBeamDetail {
            outcomes,
            dist_comps,
        }
    }

    /// [`ShardedEngine::batch_beam_detailed`] without the per-query
    /// accounting — result lists plus the batch distance total.
    pub fn batch_beam(&self, queries: &[FlatRow], ef: usize, k: usize) -> BatchBeamOutcome {
        let detail = self.batch_beam_detailed(queries, ef, k);
        BatchBeamOutcome {
            results: detail.outcomes.into_iter().map(|o| o.results).collect(),
            dist_comps: detail.dist_comps,
        }
    }

    /// Encodes every shard's points into the compact representation `kind`,
    /// one store per shard. SQ8 codebooks are therefore **per-shard**
    /// (each shard trains its own per-dimension ranges on its own points)
    /// — tighter ranges than one global codebook, and no cross-shard
    /// coordination on the write path.
    pub fn quantize(&self, kind: QuantKind) -> Result<Vec<CompactPoints>, String> {
        self.shards.iter().map(|s| s.quantize(kind)).collect()
    }

    /// The quantized counterpart of [`ShardedEngine::batch_beam_detailed`]:
    /// each `(query, shard)` pair navigates in that shard's compact store
    /// and re-ranks its candidate set with exact `f64` distances
    /// ([`beam_search_quantized_surrogate`]). Because the per-shard result
    /// keys are already **exact** surrogates after the re-rank, the merge
    /// is the very same `(surrogate, global id)` sort as the
    /// full-precision path — quantization changes what the walks gather,
    /// never the merge semantics — and at `ef >= n` the output is
    /// bit-identical to the full-precision engine.
    ///
    /// # Panics
    /// If `compacts` was not produced for these shards (count or per-shard
    /// length mismatch).
    pub fn batch_beam_quantized_detailed<C: Quantized + Sync>(
        &self,
        compacts: &[C],
        queries: &[FlatRow],
        ef: usize,
        k: usize,
    ) -> BatchBeamDetail {
        let s = self.shards.len();
        assert_eq!(compacts.len(), s, "one compact store per shard required");
        let pairs: Vec<(usize, usize)> = (0..queries.len())
            .flat_map(|q| (0..s).map(move |i| (q, i)))
            .collect();
        let per_pair = rayon::par_map_indexed_with(self.threads, &pairs, |_, &(q, i)| {
            let shard = &self.shards[i];
            beam_search_quantized_surrogate(
                shard.graph(),
                shard.data(),
                &compacts[i],
                0,
                &queries[q],
                ef,
                k,
            )
        });
        let outcomes: Vec<BeamOutcome> = (0..queries.len())
            .map(|q| {
                let mut merged: Vec<(u32, f64)> = Vec::with_capacity(s * k);
                let mut dist_comps = 0u64;
                let mut expansions = 0u64;
                for i in 0..s {
                    let out = &per_pair[q * s + i];
                    dist_comps += out.dist_comps;
                    expansions += out.expansions;
                    for &(local, sur) in &out.results {
                        merged.push((self.global_ids[i][local as usize], sur));
                    }
                }
                merged.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                merged.truncate(k);
                let data = self.shards[0].data();
                let results = merged
                    .into_iter()
                    .map(|(id, sur)| (id, data.dist_from_surrogate(sur)))
                    .collect();
                BeamOutcome {
                    results,
                    dist_comps,
                    expansions,
                }
            })
            .collect();
        let dist_comps = outcomes.iter().map(|o| o.dist_comps).sum();
        BatchBeamDetail {
            outcomes,
            dist_comps,
        }
    }

    /// [`ShardedEngine::batch_beam_quantized_detailed`] without the
    /// per-query accounting.
    pub fn batch_beam_quantized<C: Quantized + Sync>(
        &self,
        compacts: &[C],
        queries: &[FlatRow],
        ef: usize,
        k: usize,
    ) -> BatchBeamOutcome {
        let detail = self.batch_beam_quantized_detailed(compacts, queries, ef, k);
        BatchBeamOutcome {
            results: detail.outcomes.into_iter().map(|o| o.results).collect(),
            dist_comps: detail.dist_comps,
        }
    }
}

impl<M: Metric<FlatRow> + SnapshotMetric + Sync> ShardedEngine<M> {
    /// Saves the engine into directory `dir`: one `pg_store` snapshot per
    /// shard ([`shard_file_name`]), then the [`ShardManifest`]
    /// ([`SHARD_MANIFEST_FILE`]) **last** — each write atomic and durable,
    /// so a crash mid-save never leaves a manifest pointing at missing
    /// shard files.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for (i, shard) in self.shards.iter().enumerate() {
            shard.save_with(dir.join(shard_file_name(i)), 0, self.build)?;
        }
        let manifest = ShardManifest::new(self.n as u64, self.global_ids.clone())?;
        manifest.save(dir.join(SHARD_MANIFEST_FILE))
    }

    /// Loads a sharded engine saved by [`ShardedEngine::save`].
    /// All-or-nothing: the manifest is validated first (partition
    /// invariant included), then every shard file must load, match the
    /// manifest's shard size, agree on dimensionality, and carry `M`'s
    /// metric tag — any failure returns the typed [`SnapshotError`] and no
    /// engine. A loaded engine answers bit-identically to the saved one.
    pub fn load(dir: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let dir = dir.as_ref();
        let manifest = ShardManifest::load(dir.join(SHARD_MANIFEST_FILE))?;
        let n = manifest.n() as usize;
        let global_ids = manifest.into_shards();
        let mut shards: Vec<QueryEngine<FlatRow, M>> = Vec::with_capacity(global_ids.len());
        let mut build: Option<BuildParams> = None;
        let mut dims: Option<usize> = None;
        for (i, ids) in global_ids.iter().enumerate() {
            let (engine, meta) =
                QueryEngine::<FlatRow, M>::load_with_meta(dir.join(shard_file_name(i)))?;
            if engine.data().len() != ids.len() {
                return Err(SnapshotError::Invalid {
                    reason: format!(
                        "shard {i} holds {} points, the manifest assigns it {}",
                        engine.data().len(),
                        ids.len()
                    ),
                });
            }
            let shard_dims = engine.data().point(0).dim();
            match dims {
                None => dims = Some(shard_dims),
                Some(d) if d != shard_dims => {
                    return Err(SnapshotError::Invalid {
                        reason: format!(
                            "shard {i} stores {shard_dims}-dimensional points, shard 0 stores {d}"
                        ),
                    });
                }
                Some(_) => {}
            }
            if build.is_none() {
                build = meta.build;
            }
            shards.push(engine);
        }
        Ok(ShardedEngine {
            shards,
            global_ids,
            build,
            threads: rayon::current_num_threads(),
            n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::{Counting, Euclidean};

    /// A tie-heavy integer grid: many distinct points at equal distances
    /// from round-number queries.
    fn grid(n: usize) -> FlatPoints {
        FlatPoints::from_fn(n, 2, |i, out| {
            out.push((i % 16) as f64);
            out.push((i / 16) as f64);
        })
    }

    fn queries(m: usize) -> Vec<FlatRow> {
        (0..m)
            .map(|i| FlatRow::from(vec![(i % 7) as f64, (i % 5) as f64]))
            .collect()
    }

    #[test]
    fn assignment_is_a_balanced_deterministic_partition() {
        let a = ShardAssignment::SeededRandom { seed: 42 };
        let parts = a.assign(103, 4);
        assert_eq!(parts, a.assign(103, 4), "same seed, same partition");
        assert_ne!(
            parts,
            ShardAssignment::SeededRandom { seed: 43 }.assign(103, 4),
            "different seed, different partition"
        );
        let manifest = ShardManifest::new(103, parts.clone()).unwrap();
        assert_eq!(manifest.shard_count(), 4);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert!(sizes.iter().all(|&s| s == 25 || s == 26), "{sizes:?}");
        for p in &parts {
            assert!(p.windows(2).all(|w| w[0] < w[1]), "ascending per shard");
        }
    }

    #[test]
    fn exact_search_matches_the_unsharded_engine_bit_for_bit() {
        let points = grid(96);
        let single = {
            let data = points.clone().into_dataset(Euclidean);
            let g = GNet::build(&data, 1.0);
            QueryEngine::new(g.graph, data)
        };
        let qs = queries(9);
        let starts = vec![0u32; qs.len()];
        let want = single.batch_beam_detailed(&starts, &qs, 96, 4);
        for shards in [1, 2, 3, 8] {
            let engine = ShardedEngine::build(
                &points,
                Euclidean,
                1.0,
                shards,
                &ShardAssignment::SeededRandom { seed: 5 },
            );
            let got = engine.batch_beam_detailed(&qs, 96, 4);
            assert_eq!(got.outcomes, want.outcomes, "diverged at {shards} shards");
            assert_eq!(got.dist_comps, want.dist_comps);
        }
    }

    #[test]
    fn quantized_exact_search_matches_the_unsharded_engine_results() {
        let points = grid(96);
        let single = {
            let data = points.clone().into_dataset(Euclidean);
            let g = GNet::build(&data, 1.0);
            QueryEngine::new(g.graph, data)
        };
        let qs = queries(9);
        let starts = vec![0u32; qs.len()];
        let want = single.batch_beam_detailed(&starts, &qs, 96, 4);
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            for shards in [1, 2, 3, 8] {
                let engine = ShardedEngine::build(
                    &points,
                    Euclidean,
                    1.0,
                    shards,
                    &ShardAssignment::SeededRandom { seed: 5 },
                );
                let compacts = engine.quantize(kind).unwrap();
                assert_eq!(compacts.len(), shards);
                // At ef = n each shard's candidate set is its whole point
                // set; the exact re-rank then makes every per-shard top-k
                // exact, so the merged result ids and distances equal the
                // full-precision single engine bit-for-bit. (dist_comps
                // differ: the quantized path also counts the re-rank.)
                let got = engine.batch_beam_quantized_detailed(&compacts, &qs, 96, 4);
                for (g, w) in got.outcomes.iter().zip(want.outcomes.iter()) {
                    assert_eq!(
                        g.results,
                        w.results,
                        "{} diverged at {shards} shards",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn quantized_results_are_thread_count_invariant() {
        let points = grid(80);
        let engine = ShardedEngine::build(
            &points,
            Euclidean,
            1.0,
            3,
            &ShardAssignment::SeededRandom { seed: 11 },
        );
        let compacts = engine.quantize(QuantKind::Sq8).unwrap();
        let qs = queries(7);
        let base = engine
            .clone()
            .with_threads(1)
            .batch_beam_quantized_detailed(&compacts, &qs, 20, 3);
        let machine = std::thread::available_parallelism().map_or(1, |t| t.get());
        for t in [2, machine] {
            let got = engine
                .clone()
                .with_threads(t)
                .batch_beam_quantized_detailed(&compacts, &qs, 20, 3);
            assert_eq!(got.outcomes, base.outcomes, "diverged at {t} threads");
        }
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let points = grid(80);
        let engine = ShardedEngine::build(
            &points,
            Euclidean,
            1.0,
            3,
            &ShardAssignment::SeededRandom { seed: 11 },
        );
        let qs = queries(7);
        let base = engine
            .clone()
            .with_threads(1)
            .batch_beam_detailed(&qs, 20, 3);
        let machine = std::thread::available_parallelism().map_or(1, |t| t.get());
        for t in [2, machine] {
            let got = engine
                .clone()
                .with_threads(t)
                .batch_beam_detailed(&qs, 20, 3);
            assert_eq!(got.outcomes, base.outcomes, "diverged at {t} threads");
        }
    }

    #[test]
    fn counting_metric_aggregates_across_shards() {
        let points = grid(60);
        let counting = Counting::new(Euclidean);
        let engine = ShardedEngine::build(
            &points,
            counting.clone(),
            1.0,
            4,
            &ShardAssignment::SeededRandom { seed: 2 },
        );
        assert!(counting.count() > 0, "build cost was counted");
        counting.reset();
        let qs = queries(5);
        let batch = engine.batch_beam_detailed(&qs, 60, 3);
        assert_eq!(counting.count(), batch.dist_comps);
        // ef >= n visits every point in every shard exactly once.
        assert_eq!(batch.dist_comps, (qs.len() * 60) as u64);
    }

    #[test]
    fn batch_beam_is_the_detailed_call_without_accounting() {
        let points = grid(48);
        let engine = ShardedEngine::build(
            &points,
            Euclidean,
            1.0,
            2,
            &ShardAssignment::SeededRandom { seed: 3 },
        );
        let qs = queries(4);
        let detail = engine.batch_beam_detailed(&qs, 16, 3);
        let plain = engine.batch_beam(&qs, 16, 3);
        assert_eq!(plain.dist_comps, detail.dist_comps);
        assert_eq!(
            plain.results,
            detail
                .outcomes
                .iter()
                .map(|o| o.results.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "non-empty shards")]
    fn more_shards_than_points_is_rejected() {
        let _ = ShardAssignment::SeededRandom { seed: 0 }.assign(3, 4);
    }
}
