//! Parallel batched query execution.
//!
//! The paper's cost model counts distance computations because "distance
//! calculation is the bottleneck" (Section 1.1) — which is exactly why a
//! serving system runs many queries at once. [`QueryEngine`] owns a built
//! [`Graph`] and its [`Dataset`] and shards query batches across a thread
//! pool (`crates/compat/rayon`), while returning results in **input order,
//! identical to the sequential routines** ([`greedy`](crate::search::greedy),
//! [`query`], [`beam_search`](crate::search::beam_search)): the routing walk for
//! one query never depends on any other query, so parallelism cannot change
//! an answer, only the wall clock.
//!
//! Distance accounting stays sound under parallelism on both levels: each
//! outcome carries its own `dist_comps`, and the [`Counting`] metric wrapper
//! (`pg_metric`) uses a shared `Arc<AtomicU64>`, so concurrent shards all
//! flow into one total.
//!
//! # `Sync` bounds
//!
//! The batch methods (and every parallel construction path in this
//! workspace: [`GNet::build_fast_on`](crate::gnet::GNet::build_fast_on),
//! [`gnet_edges_with_phi`](crate::gnet::gnet_edges_with_phi),
//! [`DynamicGNet`](crate::dynamic::DynamicGNet),
//! [`MergedGraph`](crate::merged::MergedGraph)) require `P: Sync` and
//! `M: Metric<P> + Sync`: worker threads share `&Dataset<P, M>` across the
//! pool's scope. Every point type in the workspace (`Vec<f64>`,
//! [`FlatRow`], arrays) and every metric (the `L_p` family, `Counting`,
//! `Scaled`) is `Sync`, so the bounds cost callers nothing — they only
//! become visible when writing code generic over `P`/`M`, where they must
//! be propagated (this is the PR-2 API change the sequential seed didn't
//! need). The sequential entry points ([`greedy`](crate::search::greedy),
//! [`query`], [`beam_search`](crate::search::beam_search)) remain bound-free.
//!
//! # Persistence
//!
//! Construction is the expensive phase; queries are cheap. The engine
//! therefore splits into an offline and an online half:
//! [`QueryEngine::save`] writes the index (graph + flat points + metadata)
//! to the versioned `pg_store` on-disk format, and [`QueryEngine::load`]
//! reconstructs an engine that answers **bit-identically** — same results,
//! hops and `dist_comps` at every thread count (pinned by
//! `tests/snapshot_parity.rs`). See the [`snapshot`](crate::snapshot)
//! module and `ARCHITECTURE.md` at the repository root.
//!
//! [`Counting`]: pg_metric::Counting
//!
//! # Example
//!
//! Serving datasets should use the contiguous [`FlatPoints`] layout — the
//! engine (like every search routine) is generic over the point type, so a
//! flat-backed dataset drops in via [`FlatRow`] handles:
//!
//! ```
//! use pg_core::engine::QueryEngine;
//! use pg_core::GNet;
//! use pg_metric::{Euclidean, FlatPoints, FlatRow};
//!
//! let mut points = FlatPoints::new(2);
//! for i in 0..60 {
//!     points.push(&[i as f64, (i % 5) as f64]);
//! }
//! let data = points.into_dataset(Euclidean);
//! let pg = GNet::build(&data, 1.0);
//!
//! let engine = QueryEngine::new(pg.graph, data).with_threads(2);
//! let queries: Vec<FlatRow> = vec![vec![7.2, 1.0].into(), vec![41.9, 3.3].into()];
//! let starts = vec![0, 30];
//! let batch = engine.batch_greedy(&starts, &queries);
//! assert_eq!(batch.outcomes.len(), 2);
//! // Same answers as running `greedy` one query at a time:
//! let solo = pg_core::greedy(engine.graph(), engine.data(), 0, &queries[0]);
//! assert_eq!(batch.outcomes[0].result, solo.result);
//! assert_eq!(batch.dist_comps, batch.outcomes.iter().map(|o| o.dist_comps).sum::<u64>());
//! ```
//!
//! [`FlatPoints`]: pg_metric::FlatPoints
//! [`FlatRow`]: pg_metric::FlatRow

use pg_metric::{CompactPoints, Dataset, Metric, QuantKind, Quantized};

use crate::graph::Graph;
use crate::search::{
    beam_search_detailed, beam_search_quantized, query, BeamOutcome, GreedyOutcome,
};

/// The result of a [`QueryEngine::batch_greedy`] / [`QueryEngine::batch_query`]
/// call: per-query outcomes in input order plus the aggregated distance count.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One [`GreedyOutcome`] per query, in the order the queries were given.
    pub outcomes: Vec<GreedyOutcome>,
    /// Total distance computations across the batch (the sum of the
    /// per-outcome `dist_comps`).
    pub dist_comps: u64,
}

/// The result of a [`QueryEngine::batch_beam`] call.
#[derive(Debug, Clone)]
pub struct BatchBeamOutcome {
    /// Per-query `(id, dist)` result lists (ascending by distance, ties by
    /// id), in the order the queries were given.
    pub results: Vec<Vec<(u32, f64)>>,
    /// Total distance computations across the batch.
    pub dist_comps: u64,
}

/// The result of a [`QueryEngine::batch_beam_detailed`] call: one full
/// [`BeamOutcome`] per query, so evaluation code can score recall and plot
/// per-query cost (`dist_comps`, `expansions`) without re-deriving anything
/// from a batch total.
#[derive(Debug, Clone)]
pub struct BatchBeamDetail {
    /// One [`BeamOutcome`] per query, in the order the queries were given.
    pub outcomes: Vec<BeamOutcome>,
    /// Total distance computations across the batch (the sum of the
    /// per-outcome `dist_comps`).
    pub dist_comps: u64,
}

/// A batched query executor owning a routable index: a [`Graph`] over a
/// [`Dataset`].
///
/// The thread count is resolved at construction from the pool default
/// (`--threads` flag via `rayon::set_default_threads`, else `PG_THREADS`,
/// else the machine's parallelism) and can be overridden per engine with
/// [`QueryEngine::with_threads`]. Every `batch_*` method is deterministic:
/// the output is independent of the thread count.
#[derive(Debug, Clone)]
pub struct QueryEngine<P, M> {
    graph: Graph,
    data: Dataset<P, M>,
    threads: usize,
}

impl<P, M: Metric<P>> QueryEngine<P, M> {
    /// Creates an engine over a built graph and its dataset.
    ///
    /// Panics if the graph's vertex count differs from the dataset size.
    pub fn new(graph: Graph, data: Dataset<P, M>) -> Self {
        assert_eq!(
            graph.n(),
            data.len(),
            "graph vertex count must match dataset size"
        );
        QueryEngine {
            graph,
            data,
            threads: rayon::current_num_threads(),
        }
    }

    /// Overrides the worker count for this engine (at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be at least 1");
        self.threads = threads;
        self
    }

    /// The worker count `batch_*` calls will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The routed graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The dataset (points + metric).
    pub fn data(&self) -> &Dataset<P, M> {
        &self.data
    }

    /// Consumes the engine, handing back the graph and dataset.
    pub fn into_parts(self) -> (Graph, Dataset<P, M>) {
        (self.graph, self.data)
    }
}

impl<P: Sync, M: Metric<P> + Sync> QueryEngine<P, M> {
    /// Runs [`greedy`](crate::search::greedy) for every `(start, query)`
    /// pair, sharded across the pool. `starts` and `queries` must have equal
    /// lengths; outcome `i` is exactly `greedy(graph, data, starts[i],
    /// &queries[i])`.
    pub fn batch_greedy(&self, starts: &[u32], queries: &[P]) -> BatchOutcome {
        self.batch_query(starts, queries, u64::MAX)
    }

    /// Runs the budgeted [`query`] for every
    /// `(start, query)` pair, sharded across the pool. Outcome `i` is exactly
    /// `query(graph, data, starts[i], &queries[i], budget)`.
    pub fn batch_query(&self, starts: &[u32], queries: &[P], budget: u64) -> BatchOutcome {
        assert_eq!(
            starts.len(),
            queries.len(),
            "one start vertex per query required"
        );
        let outcomes = rayon::par_map_indexed_with(self.threads, queries, |i, q| {
            query(&self.graph, &self.data, starts[i], q, budget)
        });
        let dist_comps = outcomes.iter().map(|o| o.dist_comps).sum();
        BatchOutcome {
            outcomes,
            dist_comps,
        }
    }

    /// Runs [`beam_search`](crate::search::beam_search) (width `ef`, top
    /// `k`) for every `(start, query)` pair, sharded across the pool. Result
    /// `i` is exactly `beam_search(graph, data, starts[i], &queries[i], ef,
    /// k)`. Delegates to [`QueryEngine::batch_beam_detailed`] and discards
    /// the per-query accounting.
    pub fn batch_beam(
        &self,
        starts: &[u32],
        queries: &[P],
        ef: usize,
        k: usize,
    ) -> BatchBeamOutcome {
        let detail = self.batch_beam_detailed(starts, queries, ef, k);
        BatchBeamOutcome {
            results: detail.outcomes.into_iter().map(|o| o.results).collect(),
            dist_comps: detail.dist_comps,
        }
    }

    /// Runs [`beam_search_detailed`] for every `(start, query)` pair,
    /// sharded across the pool: outcome `i` is exactly
    /// `beam_search_detailed(graph, data, starts[i], &queries[i], ef, k)`,
    /// carrying that query's own `dist_comps` and `expansions` — the
    /// per-query detail evaluation sweeps (`pg_eval`) score from, with the
    /// batch total still aggregated on the side.
    pub fn batch_beam_detailed(
        &self,
        starts: &[u32],
        queries: &[P],
        ef: usize,
        k: usize,
    ) -> BatchBeamDetail {
        assert_eq!(
            starts.len(),
            queries.len(),
            "one start vertex per query required"
        );
        let outcomes = rayon::par_map_indexed_with(self.threads, queries, |i, q| {
            beam_search_detailed(&self.graph, &self.data, starts[i], q, ef, k)
        });
        let dist_comps = outcomes.iter().map(|o| o.dist_comps).sum();
        BatchBeamDetail {
            outcomes,
            dist_comps,
        }
    }
}

impl<P: Sync + AsRef<[f64]>, M: Metric<P> + Sync> QueryEngine<P, M> {
    /// Encodes this engine's points into the compact representation `kind`
    /// (see `pg_metric::quant`). The engine keeps its full-precision points
    /// — the compact store rides alongside for the quantized search path,
    /// and the exact re-rank needs the originals anyway. Fails only on
    /// malformed data (empty set, non-finite coordinates).
    pub fn quantize(&self, kind: QuantKind) -> Result<CompactPoints, String> {
        let rows: Vec<&[f64]> = self.data.points().iter().map(|p| p.as_ref()).collect();
        CompactPoints::from_rows(kind, &rows)
    }

    /// Runs [`beam_search_quantized`]
    /// for every `(start, query)` pair, sharded across the pool: the walk
    /// navigates in `compact`'s surrogate space and every candidate set is
    /// re-ranked with exact `f64` distances before truncation. Outcome `i`
    /// is exactly the sequential call — deterministic at every thread count
    /// like all `batch_*` methods.
    ///
    /// # Panics
    /// If `compact` does not describe exactly this engine's points (length
    /// mismatch), or `starts.len() != queries.len()`.
    pub fn batch_beam_quantized_detailed<C: Quantized + Sync>(
        &self,
        compact: &C,
        starts: &[u32],
        queries: &[P],
        ef: usize,
        k: usize,
    ) -> BatchBeamDetail {
        assert_eq!(
            starts.len(),
            queries.len(),
            "one start vertex per query required"
        );
        let outcomes = rayon::par_map_indexed_with(self.threads, queries, |i, q| {
            beam_search_quantized(&self.graph, &self.data, compact, starts[i], q, ef, k)
        });
        let dist_comps = outcomes.iter().map(|o| o.dist_comps).sum();
        BatchBeamDetail {
            outcomes,
            dist_comps,
        }
    }

    /// [`QueryEngine::batch_beam_quantized_detailed`] without the per-query
    /// accounting — the quantized counterpart of [`QueryEngine::batch_beam`].
    pub fn batch_beam_quantized<C: Quantized + Sync>(
        &self,
        compact: &C,
        starts: &[u32],
        queries: &[P],
        ef: usize,
        k: usize,
    ) -> BatchBeamOutcome {
        let detail = self.batch_beam_quantized_detailed(compact, starts, queries, ef, k);
        BatchBeamOutcome {
            results: detail.outcomes.into_iter().map(|o| o.results).collect(),
            dist_comps: detail.dist_comps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnet::GNet;
    use crate::search::greedy;
    use pg_metric::{Counting, Euclidean};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_dataset(n: usize, seed: u64) -> Dataset<Vec<f64>, Euclidean> {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::new(
            (0..n)
                .map(|_| vec![rng.random_range(0.0..40.0), rng.random_range(0.0..40.0)])
                .collect(),
            Euclidean,
        )
    }

    fn random_queries(m: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| vec![rng.random_range(-5.0..45.0), rng.random_range(-5.0..45.0)])
            .collect()
    }

    fn outcomes_equal(a: &GreedyOutcome, b: &GreedyOutcome) -> bool {
        a.result == b.result
            && a.result_dist == b.result_dist
            && a.hops == b.hops
            && a.dist_comps == b.dist_comps
            && a.self_terminated == b.self_terminated
    }

    #[test]
    fn batch_greedy_matches_sequential_for_every_thread_count() {
        let ds = random_dataset(200, 1);
        let pg = GNet::build(&ds, 1.0);
        let queries = random_queries(40, 2);
        let starts: Vec<u32> = (0..40).map(|i| (i * 31) % 200).collect();
        let sequential: Vec<GreedyOutcome> = starts
            .iter()
            .zip(queries.iter())
            .map(|(&s, q)| greedy(&pg.graph, &ds, s, q))
            .collect();
        for threads in [1, 2, 8] {
            let engine = QueryEngine::new(pg.graph.clone(), ds.clone()).with_threads(threads);
            let batch = engine.batch_greedy(&starts, &queries);
            assert_eq!(batch.outcomes.len(), sequential.len());
            for (b, s) in batch.outcomes.iter().zip(sequential.iter()) {
                assert!(outcomes_equal(b, s), "divergence at {threads} threads");
            }
            assert_eq!(
                batch.dist_comps,
                sequential.iter().map(|o| o.dist_comps).sum::<u64>()
            );
        }
    }

    #[test]
    fn batch_query_respects_budget_exactly() {
        let ds = random_dataset(150, 3);
        let pg = GNet::build(&ds, 1.0);
        let queries = random_queries(25, 4);
        let starts = vec![0u32; 25];
        let engine = QueryEngine::new(pg.graph.clone(), ds.clone()).with_threads(4);
        for budget in [1, 5, 20] {
            let batch = engine.batch_query(&starts, &queries, budget);
            for (i, (q, out)) in queries.iter().zip(batch.outcomes.iter()).enumerate() {
                let solo = crate::search::query(&pg.graph, &ds, starts[i], q, budget);
                assert!(outcomes_equal(out, &solo));
                assert!(out.dist_comps <= budget.max(1));
            }
        }
    }

    #[test]
    fn batch_beam_matches_sequential_and_orders_results() {
        use crate::search::beam_search;
        let ds = random_dataset(180, 5);
        let pg = GNet::build(&ds, 1.0);
        let queries = random_queries(30, 6);
        let starts: Vec<u32> = (0..30).map(|i| (i * 13) % 180).collect();
        let engine = QueryEngine::new(pg.graph.clone(), ds.clone()).with_threads(3);
        let batch = engine.batch_beam(&starts, &queries, 16, 4);
        let mut comps_total = 0u64;
        for (i, q) in queries.iter().enumerate() {
            let (solo, c) = beam_search(&pg.graph, &ds, starts[i], q, 16, 4);
            assert_eq!(batch.results[i], solo);
            comps_total += c;
        }
        assert_eq!(batch.dist_comps, comps_total);
    }

    #[test]
    fn batch_beam_detailed_matches_sequential_for_every_thread_count() {
        let ds = random_dataset(170, 12);
        let pg = GNet::build(&ds, 1.0);
        let queries = random_queries(24, 13);
        let starts: Vec<u32> = (0..24).map(|i| (i * 7) % 170).collect();
        let sequential: Vec<BeamOutcome> = starts
            .iter()
            .zip(queries.iter())
            .map(|(&s, q)| beam_search_detailed(&pg.graph, &ds, s, q, 12, 3))
            .collect();
        for threads in [1, 2, 6] {
            let engine = QueryEngine::new(pg.graph.clone(), ds.clone()).with_threads(threads);
            let detail = engine.batch_beam_detailed(&starts, &queries, 12, 3);
            assert_eq!(detail.outcomes, sequential, "diverged at {threads} threads");
            assert_eq!(
                detail.dist_comps,
                sequential.iter().map(|o| o.dist_comps).sum::<u64>()
            );
        }
    }

    #[test]
    fn counting_metric_total_matches_batch_aggregate_under_parallelism() {
        let base = random_dataset(160, 7);
        let counted = Dataset::new(base.points().to_vec(), Counting::new(Euclidean));
        let pg = GNet::build(&counted, 1.0);
        let queries = random_queries(32, 8);
        let starts = vec![5u32; 32];
        let engine = QueryEngine::new(pg.graph, counted).with_threads(4);
        engine.data().metric().reset();
        let batch = engine.batch_greedy(&starts, &queries);
        // The shared Arc<AtomicU64> collects every shard's evaluations.
        assert_eq!(engine.data().metric().count(), batch.dist_comps);
    }

    #[test]
    fn batch_beam_quantized_matches_sequential_for_every_thread_count() {
        use crate::search::beam_search_quantized;
        let ds = random_dataset(150, 21);
        let pg = GNet::build(&ds, 1.0);
        let queries = random_queries(20, 22);
        let starts: Vec<u32> = (0..20).map(|i| (i * 11) % 150).collect();
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let base = QueryEngine::new(pg.graph.clone(), ds.clone());
            let compact = base.quantize(kind).unwrap();
            let sequential: Vec<BeamOutcome> = starts
                .iter()
                .zip(queries.iter())
                .map(|(&s, q)| beam_search_quantized(&pg.graph, &ds, &compact, s, q, 10, 3))
                .collect();
            for threads in [1, 2, 5] {
                let engine = base.clone().with_threads(threads);
                let detail =
                    engine.batch_beam_quantized_detailed(&compact, &starts, &queries, 10, 3);
                assert_eq!(detail.outcomes, sequential, "diverged at {threads} threads");
                assert_eq!(
                    detail.dist_comps,
                    sequential.iter().map(|o| o.dist_comps).sum::<u64>()
                );
            }
        }
    }

    #[test]
    fn quantized_batch_at_full_width_equals_the_exact_batch() {
        let n = 120;
        let ds = random_dataset(n, 23);
        let pg = GNet::build(&ds, 1.0);
        let queries = random_queries(15, 24);
        let starts = vec![0u32; 15];
        let engine = QueryEngine::new(pg.graph.clone(), ds.clone()).with_threads(3);
        let exact = engine.batch_beam_detailed(&starts, &queries, n, 5);
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let compact = engine.quantize(kind).unwrap();
            let quant = engine.batch_beam_quantized_detailed(&compact, &starts, &queries, n, 5);
            // At ef = n every candidate set contains the exact top-k, so the
            // re-ranked results are bit-identical to the exact path.
            for (e, q) in exact.outcomes.iter().zip(quant.outcomes.iter()) {
                assert_eq!(e.results, q.results);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one start vertex per query")]
    fn mismatched_starts_rejected() {
        let ds = random_dataset(50, 9);
        let pg = GNet::build(&ds, 1.0);
        let engine = QueryEngine::new(pg.graph, ds);
        let _ = engine.batch_greedy(&[0, 1], &random_queries(3, 10));
    }

    #[test]
    #[should_panic(expected = "must match dataset size")]
    fn graph_dataset_size_mismatch_rejected() {
        let ds = random_dataset(50, 11);
        let _ = QueryEngine::new(Graph::empty(49), ds);
    }
}
