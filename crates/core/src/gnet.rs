//! `G_net`: the net-based `(1+ε)`-proximity graph of Theorem 1.1.
//!
//! Definition (Section 2.1): for each point `p` and each net level `i`,
//! create an edge `(p, y)` to every net point `y ∈ Y_i` with
//! `D(p, y) <= φ * r_i`. The resulting graph is `(1+ε)`-navigable
//! (Lemma 2.2), has `O((1/ε)^λ * n log Δ)` edges (Fact 2.3 packing), and
//! `greedy` reaches a `(1+ε)`-ANN within `h` hops (the log-drop property).
//!
//! Three constructions are provided, all producing **identical** graphs on
//! the same net hierarchy:
//!
//! * [`GNet::build_naive`] — full per-level scans, `O(n * Σ_i |Y_i|)`
//!   distances; ground truth;
//! * [`GNet::build`] / [`GNet::build_fast`] — the near-linear path: a
//!   [`RelativesCascade`] with factor `φ + 1` restricts each point's
//!   candidate targets at level `i` to the relatives of its covering center,
//!   a `O(φ^λ)`-size set (Fact 2.3), mirroring the cost analysis of
//!   Eq. (13);
//! * [`GNet::build_covertree`] — the Section 2.4 procedure verbatim: a
//!   dynamic 2-ANN structure (`pg-covertree`) per level, with the retrieval
//!   of `S` by repeated 2-ANN + delete + restore.

use pg_covertree::CoverTree;
use pg_metric::{Dataset, Metric};
use pg_nets::{NetHierarchy, RelativesCascade};

use crate::graph::{Graph, GraphBuilder};
use crate::params::GNetParams;

/// Shards the "which centers lie within `reach` of each point" scan across
/// the thread pool: entry `p` of the returned vector lists, in center order,
/// every `y ∈ centers` with `y != p` and `D(p, y) <= reach`. The
/// order-preserving parallel map keeps the output bit-identical to the
/// sequential double loop for any thread count — the shared candidate
/// generation of every full-scan `G_net` builder below.
fn centers_within_reach<P: Sync, M: Metric<P> + Sync>(
    data: &Dataset<P, M>,
    centers: &[u32],
    reach: f64,
) -> Vec<Vec<u32>> {
    rayon::par_map_range(data.len(), |p| {
        centers
            .iter()
            .copied()
            .filter(|&y| y != p as u32 && data.dist(p, y as usize) <= reach)
            .collect()
    })
}

/// The net-based proximity graph of Theorem 1.1, together with the net
/// hierarchy it was built from (retained for the merged graph of Theorem 1.3
/// and for diagnostics).
#[derive(Debug, Clone)]
pub struct GNet {
    /// The proximity graph.
    pub graph: Graph,
    /// Parameters `(ε, η, φ)`.
    pub params: GNetParams,
    /// The net ladder `Y_0 ⊇ ... ⊇ Y_h`.
    pub hierarchy: NetHierarchy,
}

impl GNet {
    /// Builds `G_net` with the fast (near-linear) construction. Alias of
    /// [`GNet::build_fast`].
    pub fn build<P: Sync, M: Metric<P> + Sync>(data: &Dataset<P, M>, epsilon: f64) -> Self {
        Self::build_fast(data, epsilon)
    }

    /// Fast construction via the relatives cascade (see module docs).
    pub fn build_fast<P: Sync, M: Metric<P> + Sync>(data: &Dataset<P, M>, epsilon: f64) -> Self {
        let hierarchy = NetHierarchy::build(data);
        Self::build_fast_on(data, epsilon, hierarchy)
    }

    /// Fast construction on a pre-built hierarchy.
    ///
    /// The per-level candidate-generation loop is sharded across the thread
    /// pool (`crates/compat/rayon`): each point's candidate set depends only
    /// on the immutable level snapshot, and the per-point target lists are
    /// re-assembled in id order, so the resulting graph is **bit-identical
    /// to the sequential construction for any thread count** (asserted in
    /// tests) and the distance-computation total is unchanged.
    pub fn build_fast_on<P: Sync, M: Metric<P> + Sync>(
        data: &Dataset<P, M>,
        epsilon: f64,
        hierarchy: NetHierarchy,
    ) -> Self {
        let params = GNetParams::new(epsilon);
        let n = data.len();
        let mut builder = GraphBuilder::new(n);

        // K = φ + 1: a center y with D(p, y) <= φ r is within (φ+1) r of
        // p's covering center, hence among that center's relatives.
        let mut cascade = RelativesCascade::new(data, &hierarchy, params.phi + 1.0);
        loop {
            let lvl = hierarchy.level(cascade.level_idx());
            let rel = cascade.relatives();
            let reach = params.phi * lvl.radius;
            let per_point = rayon::par_map_range(n, |p| {
                let cpos = lvl.cover[p] as usize;
                let mut targets = Vec::new();
                for &ypos in &rel[cpos] {
                    let y = lvl.centers[ypos as usize];
                    if y != p as u32 && data.dist(p, y as usize) <= reach {
                        targets.push(y);
                    }
                }
                targets
            });
            for (p, targets) in per_point.into_iter().enumerate() {
                for y in targets {
                    builder.add_edge(p as u32, y);
                }
            }
            if !cascade.descend() {
                break;
            }
        }

        GNet {
            graph: builder.build(),
            params,
            hierarchy,
        }
    }

    /// Ground-truth construction: full scan of every net level for every
    /// point (`O(n * Σ_i |Y_i|)` distances).
    pub fn build_naive<P: Sync, M: Metric<P> + Sync>(data: &Dataset<P, M>, epsilon: f64) -> Self {
        let hierarchy = NetHierarchy::build(data);
        Self::build_naive_on(data, epsilon, hierarchy)
    }

    /// Naive construction on a pre-built hierarchy. The per-point level
    /// scans are sharded across the thread pool; see
    /// [`GNet::build_fast_on`] for why the output is thread-count-invariant.
    pub fn build_naive_on<P: Sync, M: Metric<P> + Sync>(
        data: &Dataset<P, M>,
        epsilon: f64,
        hierarchy: NetHierarchy,
    ) -> Self {
        let params = GNetParams::new(epsilon);
        let n = data.len();
        let mut builder = GraphBuilder::new(n);
        for lvl in hierarchy.levels() {
            let reach = params.phi * lvl.radius;
            let per_point = centers_within_reach(data, &lvl.centers, reach);
            for (p, targets) in per_point.into_iter().enumerate() {
                for y in targets {
                    builder.add_edge(p as u32, y);
                }
            }
        }
        GNet {
            graph: builder.build(),
            params,
            hierarchy,
        }
    }

    /// The Section 2.4 `build` procedure verbatim: per level, a dynamic
    /// 2-ANN structure `T` over `Y_i`; for each point `p`, the set
    /// `S = {y ∈ Y_i : D(p, y) <= φ 2^i}` is retrieved by repeatedly taking
    /// a 2-ANN `y` of `p` from `T`, adding it to `S` if `D(p, y) <= φ 2^i`,
    /// and deleting it from `T`, until `D(p, y) > 2 φ 2^i`; afterwards the
    /// deleted points are re-inserted.
    pub fn build_covertree<P, M: Metric<P>>(data: &Dataset<P, M>, epsilon: f64) -> Self {
        let hierarchy = NetHierarchy::build(data);
        Self::build_covertree_on(data, epsilon, hierarchy)
    }

    /// Section 2.4 construction on a pre-built hierarchy.
    pub fn build_covertree_on<P, M: Metric<P>>(
        data: &Dataset<P, M>,
        epsilon: f64,
        hierarchy: NetHierarchy,
    ) -> Self {
        let params = GNetParams::new(epsilon);
        let n = data.len();
        let mut builder = GraphBuilder::new(n);

        for lvl in hierarchy.levels() {
            let reach = params.phi * lvl.radius;
            let stop = 2.0 * params.phi * lvl.radius;
            let mut tree = CoverTree::build(data, lvl.centers.iter().copied());
            for p in 0..n as u32 {
                let mut deleted: Vec<u32> = Vec::new();
                // Retrieval of S (Section 2.4): |S_del| = O(φ^λ) by the
                // packing argument, so the restore cost matches the paper's.
                while let Some((y, d)) = tree.ann(data.point(p as usize), 2.0) {
                    if d > stop {
                        break;
                    }
                    if d <= reach && y != p {
                        builder.add_edge(p, y);
                    }
                    tree.remove(y);
                    deleted.push(y);
                }
                for y in deleted {
                    tree.restore(y);
                }
            }
        }

        GNet {
            graph: builder.build(),
            params,
            hierarchy,
        }
    }

    /// The theoretical degree budget per level, `O((2φ)^λ)` (Fact 2.3 with
    /// aspect ratio `2φ`): returns `(8 * 2φ)^λ_est` for a given doubling
    /// dimension estimate — useful in experiments as a sanity ceiling.
    pub fn degree_budget_per_level(&self, lambda: f64) -> f64 {
        (8.0 * 2.0 * self.params.phi).powf(lambda)
    }

    /// A **certified** budget for the Section 1.1 `query(p_start, q, Q)`
    /// wrapper: with `Q` set to this value, the budgeted query is guaranteed
    /// to return a `(1+ε)`-ANN from any start.
    ///
    /// Derivation: greedy reaches a `(1+ε)`-ANN within `h` iterations (the
    /// log-drop property, Section 2.3) and hop distances only descend
    /// afterwards; each iteration computes at most `max_out_degree`
    /// distances, plus one for the start vertex. This is the concrete
    /// instantiation of Theorem 1.1's `O((1/ε)^λ log² Δ)` bound on this
    /// dataset.
    pub fn certified_query_budget(&self) -> u64 {
        let h = self.hierarchy.h() as u64;
        let deg = self.graph.max_out_degree() as u64;
        1 + (h + 2) * deg.max(1)
    }
}

/// Ablation helper: `G_net`'s edge rule with an **arbitrary** reach factor
/// `phi` instead of the paper's `φ = 1 + 2^{η+1}` (Eq. 4), over a given
/// hierarchy. Used by the `exp_ablation_phi` experiment to probe how much of
/// the paper's constant is slack on concrete inputs: Lemma 2.2's proof needs
/// `φ ≥ 1 + 2^{η+1}`, but navigability on a given dataset may survive with a
/// smaller reach (fewer edges) — or break, which the navigability checker
/// then witnesses.
pub fn gnet_edges_with_phi<P: Sync, M: Metric<P> + Sync>(
    data: &Dataset<P, M>,
    hierarchy: &NetHierarchy,
    phi: f64,
) -> Graph {
    assert!(phi > 0.0);
    let n = data.len();
    let mut builder = GraphBuilder::new(n);
    for lvl in hierarchy.levels() {
        let reach = phi * lvl.radius;
        let per_point = centers_within_reach(data, &lvl.centers, reach);
        for (p, targets) in per_point.into_iter().enumerate() {
            for y in targets {
                builder.add_edge(p as u32, y);
            }
        }
    }
    builder.build()
}

/// `G_net` built over **independent** per-level greedy nets — the paper's
/// Eq. (2) verbatim, where each `Y_i` is just *some* `2^i`-net of `P` with
/// no relation between levels.
///
/// The default [`GNet`] uses a *nested* ladder (`Y_{i+1} ⊆ Y_i`), which is
/// also a valid instantiation of Eq. (2) but deduplicates edges whose target
/// center recurs across levels — often far below the `n log Δ` worst case on
/// benign data. With independent nets each level draws fresh centers, so the
/// `n log Δ` size behaviour of Theorem 1.1 (and the necessity shown by
/// Theorem 1.2(1)) is visible. The separation experiment (T1.3-sep) contrasts
/// both against the merged graph; DESIGN.md discusses the ablation.
///
/// Construction is quadratic (per-level greedy nets + full scans) — this
/// variant exists for fidelity and experiments, not speed.
#[derive(Debug, Clone)]
pub struct GNetIndependent {
    /// The proximity graph.
    pub graph: Graph,
    /// Parameters `(ε, η, φ)`.
    pub params: GNetParams,
    /// The per-level nets used: `(radius, centers)`, bottom-up.
    pub levels: Vec<(f64, Vec<u32>)>,
}

impl GNetIndependent {
    /// Builds over independent greedy nets at the standard radius ladder
    /// (top ≈ diameter, bottom < `d_min`).
    pub fn build<P: Sync, M: Metric<P> + Sync>(data: &Dataset<P, M>, epsilon: f64) -> Self {
        // Reuse the fast hierarchy only to learn the radius ladder; the nets
        // themselves are drawn independently per level.
        let ladder = NetHierarchy::build(data);
        let levels =
            pg_nets::independent_hierarchy(data, ladder.top_radius(), ladder.bottom_radius());
        Self::build_on(data, epsilon, levels)
    }

    /// Builds over the given `(radius, centers)` levels (each must be a
    /// valid `radius`-net of the whole dataset).
    pub fn build_on<P: Sync, M: Metric<P> + Sync>(
        data: &Dataset<P, M>,
        epsilon: f64,
        levels: Vec<(f64, Vec<u32>)>,
    ) -> Self {
        let params = GNetParams::new(epsilon);
        let n = data.len();
        let mut builder = GraphBuilder::new(n);
        for (radius, centers) in &levels {
            let reach = params.phi * radius;
            let per_point = centers_within_reach(data, centers, reach);
            for (p, targets) in per_point.into_iter().enumerate() {
                for y in targets {
                    builder.add_edge(p as u32, y);
                }
            }
        }
        GNetIndependent {
            graph: builder.build(),
            params,
            levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::navigability::{check_navigable, check_pg_exhaustive, Starts};
    use pg_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset<Vec<f64>, Euclidean> {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::new(
            (0..n)
                .map(|_| (0..d).map(|_| rng.random_range(0.0..50.0)).collect())
                .collect(),
            Euclidean,
        )
    }

    fn random_queries(m: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| (0..d).map(|_| rng.random_range(-10.0..60.0)).collect())
            .collect()
    }

    #[test]
    fn fast_and_naive_agree() {
        let ds = random_dataset(120, 2, 1);
        let h = NetHierarchy::build(&ds);
        let fast = GNet::build_fast_on(&ds, 1.0, h.clone());
        let naive = GNet::build_naive_on(&ds, 1.0, h);
        assert_eq!(fast.graph, naive.graph, "edge sets must be identical");
    }

    #[test]
    fn parallel_build_is_thread_count_invariant() {
        // The sharded candidate generation must produce the same graph as
        // the single-threaded run, bit for bit — for both builders.
        let ds = random_dataset(140, 2, 12);
        let h = NetHierarchy::build(&ds);
        let fast1 = rayon::with_threads(1, || GNet::build_fast_on(&ds, 1.0, h.clone()));
        let naive1 = rayon::with_threads(1, || GNet::build_naive_on(&ds, 1.0, h.clone()));
        for threads in [2, 4, 7] {
            let fast_t = rayon::with_threads(threads, || GNet::build_fast_on(&ds, 1.0, h.clone()));
            let naive_t =
                rayon::with_threads(threads, || GNet::build_naive_on(&ds, 1.0, h.clone()));
            assert_eq!(
                fast1.graph, fast_t.graph,
                "fast diverged at {threads} threads"
            );
            assert_eq!(
                naive1.graph, naive_t.graph,
                "naive diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn covertree_path_agrees_with_naive() {
        let ds = random_dataset(80, 2, 2);
        let h = NetHierarchy::build(&ds);
        let ct = GNet::build_covertree_on(&ds, 1.0, h.clone());
        let naive = GNet::build_naive_on(&ds, 1.0, h);
        assert_eq!(ct.graph, naive.graph, "Section 2.4 path must match");
    }

    #[test]
    fn gnet_is_navigable_and_a_pg_eps_one() {
        let ds = random_dataset(100, 2, 3);
        let g = GNet::build(&ds, 1.0);
        let queries = random_queries(20, 2, 30);
        check_navigable(&g.graph, &ds, &queries, 1.0).unwrap();
        check_pg_exhaustive(&g.graph, &ds, &queries, 1.0, Starts::Stride(7)).unwrap();
    }

    #[test]
    fn gnet_is_navigable_small_epsilon() {
        let ds = random_dataset(60, 2, 4);
        let g = GNet::build(&ds, 0.25);
        let queries = random_queries(15, 2, 31);
        check_navigable(&g.graph, &ds, &queries, 0.25).unwrap();
        check_pg_exhaustive(&g.graph, &ds, &queries, 0.25, Starts::All).unwrap();
    }

    #[test]
    fn every_vertex_has_an_out_edge() {
        // Proposition 2.1.
        let ds = random_dataset(150, 3, 5);
        let g = GNet::build(&ds, 1.0);
        assert_eq!(g.graph.sink_count(), 0);
    }

    #[test]
    fn greedy_hop_count_is_bounded_by_h_plus_one() {
        // Section 2.3: after at most h iterations the hop vertex is a
        // (1+ε)-ANN; the walk can continue but hops strictly descend, and on
        // G_net the total trace stays O(h) in practice. We assert the proven
        // part: the number of hops until the first (1+ε)-ANN is <= h + 1.
        let ds = random_dataset(200, 2, 6);
        let g = GNet::build(&ds, 1.0);
        let h = g.hierarchy.h();
        let queries = random_queries(10, 2, 32);
        for q in &queries {
            let (_, nn) = ds.nearest_brute(q);
            let out = crate::search::greedy(&g.graph, &ds, 0, q);
            let first_ann = out
                .hops
                .iter()
                .position(|&v| ds.dist_to(v as usize, q) <= 2.0 * nn + 1e-12)
                .expect("greedy must reach a 2-ANN");
            assert!(
                first_ann <= h + 1,
                "first (1+ε)-ANN after {first_ann} hops, h = {h}"
            );
        }
    }

    #[test]
    fn certified_budget_always_suffices() {
        let ds = random_dataset(150, 2, 9);
        let g = GNet::build(&ds, 1.0);
        let budget = g.certified_query_budget();
        let queries = random_queries(15, 2, 34);
        for (i, q) in queries.iter().enumerate() {
            let start = ((i * 31) % 150) as u32;
            let out = crate::search::query(&g.graph, &ds, start, q, budget);
            let (_, exact) = ds.nearest_brute(q);
            assert!(
                out.result_dist <= 2.0 * exact + 1e-9,
                "budgeted query broke the guarantee at budget {budget}"
            );
        }
    }

    #[test]
    fn independent_nets_variant_is_also_a_pg() {
        let ds = random_dataset(70, 2, 8);
        let g = GNetIndependent::build(&ds, 1.0);
        let queries = random_queries(12, 2, 33);
        check_navigable(&g.graph, &ds, &queries, 1.0).unwrap();
        check_pg_exhaustive(&g.graph, &ds, &queries, 1.0, Starts::All).unwrap();
        assert_eq!(g.graph.sink_count(), 0);
    }

    #[test]
    fn independent_nets_never_smaller_than_nested_on_spread_data() {
        // The nested ladder's cross-level dedup only removes edges.
        let mut pts = Vec::new();
        for j in 0..10 {
            for k in 0..8 {
                pts.push(vec![
                    (4.0f64).powi(j) + k as f64 * 0.05,
                    (k % 3) as f64 * 0.05,
                ]);
            }
        }
        let ds = Dataset::new(pts, Euclidean);
        let nested = GNet::build_fast(&ds, 1.0);
        let indep = GNetIndependent::build(&ds, 1.0);
        assert!(
            indep.graph.edge_count() >= nested.graph.edge_count(),
            "independent {} vs nested {}",
            indep.graph.edge_count(),
            nested.graph.edge_count()
        );
    }

    #[test]
    fn data_points_as_queries_find_themselves() {
        let ds = random_dataset(80, 2, 7);
        let g = GNet::build(&ds, 1.0);
        for p in (0..80u32).step_by(9) {
            let out = crate::search::greedy(&g.graph, &ds, (p + 40) % 80, ds.point(p as usize));
            assert_eq!(out.result, p, "greedy must land exactly on the data point");
            assert_eq!(out.result_dist, 0.0);
        }
    }
}
