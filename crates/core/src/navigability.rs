//! Navigability and proximity-graph checkers (Section 2.2, Fact 2.1).
//!
//! A graph `G` is **(1+ε)-navigable** when for every data point `p` and
//! every query `q`, either `p` is a `(1+ε)`-ANN of `q`, or `p` has an
//! out-neighbor strictly closer to `q`. Fact 2.1: `G` is a `(1+ε)`-PG iff it
//! is `(1+ε)`-navigable.
//!
//! Both directions are exercised here: [`check_navigable`] verifies the
//! condition directly (one pass over vertices and edges per query), and
//! [`check_pg_exhaustive`] runs `greedy` from every start vertex and checks
//! the answer — the two must agree, which integration tests assert.

use pg_metric::{Dataset, Metric};

use crate::graph::Graph;
use crate::search::greedy;

/// A witness that a graph is not `(1+ε)`-navigable (or not a `(1+ε)`-PG).
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index of the offending query in the supplied query slice.
    pub query_idx: usize,
    /// The stuck data point: not a `(1+ε)`-ANN yet no strictly closer
    /// out-neighbor (for navigability), or the greedy start that produced a
    /// wrong answer (for the exhaustive check).
    pub point: u32,
    /// Distance from `point` (or the returned vertex) to the query.
    pub dist: f64,
    /// The exact nearest-neighbor distance for this query.
    pub nn_dist: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query #{}: point {} at distance {} (NN distance {})",
            self.query_idx, self.point, self.dist, self.nn_dist
        )
    }
}

/// Checks `(1+ε)`-navigability of `graph` against the given query points
/// (Section 2.2 definition). Cost per query: `n` distance evaluations plus
/// one pass over the edges.
///
/// Returns the first violation found, or `Ok(())`.
pub fn check_navigable<P, M: Metric<P>>(
    graph: &Graph,
    data: &Dataset<P, M>,
    queries: &[P],
    epsilon: f64,
) -> Result<(), Violation> {
    assert_eq!(graph.n(), data.len(), "graph/dataset size mismatch");
    for (qi, q) in queries.iter().enumerate() {
        let dists: Vec<f64> = (0..data.len()).map(|i| data.dist_to(i, q)).collect();
        let nn_dist = dists.iter().copied().fold(f64::INFINITY, f64::min);
        let threshold = (1.0 + epsilon) * nn_dist;
        'points: for p in 0..data.len() {
            if dists[p] <= threshold {
                continue; // p is a (1+ε)-ANN of q.
            }
            for &nb in graph.neighbors(p as u32) {
                if dists[nb as usize] < dists[p] {
                    continue 'points; // strictly closer out-neighbor.
                }
            }
            return Err(Violation {
                query_idx: qi,
                point: p as u32,
                dist: dists[p],
                nn_dist,
            });
        }
    }
    Ok(())
}

/// Which start vertices [`check_pg_exhaustive`] should try.
#[derive(Debug, Clone, Copy)]
pub enum Starts {
    /// Every data point — the paper's quantifier ("any data point
    /// `p_start ∈ P`"). `O(n)` greedy runs per query.
    All,
    /// A fixed stride sample of start vertices (cheaper; still adversarial
    /// enough for larger instances).
    Stride(usize),
}

/// Checks the `(1+ε)`-PG property operationally: for each query, runs the
/// Section 1.1 `greedy` from the selected start vertices and verifies the
/// returned point is a `(1+ε)`-ANN.
pub fn check_pg_exhaustive<P, M: Metric<P>>(
    graph: &Graph,
    data: &Dataset<P, M>,
    queries: &[P],
    epsilon: f64,
    starts: Starts,
) -> Result<(), Violation> {
    assert_eq!(graph.n(), data.len(), "graph/dataset size mismatch");
    let stride = match starts {
        Starts::All => 1,
        Starts::Stride(s) => s.max(1),
    };
    for (qi, q) in queries.iter().enumerate() {
        let (_, nn_dist) = data.nearest_brute(q);
        let threshold = (1.0 + epsilon) * nn_dist + 1e-12 * (1.0 + nn_dist);
        let mut s = 0usize;
        while s < data.len() {
            let out = greedy(graph, data, s as u32, q);
            if out.result_dist > threshold {
                return Err(Violation {
                    query_idx: qi,
                    point: s as u32,
                    dist: out.result_dist,
                    nn_dist,
                });
            }
            s += stride;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::Euclidean;

    fn line_dataset(n: usize) -> Dataset<Vec<f64>, Euclidean> {
        Dataset::new((0..n).map(|i| vec![i as f64]).collect(), Euclidean)
    }

    fn path_graph(n: usize) -> Graph {
        Graph::from_adjacency(
            (0..n)
                .map(|v| {
                    let mut a = Vec::new();
                    if v > 0 {
                        a.push(v as u32 - 1);
                    }
                    if v + 1 < n {
                        a.push(v as u32 + 1);
                    }
                    a
                })
                .collect(),
        )
    }

    #[test]
    fn path_graph_is_navigable_on_the_line() {
        let ds = line_dataset(12);
        let g = path_graph(12);
        let queries: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.45 - 1.0]).collect();
        check_navigable(&g, &ds, &queries, 0.5).unwrap();
        check_pg_exhaustive(&g, &ds, &queries, 0.5, Starts::All).unwrap();
    }

    #[test]
    fn complete_graph_is_a_pg_for_any_epsilon() {
        let ds = line_dataset(9);
        let g = Graph::complete(9);
        let queries: Vec<Vec<f64>> = vec![vec![-3.0], vec![4.2], vec![100.0]];
        check_navigable(&g, &ds, &queries, 0.01).unwrap();
        check_pg_exhaustive(&g, &ds, &queries, 0.01, Starts::All).unwrap();
    }

    #[test]
    fn broken_path_is_detected_by_both_checkers() {
        let ds = line_dataset(10);
        // Remove the edge 4 -> 5: from the left half, greedy can no longer
        // reach points near 9.
        let g = path_graph(10).without_edge(4, 5);
        let queries: Vec<Vec<f64>> = vec![vec![9.0]];
        let nav = check_navigable(&g, &ds, &queries, 0.5);
        assert!(nav.is_err());
        assert_eq!(nav.unwrap_err().point, 4);
        let ex = check_pg_exhaustive(&g, &ds, &queries, 0.5, Starts::All);
        assert!(ex.is_err());
    }

    #[test]
    fn empty_graph_is_navigable_only_for_self_queries() {
        let ds = line_dataset(5);
        let g = Graph::empty(5);
        // Query far from all points: every point except the nearest is stuck.
        let err = check_navigable(&g, &ds, &[vec![0.0]], 0.1).unwrap_err();
        assert!(err.dist > err.nn_dist);
    }

    #[test]
    fn stride_sampling_still_detects_breaks() {
        let ds = line_dataset(40);
        let g = path_graph(40).without_edge(20, 21);
        let res = check_pg_exhaustive(&g, &ds, &[vec![39.0]], 0.5, Starts::Stride(7));
        assert!(res.is_err());
    }

    #[test]
    fn epsilon_slack_tolerates_approximate_answers() {
        let ds = line_dataset(4);
        // Star from every vertex to vertex 0 only: greedy ends at 0 or at a
        // vertex closer than 0. For a query at 0.6, vertex 1 is the NN
        // (d = 0.4) and vertex 0 has d = 0.6 = 1.5 * 0.4: a 2-ANN.
        let g = Graph::from_adjacency(vec![vec![], vec![0], vec![0], vec![0]]);
        let q = vec![0.6];
        assert!(check_pg_exhaustive(&g, &ds, std::slice::from_ref(&q), 1.0, Starts::All).is_ok());
        // But not a 1.1-ANN.
        assert!(check_pg_exhaustive(&g, &ds, &[q], 0.1, Starts::All).is_err());
    }
}
