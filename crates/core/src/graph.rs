//! Simple directed graphs over dataset point ids, stored in compressed
//! sparse row (CSR) form.
//!
//! Every proximity-graph variant in this workspace (`G_net`, θ-graphs, the
//! merged graph, the baselines) produces a [`Graph`]; the `greedy` routine of
//! Section 1.1 and the navigability checker of Fact 2.1 consume one.

/// An immutable simple directed graph on vertices `0..n` (dataset ids).
///
/// Adjacency lists are sorted and deduplicated; self-loops are removed at
/// construction (the paper's graphs are simple).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Graph {
    /// Builds from per-vertex adjacency lists. Lists are sorted, duplicate
    /// edges and self-loops dropped.
    pub fn from_adjacency(adj: Vec<Vec<u32>>) -> Self {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for (v, mut list) in adj.into_iter().enumerate() {
            list.sort_unstable();
            list.dedup();
            list.retain(|&t| t as usize != v);
            for &t in &list {
                assert!((t as usize) < n, "edge target {t} out of range (n = {n})");
            }
            targets.extend_from_slice(&list);
            offsets.push(targets.len());
        }
        Graph { offsets, targets }
    }

    /// Builds from adjacency lists that are **already sorted ascending,
    /// duplicate-free and self-loop-free** — the CSR arrays are assembled
    /// directly, skipping the per-list sort + dedup of
    /// [`Graph::from_adjacency`]. The precondition is validated with a
    /// single linear scan (panicking on violation), so this is `O(E)`
    /// instead of `O(E log E)`.
    ///
    /// This is the checked public entry point for callers that already hold
    /// canonical lists (e.g. a deserialized index). The in-crate hot paths
    /// that produce canonical lists ([`Graph::complete`],
    /// [`Graph::without_edge`], [`Graph::union`]) go one step further and
    /// emit the CSR arrays without materializing per-vertex `Vec`s at all.
    pub fn from_sorted_adjacency(adj: Vec<Vec<u32>>) -> Self {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(adj.iter().map(Vec::len).sum());
        offsets.push(0);
        for (v, list) in adj.into_iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &t in &list {
                assert!((t as usize) < n, "edge target {t} out of range (n = {n})");
                assert!(t as usize != v, "self-loop ({v}, {t}) in sorted adjacency");
                assert!(
                    prev.is_none_or(|p| p < t),
                    "adjacency of {v} not strictly ascending at target {t}"
                );
                prev = Some(t);
            }
            targets.extend_from_slice(&list);
            offsets.push(targets.len());
        }
        Graph { offsets, targets }
    }

    /// Rebuilds a graph from raw CSR arrays, validating every invariant the
    /// panicking constructors assert — the deserialization entry point
    /// (`pg_store` snapshots carry exactly these arrays). Untrusted input
    /// gets a typed rejection instead of a panic: offsets must start at 0,
    /// be non-decreasing and end at `targets.len()`, and every adjacency
    /// row must be strictly ascending, self-loop-free and in range.
    pub fn try_from_csr(offsets: Vec<usize>, targets: Vec<u32>) -> Result<Graph, String> {
        let n = match offsets.len().checked_sub(1) {
            Some(n) => n,
            None => return Err("offsets array is empty".into()),
        };
        if offsets[0] != 0 {
            return Err(format!("offsets must start at 0, found {}", offsets[0]));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be non-decreasing".into());
        }
        if offsets[n] != targets.len() {
            return Err(format!(
                "final offset {} does not match edge count {}",
                offsets[n],
                targets.len()
            ));
        }
        for v in 0..n {
            let row = &targets[offsets[v]..offsets[v + 1]];
            let mut prev: Option<u32> = None;
            for &t in row {
                if t as usize >= n {
                    return Err(format!("edge target {t} out of range (n = {n})"));
                }
                if t as usize == v {
                    return Err(format!("self-loop ({v}, {t})"));
                }
                if prev.is_some_and(|p| p >= t) {
                    return Err(format!("adjacency of {v} not strictly ascending at {t}"));
                }
                prev = Some(t);
            }
        }
        Ok(Graph { offsets, targets })
    }

    /// The raw CSR row-offset array (length `n + 1`) — the serialization
    /// counterpart of [`Graph::try_from_csr`].
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw CSR target array (all adjacency rows concatenated, each
    /// sorted ascending) — the serialization counterpart of
    /// [`Graph::try_from_csr`].
    pub fn csr_targets(&self) -> &[u32] {
        &self.targets
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// The complete directed graph on `n` vertices — the trivial
    /// `(1+ε)`-proximity graph of Section 1.1 with `Θ(n^2)` edges. The CSR
    /// arrays are emitted directly (each list is ascending by construction),
    /// avoiding the `O(n^2 log n)` sort a round-trip through
    /// [`Graph::from_adjacency`] would pay.
    pub fn complete(n: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)));
        offsets.push(0);
        for v in 0..n as u32 {
            targets.extend((0..n as u32).filter(|&t| t != v));
            offsets.push(targets.len());
        }
        Graph { offsets, targets }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `v`, ascending by id.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum out-degree over all vertices.
    pub fn max_out_degree(&self) -> usize {
        (0..self.n())
            .map(|v| self.out_degree(v as u32))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree (edges per vertex).
    pub fn avg_out_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.n() as f64
        }
    }

    /// Whether the directed edge `(u, v)` exists (binary search).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// A copy of the graph with the single directed edge `(u, v)` removed —
    /// used for failure injection in the lower-bound experiments. A direct
    /// CSR copy (the stored lists are already canonical): `O(E)`, no re-sort.
    pub fn without_edge(&self, u: u32, v: u32) -> Graph {
        let pos = match self.neighbors(u).binary_search(&v) {
            Ok(pos) => self.offsets[u as usize] + pos,
            Err(_) => return self.clone(), // edge absent: plain copy
        };
        let mut targets = Vec::with_capacity(self.targets.len() - 1);
        targets.extend_from_slice(&self.targets[..pos]);
        targets.extend_from_slice(&self.targets[pos + 1..]);
        let offsets = self
            .offsets
            .iter()
            .enumerate()
            .map(|(w, &o)| if w > u as usize { o - 1 } else { o })
            .collect();
        Graph { offsets, targets }
    }

    /// Vertex-wise union of two graphs on the same vertex set — the merge
    /// operation of Section 5 ("the out-edge set of each point `p` in `G` is
    /// the union of those in `G'_net` and `G_geo`"). Per vertex, the two
    /// stored lists are already sorted, so they are merged directly into the
    /// new CSR arrays: `O(E)` total instead of sort-based `O(E log E)`.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(self.n(), other.n(), "vertex sets must match");
        let mut offsets = Vec::with_capacity(self.n() + 1);
        let mut targets = Vec::with_capacity(self.edge_count() + other.edge_count());
        offsets.push(0);
        for v in 0..self.n() as u32 {
            let (a, b) = (self.neighbors(v), other.neighbors(v));
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => {
                        targets.push(a[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        targets.push(b[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        targets.push(a[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            targets.extend_from_slice(&a[i..]);
            targets.extend_from_slice(&b[j..]);
            offsets.push(targets.len());
        }
        Graph { offsets, targets }
    }

    /// Iterates all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n() as u32).flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Number of vertices with out-degree zero (a healthy proximity graph
    /// has none; see Proposition 2.1).
    pub fn sink_count(&self) -> usize {
        (0..self.n() as u32)
            .filter(|&v| self.out_degree(v) == 0)
            .count()
    }

    /// Out-degree histogram: `hist[d]` = number of vertices with out-degree
    /// `d`. Useful for size diagnostics (the Fact 2.3 packing bound shapes
    /// the tail).
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_out_degree() + 1];
        for v in 0..self.n() as u32 {
            hist[self.out_degree(v)] += 1;
        }
        hist
    }

    /// Number of vertices reachable from `start` by directed edges
    /// (including `start`). A `(1+ε)`-PG need not be strongly connected, but
    /// greedy must be able to *descend* from anywhere, so reachability
    /// diagnostics help debug broken graphs.
    pub fn reachable_count(&self, start: u32) -> usize {
        let mut seen = vec![false; self.n()];
        let mut stack = vec![start];
        seen[start as usize] = true;
        let mut count = 0usize;
        while let Some(v) = stack.pop() {
            count += 1;
            for &t in self.neighbors(v) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        count
    }

    /// Approximate in-memory footprint of the CSR representation in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<u32>()
    }
}

/// Incremental adjacency builder.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    adj: Vec<Vec<u32>>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            adj: vec![Vec::new(); n],
        }
    }

    /// Adds the directed edge `(u, v)`. Duplicates and self-loops are
    /// filtered at [`GraphBuilder::build`] time.
    #[inline]
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.adj[u as usize].push(v);
    }

    /// Finalizes into a [`Graph`].
    pub fn build(self) -> Graph {
        Graph::from_adjacency(self.adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_adjacency_sorts_dedups_drops_self_loops() {
        let g = Graph::from_adjacency(vec![vec![2, 1, 2, 0], vec![], vec![0]]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn from_sorted_adjacency_matches_from_adjacency() {
        let lists = vec![vec![1, 2, 4], vec![0, 3], vec![], vec![0, 1, 2, 4], vec![3]];
        let a = Graph::from_sorted_adjacency(lists.clone());
        let b = Graph::from_adjacency(lists);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not strictly ascending")]
    fn from_sorted_adjacency_rejects_unsorted_lists() {
        let _ = Graph::from_sorted_adjacency(vec![vec![2, 1], vec![], vec![]]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_sorted_adjacency_rejects_self_loops() {
        let _ = Graph::from_sorted_adjacency(vec![vec![0, 1], vec![]]);
    }

    #[test]
    #[should_panic(expected = "not strictly ascending")]
    fn from_sorted_adjacency_rejects_duplicates() {
        let _ = Graph::from_sorted_adjacency(vec![vec![1, 1], vec![0]]);
    }

    #[test]
    fn try_from_csr_round_trips_and_rejects_corruption() {
        let g = Graph::from_adjacency(vec![vec![1, 2], vec![2], vec![0]]);
        let ok = Graph::try_from_csr(g.csr_offsets().to_vec(), g.csr_targets().to_vec()).unwrap();
        assert_eq!(ok, g);

        let (o, t) = (g.csr_offsets().to_vec(), g.csr_targets().to_vec());
        assert!(Graph::try_from_csr(Vec::new(), Vec::new()).is_err());
        // Offsets not starting at zero.
        let mut bad = o.clone();
        bad[0] = 1;
        assert!(Graph::try_from_csr(bad, t.clone()).is_err());
        // Decreasing offsets.
        let mut bad = o.clone();
        bad[1] = 4;
        assert!(Graph::try_from_csr(bad, t.clone()).is_err());
        // Final offset disagrees with the edge count.
        let mut bad = o.clone();
        *bad.last_mut().unwrap() = 2;
        assert!(Graph::try_from_csr(bad, t.clone()).is_err());
        // Out-of-range target, self-loop, unsorted row.
        let mut bad = t.clone();
        bad[0] = 9;
        assert!(Graph::try_from_csr(o.clone(), bad).is_err());
        let mut bad = t.clone();
        bad[0] = 0; // row 0 becomes [0, 2]: self-loop
        assert!(Graph::try_from_csr(o.clone(), bad).is_err());
        let mut bad = t.clone();
        bad.swap(0, 1); // row 0 becomes [2, 1]: not ascending
        assert!(Graph::try_from_csr(o, bad).is_err());
    }

    #[test]
    fn complete_direct_csr_matches_the_adjacency_path() {
        for n in [0, 1, 2, 7, 20] {
            let direct = Graph::complete(n);
            let via_lists = Graph::from_adjacency(
                (0..n)
                    .map(|v| (0..n as u32).filter(|&t| t as usize != v).collect())
                    .collect(),
            );
            assert_eq!(direct, via_lists, "mismatch at n = {n}");
        }
    }

    #[test]
    fn complete_graph_has_n_times_n_minus_one_edges() {
        let g = Graph::complete(7);
        assert_eq!(g.edge_count(), 42);
        assert_eq!(g.max_out_degree(), 6);
        assert_eq!(g.sink_count(), 0);
    }

    #[test]
    fn has_edge_and_without_edge() {
        let g = Graph::from_adjacency(vec![vec![1, 2], vec![2], vec![]]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        let g2 = g.without_edge(0, 1);
        assert!(!g2.has_edge(0, 1));
        assert!(g2.has_edge(0, 2));
        assert_eq!(g2.edge_count(), g.edge_count() - 1);
    }

    #[test]
    fn union_merges_out_edges() {
        let a = Graph::from_adjacency(vec![vec![1], vec![], vec![0]]);
        let b = Graph::from_adjacency(vec![vec![2], vec![0], vec![0]]);
        let u = a.union(&b);
        assert_eq!(u.neighbors(0), &[1, 2]);
        assert_eq!(u.neighbors(1), &[0]);
        assert_eq!(u.neighbors(2), &[0]);
    }

    #[test]
    fn without_edge_on_absent_edge_is_identity() {
        let g = Graph::from_adjacency(vec![vec![1, 2], vec![2], vec![]]);
        assert_eq!(g.without_edge(1, 0), g);
        assert_eq!(g.without_edge(2, 1), g);
    }

    #[test]
    fn union_merge_matches_sort_based_construction() {
        // The direct sorted-merge union must agree with the generic
        // from_adjacency path (concatenate, sort, dedup) on overlapping,
        // disjoint and empty lists alike.
        let a = Graph::from_adjacency(vec![vec![1, 3, 4], vec![0], vec![], vec![2, 4], vec![0]]);
        let b = Graph::from_adjacency(vec![vec![2, 3], vec![0, 2], vec![1], vec![], vec![0, 3]]);
        let direct = a.union(&b);
        let generic = Graph::from_adjacency(
            (0..a.n() as u32)
                .map(|v| {
                    let mut list = a.neighbors(v).to_vec();
                    list.extend_from_slice(b.neighbors(v));
                    list
                })
                .collect(),
        );
        assert_eq!(direct, generic);
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 3);
        b.add_edge(0, 3);
        b.add_edge(3, 0);
        b.add_edge(2, 2); // self-loop, dropped
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.sink_count(), 2); // vertices 1 and 2
    }

    #[test]
    fn edges_iterator_matches_counts() {
        let g = Graph::from_adjacency(vec![vec![1, 2], vec![2], vec![0]]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(2, 0)));
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = Graph::from_adjacency(vec![vec![1, 2], vec![2], vec![]]);
        let hist = g.degree_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 3);
        assert_eq!(hist[0], 1); // vertex 2
        assert_eq!(hist[1], 1); // vertex 1
        assert_eq!(hist[2], 1); // vertex 0
    }

    #[test]
    fn reachability_on_a_path() {
        let g = Graph::from_adjacency(vec![vec![1], vec![2], vec![3], vec![]]);
        assert_eq!(g.reachable_count(0), 4);
        assert_eq!(g.reachable_count(2), 2);
        assert_eq!(g.reachable_count(3), 1);
    }

    #[test]
    fn memory_accounting_scales_with_edges() {
        let small = Graph::complete(4);
        let big = Graph::complete(16);
        assert!(big.memory_bytes() > small.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_rejected() {
        let _ = Graph::from_adjacency(vec![vec![5]]);
    }
}
