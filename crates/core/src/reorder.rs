//! Cache-aware vertex-id reordering: a BFS/degree relabeling pass that
//! improves CSR locality without changing the graph.
//!
//! # Why
//!
//! [`Graph`] stores neighbor lists in one contiguous CSR array indexed by
//! vertex id. A beam search expands a frontier of *near* vertices — but ids
//! assigned in dataset order scatter near vertices across the whole array,
//! so every expansion is a cold cache line. Relabeling ids in BFS order
//! from the search entry point places vertices that are reached together
//! next to each other, so neighbor scans and the `visited` bitmap hit warm
//! lines. This is the classic reordering trick of production ANN systems
//! (and of sparse linear algebra before them: Cuthill–McKee).
//!
//! # Reorder is a relabeling — nothing else
//!
//! The pass produces a **bijection** old id ↔ new id and rewrites the graph
//! (and, at the engine level, the point array) under it. It never adds,
//! drops, or rewires an edge, so a search on the reordered index walks the
//! *isomorphic* graph: mapped back through the bijection, results, hops and
//! `dist_comps` are **bit-identical** for greedy, budgeted and beam search
//! on every algorithm family — pinned by `tests/reorder_parity.rs`. (The
//! one caveat: under *exact* surrogate ties, beam search breaks ties by id,
//! which follows the new labels. The parity suites therefore pin
//! tie-breaks explicitly on tie-free and tie-heavy workloads alike, through
//! the id mapping.)
//!
//! # Order construction
//!
//! [`bfs_degree_order`] runs BFS from the search entry vertex, visiting
//! each expanded vertex's out-neighbors in stored (ascending-id) order.
//! When the BFS exhausts a connected component, the next seed is the
//! unvisited vertex with the **highest out-degree** (ties: smallest old
//! id) — hubs of unreached components get dense labels first. The result
//! is deterministic: a pure function of the graph and entry.

use pg_metric::{Dataset, Metric};

use crate::engine::QueryEngine;
use crate::graph::Graph;

/// A bijection between old and new vertex ids, as produced by
/// [`bfs_degree_order`]. `order[new] = old` and `perm[old] = new`; the two
/// arrays are inverse permutations of `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reordering {
    /// `order[new_id] = old_id`.
    order: Vec<u32>,
    /// `perm[old_id] = new_id`.
    perm: Vec<u32>,
}

impl Reordering {
    /// Number of vertices the bijection covers.
    pub fn n(&self) -> usize {
        self.order.len()
    }

    /// The new label of old vertex `old`.
    ///
    /// # Panics
    /// If `old` is out of range.
    pub fn to_new(&self, old: u32) -> u32 {
        self.perm[old as usize]
    }

    /// The old label of new vertex `new`.
    ///
    /// # Panics
    /// If `new` is out of range.
    pub fn to_old(&self, new: u32) -> u32 {
        self.order[new as usize]
    }

    /// The full new→old map (`order[new] = old`).
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// The full old→new map (`perm[old] = new`).
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Rewrites `g` under the bijection: new vertex `v` gets the neighbors
    /// of old vertex `order[v]`, each mapped to its new label and re-sorted
    /// ascending (the CSR invariant). Pure relabeling: the edge multiset is
    /// preserved exactly.
    ///
    /// # Panics
    /// If `g.n()` differs from the bijection's vertex count.
    pub fn relabel_graph(&self, g: &Graph) -> Graph {
        assert_eq!(g.n(), self.n(), "graph size must match the reordering");
        let adjacency: Vec<Vec<u32>> = self
            .order
            .iter()
            .map(|&old| {
                let mut row: Vec<u32> = g
                    .neighbors(old)
                    .iter()
                    .map(|&nb| self.perm[nb as usize])
                    .collect();
                row.sort_unstable();
                row
            })
            .collect();
        Graph::from_sorted_adjacency(adjacency)
    }
}

/// Computes the BFS/degree relabeling of `graph` from `entry` (module
/// docs): `entry` becomes new vertex 0, BFS layers follow, and exhausted
/// components are re-seeded at the highest-out-degree unvisited vertex.
///
/// # Panics
/// If `entry` is out of range or the graph is empty.
pub fn bfs_degree_order(graph: &Graph, entry: u32) -> Reordering {
    use std::collections::VecDeque;

    let n = graph.n();
    assert!(n > 0, "cannot reorder an empty graph");
    assert!((entry as usize) < n, "entry vertex out of range");

    // Re-seed preference: out-degree descending, old id ascending.
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_by(|&a, &b| {
        graph
            .out_degree(b)
            .cmp(&graph.out_degree(a))
            .then(a.cmp(&b))
    });
    let mut next_seed = 0usize;

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    visited[entry as usize] = true;
    queue.push_back(entry);

    while order.len() < n {
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &nb in graph.neighbors(v) {
                if !visited[nb as usize] {
                    visited[nb as usize] = true;
                    queue.push_back(nb);
                }
            }
        }
        // BFS exhausted a component; seed the next one (if any).
        while next_seed < n && visited[seeds[next_seed] as usize] {
            next_seed += 1;
        }
        if let Some(&s) = seeds.get(next_seed) {
            visited[s as usize] = true;
            queue.push_back(s);
        }
    }

    let mut perm = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as u32;
    }
    Reordering { order, perm }
}

/// Mean absolute id gap `|u - v|` over all directed edges — the locality
/// statistic `exp_quant` reports before/after reordering (smaller means
/// neighbor scans stay closer in the CSR array). Returns 0 for an edgeless
/// graph.
pub fn mean_edge_gap(graph: &Graph) -> f64 {
    let mut total = 0.0f64;
    let mut edges = 0u64;
    for v in 0..graph.n() as u32 {
        for &nb in graph.neighbors(v) {
            total += f64::from(v.abs_diff(nb));
            edges += 1;
        }
    }
    if edges == 0 {
        0.0
    } else {
        total / edges as f64
    }
}

impl<P: Clone, M: Metric<P> + Clone> QueryEngine<P, M> {
    /// Rebuilds this engine with vertex ids relabeled by
    /// [`bfs_degree_order`] from `entry`: the graph is rewritten under the
    /// bijection and the point array is permuted to match (new vertex `v`
    /// owns the point of old vertex `order[v]`), so the engine answers the
    /// **isomorphic** index. Returns the reordered engine (same thread
    /// override) and the bijection for mapping ids between the two
    /// labelings. `entry` itself becomes vertex 0.
    pub fn reorder_bfs(&self, entry: u32) -> (QueryEngine<P, M>, Reordering) {
        let reordering = bfs_degree_order(self.graph(), entry);
        let graph = reordering.relabel_graph(self.graph());
        let points: Vec<P> = reordering
            .order
            .iter()
            .map(|&old| self.data().point(old as usize).clone())
            .collect();
        let data = Dataset::new(points, self.data().metric().clone());
        let threads = self.threads();
        (
            QueryEngine::new(graph, data).with_threads(threads),
            reordering,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnet::GNet;
    use crate::search::{beam_search_detailed, greedy};
    use pg_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A path graph whose vertex ids are scrambled by a fixed permutation:
    /// maximal locality damage with a known optimal relabeling.
    fn scrambled_path(n: usize, seed: u64) -> (Graph, Vec<u32>) {
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher–Yates on the compat shim.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            ids.swap(i, j);
        }
        let mut adj = vec![Vec::new(); n];
        for w in ids.windows(2) {
            adj[w[0] as usize].push(w[1]);
            adj[w[1] as usize].push(w[0]);
        }
        (Graph::from_adjacency(adj), ids)
    }

    #[test]
    fn order_and_perm_are_inverse_permutations() {
        let (g, ids) = scrambled_path(50, 1);
        let r = bfs_degree_order(&g, ids[0]);
        assert_eq!(r.n(), 50);
        for old in 0..50u32 {
            assert_eq!(r.to_old(r.to_new(old)), old);
        }
        let mut seen = [false; 50];
        for new in 0..50u32 {
            seen[r.to_old(new) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "order must be a permutation");
    }

    #[test]
    fn entry_becomes_vertex_zero_and_bfs_restores_path_locality() {
        let (g, ids) = scrambled_path(64, 2);
        let r = bfs_degree_order(&g, ids[0]);
        assert_eq!(r.to_new(ids[0]), 0);
        let relabeled = r.relabel_graph(&g);
        // BFS from an endpoint of a path visits it in line order: every
        // edge of the relabeled graph connects consecutive ids.
        assert_eq!(mean_edge_gap(&relabeled), 1.0);
        assert!(mean_edge_gap(&g) > 1.0, "scramble must damage locality");
    }

    #[test]
    fn relabeling_preserves_the_edge_multiset() {
        let (g, ids) = scrambled_path(40, 3);
        let r = bfs_degree_order(&g, ids[5]);
        let h = r.relabel_graph(&g);
        assert_eq!(h.n(), g.n());
        assert_eq!(h.edge_count(), g.edge_count());
        for v in 0..g.n() as u32 {
            let mut mapped: Vec<u32> = g.neighbors(v).iter().map(|&nb| r.to_new(nb)).collect();
            mapped.sort_unstable();
            assert_eq!(h.neighbors(r.to_new(v)), &mapped[..]);
        }
    }

    #[test]
    fn disconnected_components_are_seeded_by_degree() {
        // Component A: vertices 0-1 (degree 1 each). Component B: star at 4
        // (degree 3). BFS from 0 exhausts A; the re-seed must pick the hub.
        let g = Graph::from_adjacency(vec![
            vec![1],
            vec![0],
            vec![4],
            vec![4],
            vec![2, 3, 5],
            vec![4],
        ]);
        let r = bfs_degree_order(&g, 0);
        assert_eq!(r.to_new(0), 0);
        assert_eq!(r.to_new(1), 1);
        assert_eq!(r.to_new(4), 2, "hub (max degree) must seed component B");
    }

    #[test]
    fn engine_reorder_is_search_transparent() {
        let mut rng = StdRng::seed_from_u64(9);
        let points: Vec<Vec<f64>> = (0..150)
            .map(|_| vec![rng.random_range(0.0..30.0), rng.random_range(0.0..30.0)])
            .collect();
        let data = Dataset::new(points, Euclidean);
        let pg = GNet::build(&data, 1.0);
        let engine = QueryEngine::new(pg.graph, data);
        let (reordered, r) = engine.reorder_bfs(0);

        // Points moved with their ids.
        for new in 0..150u32 {
            assert_eq!(
                reordered.data().point(new as usize),
                engine.data().point(r.to_old(new) as usize)
            );
        }

        let q = vec![11.3, 7.9];
        let a = greedy(engine.graph(), engine.data(), 0, &q);
        let b = greedy(reordered.graph(), reordered.data(), r.to_new(0), &q);
        assert_eq!(r.to_old(b.result), a.result);
        assert_eq!(a.result_dist, b.result_dist);
        assert_eq!(a.dist_comps, b.dist_comps);

        let ab = beam_search_detailed(engine.graph(), engine.data(), 0, &q, 16, 4);
        let bb = beam_search_detailed(reordered.graph(), reordered.data(), r.to_new(0), &q, 16, 4);
        assert_eq!(ab.dist_comps, bb.dist_comps);
        assert_eq!(ab.expansions, bb.expansions);
        let mapped: Vec<(u32, f64)> = bb.results.iter().map(|&(v, d)| (r.to_old(v), d)).collect();
        assert_eq!(ab.results, mapped);
    }
}
