//! Cone systems covering `R^d` (the Yao-construction substitute of
//! Section 5.1).
//!
//! The θ-graph proofs use exactly two properties of the cone family `C`
//! (Section 5.1): every cone has **angular diameter at most θ**, and the
//! **union of the cones is `R^d`**. We realize such families as exact
//! partitions:
//!
//! * `d = 1`: the two half-lines;
//! * `d = 2`: `k = ceil(2π/θ)` half-open angular sectors `[j·w, (j+1)·w)`
//!   with `w = 2π/k <= θ`;
//! * `d >= 3`: *snap-to-grid* cells. Axis directions come from gridding the
//!   faces of the cube `[-1, 1]^d` with pitch `2/m`; a direction `v` is
//!   assigned to the axis obtained by projecting `v` onto its dominant cube
//!   face and rounding to the grid. The snap error satisfies
//!   `sin(angle(v, axis)) <= |w - u|_2 <= sqrt(d-1)/m`, so choosing
//!   `m = ceil(sqrt(d-1) / sin(θ/2))` keeps every direction within `θ/2` of
//!   its snapped axis — cells have angular diameter `<= θ` and partition
//!   `R^d \ {0}`. Crucially the snap is `O(d)` (no scan over the
//!   `O((1/θ)^{d-1})` axes), which keeps θ-graph construction cheap.
//!
//! This substitution is recorded in DESIGN.md; property tests sample random
//! directions and verify the covering and diameter bounds empirically.

use std::collections::HashMap;

/// A family of cones with apex at the origin partitioning `R^d \ {0}`, each
/// with angular diameter at most `theta`.
#[derive(Debug, Clone)]
pub struct ConeSet {
    dim: usize,
    theta: f64,
    kind: ConeKind,
}

#[derive(Debug, Clone)]
enum ConeKind {
    /// `d = 1`: cones 0 (`v > 0`) and 1 (`v < 0`).
    Line,
    /// `d = 2`: `k` equal sectors partitioning the plane.
    Sectors { k: usize },
    /// `d >= 3`: snap-to-grid cells (see module docs). `axes` are the unit
    /// snapped directions; `lookup` maps a grid key (face, sign, counters)
    /// to the axis index; `m` is the per-face grid resolution.
    GridSnap {
        axes: Vec<Vec<f64>>,
        lookup: HashMap<Vec<i32>, usize>,
        m: usize,
    },
}

impl ConeSet {
    /// Builds a covering cone family for dimension `dim` with angular
    /// diameter at most `theta` (radians, `0 < theta < π/2`).
    pub fn covering(dim: usize, theta: f64) -> Self {
        assert!(dim >= 1, "dimension must be at least 1");
        assert!(
            theta > 0.0 && theta < std::f64::consts::FRAC_PI_2,
            "theta must lie in (0, π/2), got {theta}"
        );
        let kind = match dim {
            1 => ConeKind::Line,
            2 => {
                let k = (2.0 * std::f64::consts::PI / theta).ceil() as usize;
                ConeKind::Sectors { k }
            }
            d => {
                let half = theta / 2.0;
                // sin(snap angle) <= sqrt(d-1)/m.
                let m = ((d as f64 - 1.0).sqrt() / half.sin()).ceil() as usize;
                let (axes, lookup) = grid_axes(d, m.max(1));
                ConeKind::GridSnap {
                    axes,
                    lookup,
                    m: m.max(1),
                }
            }
        };
        ConeSet { dim, theta, kind }
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The requested angular-diameter bound θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of cones — `O((1/θ)^{d-1})`.
    pub fn count(&self) -> usize {
        match &self.kind {
            ConeKind::Line => 2,
            ConeKind::Sectors { k } => *k,
            ConeKind::GridSnap { axes, .. } => axes.len(),
        }
    }

    /// The designated-ray direction (unit axis) of cone `c`.
    pub fn axis(&self, c: usize) -> Vec<f64> {
        match &self.kind {
            ConeKind::Line => vec![if c == 0 { 1.0 } else { -1.0 }],
            ConeKind::Sectors { k } => {
                let w = 2.0 * std::f64::consts::PI / *k as f64;
                let a = (c as f64 + 0.5) * w;
                vec![a.cos(), a.sin()]
            }
            ConeKind::GridSnap { axes, .. } => axes[c].clone(),
        }
    }

    /// The cone containing the direction `v`, or `None` for the zero vector.
    /// `O(d)` for every cone family (the families partition `R^d \ {0}`).
    pub fn cone_of(&self, v: &[f64]) -> Option<usize> {
        debug_assert_eq!(v.len(), self.dim);
        match &self.kind {
            ConeKind::Line => {
                if v[0] > 0.0 {
                    Some(0)
                } else if v[0] < 0.0 {
                    Some(1)
                } else {
                    None
                }
            }
            ConeKind::Sectors { k } => {
                if v[0] == 0.0 && v[1] == 0.0 {
                    return None;
                }
                let w = 2.0 * std::f64::consts::PI / *k as f64;
                let mut a = v[1].atan2(v[0]);
                if a < 0.0 {
                    a += 2.0 * std::f64::consts::PI;
                }
                let mut c = (a / w) as usize;
                if c >= *k {
                    c = *k - 1; // guard against a == 2π rounding
                }
                Some(c)
            }
            ConeKind::GridSnap { lookup, m, .. } => {
                let key = snap_key(v, *m)?;
                Some(*lookup.get(&key).expect("snap key always pre-registered"))
            }
        }
    }

    /// Projection of `v` onto the designated ray of cone `c` (signed).
    pub fn projection(&self, c: usize, v: &[f64]) -> f64 {
        match &self.kind {
            ConeKind::Line => {
                if c == 0 {
                    v[0]
                } else {
                    -v[0]
                }
            }
            ConeKind::Sectors { k } => {
                let w = 2.0 * std::f64::consts::PI / *k as f64;
                let a = (c as f64 + 0.5) * w;
                v[0] * a.cos() + v[1] * a.sin()
            }
            ConeKind::GridSnap { axes, .. } => dot(&axes[c], v),
        }
    }

    /// Angle (radians) between `v` and the axis of its own cone; the
    /// membership guarantee is `angle <= theta / 2`. Returns `None` for the
    /// zero vector.
    pub fn snap_angle(&self, v: &[f64]) -> Option<f64> {
        let c = self.cone_of(v)?;
        let a = self.axis(c);
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let cosang = (dot(&a, v) / norm).clamp(-1.0, 1.0);
        Some(cosang.acos())
    }

    /// Empirical covering check: samples `samples` random directions and
    /// returns the maximum angle (radians) between a direction and the axis
    /// of the cone it is assigned to. Must be at most `theta / 2`; exposed
    /// for property tests.
    pub fn covering_gap(&self, samples: usize, seed: u64) -> f64 {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut worst: f64 = 0.0;
        for _ in 0..samples {
            // Gaussian direction via Box–Muller for rotation invariance.
            let v: Vec<f64> = (0..self.dim)
                .map(|_| {
                    let u1: f64 = rng.random_range(1e-12..1.0);
                    let u2: f64 = rng.random_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                })
                .collect();
            if let Some(a) = self.snap_angle(&v) {
                worst = worst.max(a);
            }
        }
        worst
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Grid key of a direction: `[face, sign, g_1, ..., g_{d-1}]` where `face`
/// is the dominant coordinate (ties to the lowest index), `sign` its sign,
/// and `g_i` the rounded grid positions of the remaining coordinates after
/// normalizing the dominant one to ±1.
fn snap_key(v: &[f64], m: usize) -> Option<Vec<i32>> {
    let d = v.len();
    let mut face = 0usize;
    let mut best = v[0].abs();
    for (i, &x) in v.iter().enumerate().skip(1) {
        if x.abs() > best {
            best = x.abs();
            face = i;
        }
    }
    if best == 0.0 {
        return None;
    }
    let sign = if v[face] >= 0.0 { 1i32 } else { -1 };
    let mut key = Vec::with_capacity(d + 1);
    key.push(face as i32);
    key.push(sign);
    let denom = v[face].abs();
    for (i, &x) in v.iter().enumerate() {
        if i == face {
            continue;
        }
        // w = x / denom ∈ [-1, 1]; grid position round((w + 1) * m / 2).
        let w = (x / denom).clamp(-1.0, 1.0);
        let g = ((w + 1.0) * m as f64 / 2.0).round() as i32;
        key.push(g.clamp(0, m as i32));
    }
    Some(key)
}

/// All grid axes plus the key -> index lookup table.
#[allow(clippy::needless_range_loop)] // odometer-style reconstruction reads clearest indexed
fn grid_axes(d: usize, m: usize) -> (Vec<Vec<f64>>, HashMap<Vec<i32>, usize>) {
    let mut axes: Vec<Vec<f64>> = Vec::new();
    let mut lookup: HashMap<Vec<i32>, usize> = HashMap::new();
    for face in 0..d {
        for sign in [1i32, -1] {
            let mut counters = vec![0i32; d - 1];
            loop {
                // Reconstruct the (unnormalized) direction for this cell.
                let mut v = vec![0.0; d];
                v[face] = sign as f64;
                let mut vi = 0;
                for coord in 0..d {
                    if coord == face {
                        continue;
                    }
                    v[coord] = -1.0 + 2.0 * counters[vi] as f64 / m as f64;
                    vi += 1;
                }
                let mut key = Vec::with_capacity(d + 1);
                key.push(face as i32);
                key.push(sign);
                key.extend(counters.iter().copied());
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                let axis: Vec<f64> = v.iter().map(|x| x / norm).collect();
                let idx = axes.len();
                axes.push(axis);
                lookup.insert(key, idx);
                // Odometer.
                let mut carry = true;
                for c in counters.iter_mut() {
                    if carry {
                        *c += 1;
                        if *c > m as i32 {
                            *c = 0;
                        } else {
                            carry = false;
                        }
                    }
                }
                if carry {
                    break;
                }
            }
        }
    }
    (axes, lookup)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_cones() {
        let cs = ConeSet::covering(1, 0.5);
        assert_eq!(cs.count(), 2);
        assert_eq!(cs.cone_of(&[3.0]), Some(0));
        assert_eq!(cs.cone_of(&[-0.1]), Some(1));
        assert_eq!(cs.cone_of(&[0.0]), None);
        assert_eq!(cs.projection(0, &[3.0]), 3.0);
        assert_eq!(cs.projection(1, &[-2.0]), 2.0);
    }

    #[test]
    fn sector_count_matches_theta() {
        let cs = ConeSet::covering(2, 0.5);
        assert_eq!(
            cs.count(),
            (2.0 * std::f64::consts::PI / 0.5).ceil() as usize
        );
    }

    #[test]
    fn sectors_partition_every_direction() {
        let cs = ConeSet::covering(2, 0.7);
        for i in 0..360 {
            let a = i as f64 * std::f64::consts::PI / 180.0;
            let v = [a.cos() * 2.0, a.sin() * 2.0];
            assert!(cs.cone_of(&v).is_some(), "direction {i}° unassigned");
        }
    }

    #[test]
    fn sector_members_are_within_half_theta_of_axis() {
        let cs = ConeSet::covering(2, 0.6);
        for i in 0..720 {
            let a = i as f64 * std::f64::consts::PI / 360.0;
            let v = [a.cos(), a.sin()];
            let angle = cs.snap_angle(&v).unwrap();
            assert!(
                angle <= 0.3 + 1e-9,
                "direction at angle {a} is {angle} rad from its sector axis"
            );
        }
    }

    #[test]
    fn grid_snap_covers_3d() {
        let cs = ConeSet::covering(3, 0.6);
        let gap = cs.covering_gap(3000, 99);
        assert!(
            gap <= 0.3 + 1e-9,
            "covering gap {gap} exceeds theta/2 = 0.3"
        );
    }

    #[test]
    fn grid_snap_covers_4d() {
        let cs = ConeSet::covering(4, 0.9);
        let gap = cs.covering_gap(2000, 100);
        assert!(gap <= 0.45 + 1e-9, "covering gap {gap} exceeds 0.45");
    }

    #[test]
    fn grid_snap_covers_3d_small_theta() {
        let cs = ConeSet::covering(3, 0.2);
        let gap = cs.covering_gap(2000, 101);
        assert!(gap <= 0.1 + 1e-9, "covering gap {gap} exceeds 0.1");
    }

    #[test]
    fn snap_assignment_is_deterministic_and_consistent() {
        let cs = ConeSet::covering(3, 0.6);
        let v = [0.3, -0.7, 0.2];
        let c = cs.cone_of(&v).unwrap();
        // Same direction, different magnitude: same cone.
        let v2 = [0.6, -1.4, 0.4];
        assert_eq!(cs.cone_of(&v2), Some(c));
        // The projection onto the snapped axis is positive (half-angle < π/2).
        assert!(cs.projection(c, &v) > 0.0);
    }

    #[test]
    fn every_axis_is_unit_length() {
        let cs = ConeSet::covering(3, 0.5);
        for c in 0..cs.count() {
            let a = cs.axis(c);
            let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cone_count_scales_inversely_with_theta_2d() {
        let big = ConeSet::covering(2, 0.8).count();
        let small = ConeSet::covering(2, 0.2).count();
        assert!(
            small >= 3 * big,
            "expected ~4x more cones: {small} vs {big}"
        );
    }

    #[test]
    fn zero_vector_has_no_cone() {
        assert_eq!(ConeSet::covering(3, 0.5).cone_of(&[0.0, 0.0, 0.0]), None);
        assert_eq!(ConeSet::covering(2, 0.5).cone_of(&[0.0, 0.0]), None);
    }

    #[test]
    #[should_panic(expected = "theta must lie in")]
    fn theta_too_large_rejected() {
        let _ = ConeSet::covering(2, 2.0);
    }
}
