//! θ-graphs for Euclidean space (Section 5.1): cone systems and the
//! nearest-point-on-ray graph, the "small-but-slow" half of Theorem 1.3.

mod cones;
mod graph;

pub use cones::ConeSet;
pub use graph::ThetaGraph;
