//! The θ-graph of Section 5.1: for every point `p` and every non-empty cone
//! `C_p` (the cone translated to apex `p`), an edge to the
//! *nearest-point-on-ray* — the point of `P ∩ C_p` whose projection onto the
//! cone's designated ray is closest to `p`.
//!
//! Lemma 5.1: an `(ε/32)`-graph of `P` is a `(1+ε)`-proximity graph of `P`
//! under `L_2`. The graph has `O((1/θ)^{d-1} * n)` edges — crucially, **no
//! `log Δ` factor**, which is what powers the Euclidean separation of
//! Theorem 1.3.
//!
//! Constructions:
//!
//! * [`ThetaGraph::build_naive`] — one pass over all ordered pairs,
//!   assigning each to its cone (`O(n^2 d)`); the ground truth for every
//!   dimension and the default for `d >= 3` (substitute for the range-tree
//!   constructions \[5, 25\], which are near-linear but only matter for the
//!   `d = 2` construction-time experiments here);
//! * `d = 2` plane sweep — the classical `O(n log n)`-per-cone dominance
//!   sweep (Narasimhan–Smid style): after the shear `(X, Y) = (cross(r_lo,
//!   ·), -cross(r_hi, ·))`, membership of `q` in `p`'s translated sector
//!   becomes coordinate dominance, and the ray projection is proportional to
//!   `X + Y`, so a Fenwick tree over compressed `Y` answers "min `X + Y`
//!   among dominating points".

use pg_metric::{Dataset, Metric};

use crate::graph::{Graph, GraphBuilder};
use crate::theta::cones::ConeSet;

/// The θ-graph of a Euclidean dataset.
#[derive(Debug, Clone)]
pub struct ThetaGraph {
    /// The graph: one out-edge per non-empty cone per point.
    pub graph: Graph,
    /// Angular diameter bound θ.
    pub theta: f64,
    /// Number of cones used.
    pub cone_count: usize,
}

impl ThetaGraph {
    /// Builds a θ-graph with the fastest construction available for the
    /// dimension (trivial for `d = 1`, sweep for `d = 2`, pairwise scan for
    /// `d >= 3`).
    pub fn build<P: AsRef<[f64]>, M: Metric<P>>(data: &Dataset<P, M>, theta: f64) -> Self {
        let d = data.point(0).as_ref().len();
        let cones = ConeSet::covering(d, theta);
        let graph = match d {
            1 => build_1d(data),
            2 => build_sweep_2d(data, &cones),
            _ => build_pairwise(data, &cones),
        };
        ThetaGraph {
            graph,
            theta,
            cone_count: cones.count(),
        }
    }

    /// Ground-truth construction: one `O(n^2 d)` pass over ordered pairs.
    /// Used by tests to validate the fast paths (identical edge sets).
    pub fn build_naive<P: AsRef<[f64]>, M: Metric<P>>(data: &Dataset<P, M>, theta: f64) -> Self {
        let d = data.point(0).as_ref().len();
        let cones = ConeSet::covering(d, theta);
        ThetaGraph {
            graph: build_pairwise(data, &cones),
            theta,
            cone_count: cones.count(),
        }
    }

    /// The graph prescribed by Lemma 5.1 for a `(1+ε)`-PG: an
    /// `(ε/32)`-graph.
    pub fn build_for_pg<P: AsRef<[f64]>, M: Metric<P>>(data: &Dataset<P, M>, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0);
        Self::build(data, epsilon / 32.0)
    }
}

#[inline]
fn sub(a: &[f64], b: &[f64], out: &mut [f64]) {
    for ((o, x), y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x - y;
    }
}

/// Generic construction: stream all ordered pairs, snap each difference
/// vector to its cone, track the per-cone projection argmin.
fn build_pairwise<P: AsRef<[f64]>, M: Metric<P>>(data: &Dataset<P, M>, cones: &ConeSet) -> Graph {
    let n = data.len();
    let d = data.point(0).as_ref().len();
    let mut builder = GraphBuilder::new(n);
    let mut v = vec![0.0; d];
    // (projection, target) per cone for the current source point.
    let mut best: Vec<(f64, u32)> = Vec::new();
    for p in 0..n {
        best.clear();
        best.resize(cones.count(), (f64::INFINITY, u32::MAX));
        let pp = data.point(p).as_ref();
        for q in 0..n {
            if q == p {
                continue;
            }
            sub(data.point(q).as_ref(), pp, &mut v);
            let Some(c) = cones.cone_of(&v) else { continue };
            let proj = cones.projection(c, &v);
            let cand = (proj, q as u32);
            if cand < best[c] {
                best[c] = cand;
            }
        }
        for &(proj, target) in &best {
            if proj.is_finite() {
                builder.add_edge(p as u32, target);
            }
        }
    }
    builder.build()
}

/// `d = 1`: each point's two cones yield edges to its immediate left and
/// right neighbors on the line.
fn build_1d<P: AsRef<[f64]>, M: Metric<P>>(data: &Dataset<P, M>) -> Graph {
    let n = data.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        data.point(a as usize).as_ref()[0]
            .total_cmp(&data.point(b as usize).as_ref()[0])
            .then(a.cmp(&b))
    });
    let mut builder = GraphBuilder::new(n);
    for w in order.windows(2) {
        builder.add_edge(w[0], w[1]);
        builder.add_edge(w[1], w[0]);
    }
    builder.build()
}

/// Fenwick (binary indexed) tree for suffix minima of `(key, pid)` pairs.
struct SuffixMinFenwick {
    tree: Vec<(f64, u32)>,
}

impl SuffixMinFenwick {
    fn new(size: usize) -> Self {
        SuffixMinFenwick {
            tree: vec![(f64::INFINITY, u32::MAX); size + 1],
        }
    }

    /// Updates position `i` (0-based, already reversed so suffix queries
    /// become prefix queries) with a candidate minimum.
    fn update(&mut self, mut i: usize, val: (f64, u32)) {
        i += 1;
        while i < self.tree.len() {
            if val < self.tree[i] {
                self.tree[i] = val;
            }
            i += i & i.wrapping_neg();
        }
    }

    /// Minimum over positions `0..=i`.
    fn query(&self, mut i: usize) -> (f64, u32) {
        i += 1;
        let mut out = (f64::INFINITY, u32::MAX);
        while i > 0 {
            if self.tree[i] < out {
                out = self.tree[i];
            }
            i -= i & i.wrapping_neg();
        }
        out
    }
}

/// `d = 2` dominance sweep (see module docs).
fn build_sweep_2d<P: AsRef<[f64]>, M: Metric<P>>(data: &Dataset<P, M>, cones: &ConeSet) -> Graph {
    let n = data.len();
    let k = cones.count();
    let w = 2.0 * std::f64::consts::PI / k as f64;
    let mut builder = GraphBuilder::new(n);

    for c in 0..k {
        let a_lo = c as f64 * w;
        let a_hi = (c + 1) as f64 * w;
        let r_lo = [a_lo.cos(), a_lo.sin()];
        let r_hi = [a_hi.cos(), a_hi.sin()];
        // Shear coordinates: membership of q in p's sector becomes
        // X(q) >= X(p) && Y(q) > Y(p); the ray projection is
        // (X + Y) / (2 sin(w/2)).
        let xy: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let p = data.point(i).as_ref();
                let x = r_lo[0] * p[1] - r_lo[1] * p[0]; // cross(r_lo, p)
                let y = -(r_hi[0] * p[1] - r_hi[1] * p[0]); // -cross(r_hi, p)
                (x, y)
            })
            .collect();

        // Compress Y; reverse ranks so "Y strictly greater" becomes a prefix.
        let mut ys: Vec<f64> = xy.iter().map(|&(_, y)| y).collect();
        ys.sort_by(f64::total_cmp);
        ys.dedup();
        let rank_of = |y: f64| ys.partition_point(|&v| v < y); // index of y in ys
        let rev = |r: usize| ys.len() - 1 - r;

        // Sort ids by X descending (group ties together).
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            xy[b as usize]
                .0
                .total_cmp(&xy[a as usize].0)
                .then(a.cmp(&b))
        });

        let mut fen = SuffixMinFenwick::new(ys.len());
        let mut g = 0usize;
        while g < n {
            // Group of equal X.
            let x0 = xy[order[g] as usize].0;
            let mut e = g;
            while e < n && xy[order[e] as usize].0 == x0 {
                e += 1;
            }
            // Insert the whole group first (same-X points see each other).
            for &pid in &order[g..e] {
                let (x, y) = xy[pid as usize];
                fen.update(rev(rank_of(y)), (x + y, pid));
            }
            // Query each member: min X+Y among points with Y strictly
            // greater (prefix of reversed ranks, excluding own rank).
            for &pid in &order[g..e] {
                let (_, y) = xy[pid as usize];
                let r = rank_of(y);
                if r + 1 < ys.len() {
                    let (val, target) = fen.query(rev(r + 1));
                    if val.is_finite() {
                        builder.add_edge(pid, target);
                    }
                }
            }
            g = e;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::navigability::{check_navigable, check_pg_exhaustive, Starts};
    use pg_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset<Vec<f64>, Euclidean> {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::new(
            (0..n)
                .map(|_| (0..d).map(|_| rng.random_range(0.0..10.0)).collect())
                .collect(),
            Euclidean,
        )
    }

    #[test]
    fn sweep_matches_naive_2d() {
        for seed in [1u64, 2, 3] {
            let ds = random_dataset(150, 2, seed);
            let fast = ThetaGraph::build(&ds, 0.4);
            let naive = ThetaGraph::build_naive(&ds, 0.4);
            assert_eq!(fast.graph, naive.graph, "seed {seed}");
        }
    }

    #[test]
    fn sweep_matches_naive_2d_narrow_cones() {
        let ds = random_dataset(200, 2, 9);
        let fast = ThetaGraph::build(&ds, 0.1);
        let naive = ThetaGraph::build_naive(&ds, 0.1);
        assert_eq!(fast.graph, naive.graph);
    }

    #[test]
    fn one_dimensional_theta_graph_is_the_path() {
        let mut pts: Vec<Vec<f64>> = vec![vec![3.0], vec![0.0], vec![7.0], vec![1.5]];
        pts.sort_by(|a, b| a[0].total_cmp(&b[0]));
        let ds = Dataset::new(pts, Euclidean);
        let t = ThetaGraph::build(&ds, 0.3);
        // Sorted points 0..3; edges to immediate neighbors.
        assert!(t.graph.has_edge(0, 1));
        assert!(t.graph.has_edge(1, 0));
        assert!(t.graph.has_edge(1, 2));
        assert!(!t.graph.has_edge(0, 2));
    }

    #[test]
    fn one_d_matches_pairwise() {
        let ds = random_dataset(60, 1, 10);
        let fast = ThetaGraph::build(&ds, 0.3);
        let naive = ThetaGraph::build_naive(&ds, 0.3);
        assert_eq!(fast.graph, naive.graph);
    }

    #[test]
    fn out_degree_bounded_by_cone_count() {
        let ds = random_dataset(200, 2, 5);
        let t = ThetaGraph::build(&ds, 0.5);
        assert!(t.graph.max_out_degree() <= t.cone_count);
        let ds3 = random_dataset(150, 3, 5);
        let t3 = ThetaGraph::build(&ds3, 0.6);
        assert!(t3.graph.max_out_degree() <= t3.cone_count);
    }

    #[test]
    fn eps32_graph_is_a_proximity_graph_2d() {
        // Lemma 5.1 with the paper's constant: θ = ε/32 for ε = 1.
        let ds = random_dataset(60, 2, 6);
        let t = ThetaGraph::build_for_pg(&ds, 1.0);
        let mut rng = StdRng::seed_from_u64(60);
        let queries: Vec<Vec<f64>> = (0..15)
            .map(|_| (0..2).map(|_| rng.random_range(-2.0..12.0)).collect())
            .collect();
        check_navigable(&t.graph, &ds, &queries, 1.0).unwrap();
        check_pg_exhaustive(&t.graph, &ds, &queries, 1.0, Starts::Stride(7)).unwrap();
    }

    #[test]
    fn theta_graph_is_navigable_3d() {
        // 3-d cones via grid snap; θ = ε/8 is ample on random data while
        // keeping the test fast (the /32 constant is worst-case).
        let ds = random_dataset(80, 3, 7);
        let t = ThetaGraph::build(&ds, 1.0 / 8.0);
        let mut rng = StdRng::seed_from_u64(61);
        let queries: Vec<Vec<f64>> = (0..10)
            .map(|_| (0..3).map(|_| rng.random_range(-2.0..12.0)).collect())
            .collect();
        check_navigable(&t.graph, &ds, &queries, 1.0).unwrap();
    }

    #[test]
    fn coarser_theta_is_still_navigable_for_eps_one_in_practice() {
        // The /32 constant is worst-case; θ = ε/4 is ample on random data.
        let ds = random_dataset(120, 2, 7);
        let t = ThetaGraph::build(&ds, 0.25);
        let mut rng = StdRng::seed_from_u64(61);
        let queries: Vec<Vec<f64>> = (0..20)
            .map(|_| (0..2).map(|_| rng.random_range(-2.0..12.0)).collect())
            .collect();
        check_navigable(&t.graph, &ds, &queries, 1.0).unwrap();
    }

    #[test]
    fn edges_per_point_independent_of_spread() {
        // No log Δ factor: stretching the data (huge aspect ratio) must not
        // change the θ-graph edge count per point materially.
        let compact = random_dataset(100, 2, 8);
        let mut spread_pts: Vec<Vec<f64>> = compact.points().to_vec();
        // Move half the points very far away (aspect ratio x 10^6).
        for p in spread_pts.iter_mut().skip(50) {
            p[0] += 1e6;
            p[1] += 3e5;
        }
        let spread = Dataset::new(spread_pts, Euclidean);
        let t1 = ThetaGraph::build(&compact, 0.4);
        let t2 = ThetaGraph::build(&spread, 0.4);
        let e1 = t1.graph.edge_count() as f64;
        let e2 = t2.graph.edge_count() as f64;
        assert!(
            (e2 - e1).abs() / e1 < 0.35,
            "edge counts diverged: {e1} vs {e2}"
        );
    }
}
