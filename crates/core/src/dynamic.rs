//! Incremental maintenance of a `(1+ε)`-proximity graph (extension).
//!
//! The paper's construction is static; its motivating applications
//! (recommendation systems, entity matching — §1) are not. This module adds
//! the standard *logarithmic-rebuilding* dynamization on top of
//! [`crate::GNet`], preserving the worst-case `(1+ε)` guarantee at all
//! times:
//!
//! * inserts go to a **buffer** scanned exhaustively at query time; when the
//!   buffer outgrows a fraction of the snapshot, the whole structure is
//!   rebuilt with the near-linear Theorem 1.1 construction — amortized
//!   `(1/ε)^λ · polylog(nΔ)` distance work per insert;
//! * deletes tombstone the point; greedy still routes *through* tombstoned
//!   vertices (they remain good waypoints), and if greedy *returns* one, the
//!   query falls back to an exact scan (rare — and tombstones are cleared at
//!   the next rebuild, triggered when they exceed a fraction of the
//!   snapshot);
//! * a query answers `min(greedy over the snapshot graph, scan of the
//!   buffer)`: if the true NN is buffered the scan finds it exactly,
//!   otherwise greedy's `(1+ε)` bound against the snapshot's NN applies —
//!   either way the result is a `(1+ε)`-ANN of the full live set.

use pg_metric::{Dataset, Metric};

use crate::gnet::GNet;
use crate::search::greedy;

/// Statistics of a [`DynamicGNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicStats {
    /// Live points (inserted minus removed).
    pub live: usize,
    /// Points in the unindexed buffer.
    pub buffered: usize,
    /// Tombstoned points still present in the snapshot graph.
    pub tombstones: usize,
    /// Number of full rebuilds so far.
    pub rebuilds: usize,
}

/// The result of a dynamic query.
#[derive(Debug, Clone, Copy)]
pub struct DynamicAnswer {
    /// Global id of the answer (stable across rebuilds).
    pub id: u64,
    /// Its distance to the query.
    pub dist: f64,
    /// Distance computations spent (greedy + buffer scan + fallback).
    pub dist_comps: u64,
}

/// An insert/delete/query `(1+ε)`-ANN index with the Theorem 1.1 graph as
/// its core (see module docs).
#[derive(Debug)]
pub struct DynamicGNet<P, M> {
    metric: M,
    epsilon: f64,
    /// All points ever inserted, addressed by global id.
    points: Vec<P>,
    /// `alive[id]`: not removed.
    alive: Vec<bool>,
    /// Snapshot: a dataset clone + graph over the points present at the
    /// last rebuild. `snap_ids[v]` maps graph vertex -> global id.
    snapshot: Option<(Dataset<P, M>, GNet, Vec<u64>)>,
    /// Global ids inserted since the last rebuild.
    buffer: Vec<u64>,
    /// Tombstones inside the snapshot (removed after the last rebuild).
    snap_tombstones: usize,
    rebuilds: usize,
    /// Rebuild when `buffer + tombstones > rebuild_fraction * snapshot`.
    rebuild_fraction: f64,
    /// Minimum size before the first graph is built.
    min_index_size: usize,
}

impl<P: Clone + Sync, M: Metric<P> + Clone + Sync> DynamicGNet<P, M> {
    /// Creates an empty index for `ε ∈ (0, 1]`.
    pub fn new(metric: M, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0);
        DynamicGNet {
            metric,
            epsilon,
            points: Vec::new(),
            alive: Vec::new(),
            snapshot: None,
            buffer: Vec::new(),
            snap_tombstones: 0,
            rebuilds: 0,
            rebuild_fraction: 0.5,
            min_index_size: 32,
        }
    }

    /// Inserts a point, returning its stable global id.
    pub fn insert(&mut self, p: P) -> u64 {
        let id = self.points.len() as u64;
        self.points.push(p);
        self.alive.push(true);
        self.buffer.push(id);
        self.maybe_rebuild();
        id
    }

    /// Removes a point by global id; returns whether it was live.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(alive) = self.alive.get_mut(id as usize) else {
            return false;
        };
        if !*alive {
            return false;
        }
        *alive = false;
        // Either it was buffered (drop it) or it is in the snapshot
        // (tombstone it).
        if let Some(pos) = self.buffer.iter().position(|&b| b == id) {
            self.buffer.swap_remove(pos);
        } else {
            self.snap_tombstones += 1;
        }
        self.maybe_rebuild();
        true
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Whether no live points remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The metric (useful when it is an instrumented wrapper).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Current structure statistics.
    pub fn stats(&self) -> DynamicStats {
        DynamicStats {
            live: self.len(),
            buffered: self.buffer.len(),
            tombstones: self.snap_tombstones,
            rebuilds: self.rebuilds,
        }
    }

    fn snapshot_len(&self) -> usize {
        self.snapshot.as_ref().map_or(0, |(_, _, ids)| ids.len())
    }

    fn maybe_rebuild(&mut self) {
        let pending = self.buffer.len() + self.snap_tombstones;
        let snap = self.snapshot_len();
        let live = self.len();
        let due = if snap == 0 {
            live >= self.min_index_size
        } else {
            pending as f64 > self.rebuild_fraction * snap as f64 && live >= 2
        };
        if due && live >= 2 {
            self.rebuild();
        }
    }

    /// Forces a rebuild of the snapshot graph over all live points.
    pub fn rebuild(&mut self) {
        let ids: Vec<u64> = (0..self.points.len() as u64)
            .filter(|&id| self.alive[id as usize])
            .collect();
        if ids.len() < 2 {
            self.snapshot = None;
        } else {
            let pts: Vec<P> = ids
                .iter()
                .map(|&id| self.points[id as usize].clone())
                .collect();
            let data = Dataset::new(pts, self.metric.clone());
            let gnet = GNet::build_fast(&data, self.epsilon);
            self.snapshot = Some((data, gnet, ids));
            self.rebuilds += 1;
        }
        self.buffer.clear();
        self.snap_tombstones = 0;
        // Anything alive but not in the snapshot must be re-buffered (only
        // possible when the snapshot was skipped for being too small).
        if self.snapshot.is_none() {
            self.buffer = (0..self.points.len() as u64)
                .filter(|&id| self.alive[id as usize])
                .collect();
        }
    }

    /// `(1+ε)`-ANN query over the live set. Returns `None` when empty.
    pub fn query(&self, q: &P) -> Option<DynamicAnswer> {
        let mut comps: u64 = 0;
        let mut best: Option<(u64, f64)> = None;
        let offer = |id: u64, d: f64, best: &mut Option<(u64, f64)>| {
            if best.is_none_or(|(_, bd)| d < bd) {
                *best = Some((id, d));
            }
        };

        // 1. Greedy over the snapshot graph (if any).
        if let Some((data, gnet, ids)) = &self.snapshot {
            let out = greedy(&gnet.graph, data, 0, q);
            comps += out.dist_comps;
            let gid = ids[out.result as usize];
            if self.alive[gid as usize] {
                offer(gid, out.result_dist, &mut best);
            } else {
                // Tombstoned answer: fall back to an exact scan over the
                // snapshot's live points (rare; cleared at next rebuild).
                for (v, &g) in ids.iter().enumerate() {
                    if self.alive[g as usize] {
                        comps += 1;
                        offer(g, data.dist_to(v, q), &mut best);
                    }
                }
            }
        }

        // 2. Exact scan of the buffer.
        for &id in &self.buffer {
            comps += 1;
            offer(
                id,
                self.metric.dist(&self.points[id as usize], q),
                &mut best,
            );
        }

        best.map(|(id, dist)| DynamicAnswer {
            id,
            dist,
            dist_comps: comps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn brute_live(idx: &DynamicGNet<Vec<f64>, Euclidean>, q: &Vec<f64>) -> Option<(u64, f64)> {
        let mut best: Option<(u64, f64)> = None;
        for id in 0..idx.points.len() as u64 {
            if !idx.alive[id as usize] {
                continue;
            }
            let d = Euclidean.dist(&idx.points[id as usize], q);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((id, d));
            }
        }
        best
    }

    #[test]
    fn pure_buffer_phase_is_exact() {
        let mut idx = DynamicGNet::new(Euclidean, 1.0);
        for i in 0..10 {
            idx.insert(vec![i as f64, 0.0]);
        }
        let ans = idx.query(&vec![3.4, 0.0]).unwrap();
        assert_eq!(ans.id, 3);
        assert_eq!(
            idx.stats().rebuilds,
            0,
            "below min_index_size: no graph yet"
        );
    }

    #[test]
    fn guarantee_holds_through_growth() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut idx = DynamicGNet::new(Euclidean, 1.0);
        for step in 0..400 {
            let p = vec![rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)];
            idx.insert(p);
            if step % 13 == 0 {
                let q = vec![rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)];
                let ans = idx.query(&q).unwrap();
                let (_, exact) = brute_live(&idx, &q).unwrap();
                assert!(
                    ans.dist <= 2.0 * exact + 1e-9,
                    "step {step}: got {}, exact {exact}",
                    ans.dist
                );
            }
        }
        assert!(idx.stats().rebuilds >= 2, "rebuilds should have triggered");
    }

    #[test]
    fn guarantee_holds_under_interleaved_deletes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut idx = DynamicGNet::new(Euclidean, 1.0);
        let mut ids = Vec::new();
        for _ in 0..200 {
            ids.push(idx.insert(vec![
                rng.random_range(0.0..50.0),
                rng.random_range(0.0..50.0),
            ]));
        }
        for step in 0..150 {
            // Delete a random live point, insert a fresh one, query.
            let victim = ids[rng.random_range(0..ids.len())];
            idx.remove(victim);
            ids.push(idx.insert(vec![
                rng.random_range(0.0..50.0),
                rng.random_range(0.0..50.0),
            ]));
            let q = vec![rng.random_range(0.0..50.0), rng.random_range(0.0..50.0)];
            let ans = idx.query(&q).unwrap();
            assert!(idx.alive[ans.id as usize], "returned a deleted point");
            let (_, exact) = brute_live(&idx, &q).unwrap();
            assert!(
                ans.dist <= 2.0 * exact + 1e-9,
                "step {step}: got {}, exact {exact}",
                ans.dist
            );
        }
    }

    #[test]
    fn removing_everything_empties_the_index() {
        let mut idx = DynamicGNet::new(Euclidean, 1.0);
        let ids: Vec<u64> = (0..50).map(|i| idx.insert(vec![i as f64, 1.0])).collect();
        for id in ids {
            assert!(idx.remove(id));
            assert!(!idx.remove(id), "double remove must fail");
        }
        assert!(idx.is_empty());
        assert!(idx.query(&vec![0.0, 0.0]).is_none());
    }

    #[test]
    fn amortized_insert_cost_is_subquadratic() {
        use pg_metric::Counting;
        let mut rng = StdRng::seed_from_u64(3);
        let mut idx = DynamicGNet::new(Counting::new(Euclidean), 1.0);
        let n = 800usize;
        for _ in 0..n {
            idx.insert(vec![
                rng.random_range(0.0..80.0),
                rng.random_range(0.0..80.0),
            ]);
        }
        let total = idx.metric().count();
        // The geometric rebuild schedule costs a constant times ONE static
        // build of the final dataset (sizes form a geometric series) — that
        // is the amortization claim. Measure a single static build and
        // compare.
        let pts: Vec<Vec<f64>> = idx.points.clone();
        let reference = Dataset::new(pts, Counting::new(Euclidean));
        let _ = GNet::build_fast(&reference, 1.0);
        let one_build = reference.metric().count();
        assert!(
            total < 8 * one_build,
            "amortized cost too high: {total} total vs {one_build} for one static build"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let mut idx = DynamicGNet::new(Euclidean, 1.0);
        for i in 0..100 {
            idx.insert(vec![i as f64, (i % 7) as f64]);
        }
        idx.remove(0);
        idx.remove(1);
        let s = idx.stats();
        assert_eq!(s.live, 98);
        assert!(s.rebuilds >= 1);
        assert!(s.buffered <= 98);
    }
}
