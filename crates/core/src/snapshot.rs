//! Engine persistence: typed save/load of a [`QueryEngine`] through the
//! `pg_store` snapshot format.
//!
//! This is the wiring layer between the raw, dependency-free byte format
//! ([`pg_store::Snapshot`]) and the typed world of this crate: a
//! [`Graph`] plus a flat-backed [`Dataset`](pg_metric::Dataset) goes out as raw CSR and
//! coordinate arrays, and comes back **bit-identical** — a loaded engine
//! answers `batch_greedy` / `batch_query` / `batch_beam` exactly like the
//! engine that was saved, across every thread count (pinned by
//! `tests/snapshot_parity.rs` at the workspace root, mirroring
//! `tests/flat_parity.rs`).
//!
//! The metric is not serialized as code, only named: the [`SnapshotMetric`]
//! trait maps the unit metric types (`Euclidean`, `Manhattan`, `Chebyshev`)
//! to their stable on-disk [`MetricTag`] codes, and a typed
//! `QueryEngine::<_, M>::load` refuses a file whose tag differs from
//! `M::TAG` with [`SnapshotError::MetricMismatch`]. Loading always yields a
//! `FlatRow`-backed engine — flat contiguous storage is the serving layout
//! (see `ARCHITECTURE.md` at the repository root for the byte-level format
//! spec and the layout rationale).
//!
//! What is *not* stored: the net hierarchy, the thread count, and any
//! `Counting` instrumentation. A loaded engine serves queries (which need
//! only the graph and the points); rebuilding or extending the index needs
//! the construction pipeline. Instrument a loaded engine by re-wrapping its
//! dataset in `Counting` if distance accounting is required.
//!
//! # Example
//!
//! ```
//! use pg_core::engine::QueryEngine;
//! use pg_core::GNet;
//! use pg_metric::{Euclidean, FlatPoints, FlatRow};
//!
//! let mut points = FlatPoints::new(2);
//! for i in 0..50 {
//!     points.push(&[i as f64, (i % 5) as f64]);
//! }
//! let data = points.into_dataset(Euclidean);
//! let pg = GNet::build(&data, 1.0);
//! let engine = QueryEngine::new(pg.graph, data);
//!
//! // Offline: build once, save.
//! let path = std::env::temp_dir().join(format!("pg_snapshot_mod_{}.pgix", std::process::id()));
//! engine.save_with(&path, 0, Some(pg.params.into())).unwrap();
//!
//! // Online: load and serve — answers are identical to the saved engine.
//! let loaded: QueryEngine<FlatRow, Euclidean> = QueryEngine::load(&path).unwrap();
//! std::fs::remove_file(&path).unwrap();
//! let q: FlatRow = vec![17.3, 2.2].into();
//! let a = pg_core::greedy(engine.graph(), engine.data(), 0, &q);
//! let b = pg_core::greedy(loaded.graph(), loaded.data(), 0, &q);
//! assert_eq!(a.result, b.result);
//! assert_eq!(a.dist_comps, b.dist_comps);
//! ```

use std::path::Path;

use pg_metric::{
    Chebyshev, CompactPoints, Euclidean, F32Points, FlatPoints, FlatRow, Manhattan, Metric,
    Quantized, Sq8Points,
};
use pg_store::{BuildParams, IndexMeta, MetricTag, QuantSection, Snapshot, SnapshotError};

use crate::engine::QueryEngine;
use crate::graph::Graph;
use crate::params::GNetParams;

/// A metric with a stable on-disk identity ([`MetricTag`]) and a canonical
/// instance, so snapshots can be loaded without serializing metric state.
///
/// Version 1 of the format covers the three stateless `L_p` metrics.
/// Stateful wrappers (`Counting`, `Scaled`) deliberately do not implement
/// this: persist the underlying metric and re-wrap after loading.
pub trait SnapshotMetric {
    /// The tag written to and checked against the file's `META` section.
    const TAG: MetricTag;

    /// The canonical instance used to reconstruct a loaded dataset.
    fn from_tag() -> Self;
}

impl SnapshotMetric for Euclidean {
    const TAG: MetricTag = MetricTag::Euclidean;

    fn from_tag() -> Self {
        Euclidean
    }
}

impl SnapshotMetric for Manhattan {
    const TAG: MetricTag = MetricTag::Manhattan;

    fn from_tag() -> Self {
        Manhattan
    }
}

impl SnapshotMetric for Chebyshev {
    const TAG: MetricTag = MetricTag::Chebyshev;

    fn from_tag() -> Self {
        Chebyshev
    }
}

impl From<GNetParams> for BuildParams {
    /// Records `(ε, η, φ)` in snapshot metadata.
    fn from(p: GNetParams) -> Self {
        BuildParams {
            epsilon: p.epsilon,
            eta: p.eta,
            phi: p.phi,
        }
    }
}

/// A loaded engine whose metric is known only at run time — the engine
/// surface a serving process shares and hot-swaps.
///
/// A snapshot file records its metric as a [`MetricTag`]; a server that
/// loads whatever file it is pointed at cannot pick the
/// `QueryEngine<FlatRow, M>` type parameter at compile time. `AnyEngine`
/// closes that gap: [`AnyEngine::load`] dispatches on the stored tag and
/// wraps the correctly-typed engine, and the batch entry points forward to
/// the inner [`QueryEngine`] — so every determinism and parity guarantee
/// (bit-identical results at any thread count, sequential-equivalent
/// outcomes) carries over verbatim.
///
/// This is the type `pg_serve` keeps behind its `Arc`-swapped serving
/// cells: one `Arc<AnyEngine>` is cheap to clone per in-flight request,
/// and replacing the `Arc` atomically switches traffic to a new snapshot
/// while old requests finish on the old engine.
///
/// ```
/// use pg_core::engine::QueryEngine;
/// use pg_core::snapshot::AnyEngine;
/// use pg_core::GNet;
/// use pg_metric::{Euclidean, FlatPoints};
/// use pg_store::MetricTag;
///
/// let mut points = FlatPoints::new(2);
/// for i in 0..40 {
///     points.push(&[i as f64, (i % 5) as f64]);
/// }
/// let data = points.into_dataset(Euclidean);
/// let pg = GNet::build(&data, 1.0);
/// let engine = QueryEngine::new(pg.graph, data);
///
/// let path = std::env::temp_dir().join(format!("pg_any_doc_{}.pgix", std::process::id()));
/// engine.save(&path).unwrap();
/// let (any, meta) = AnyEngine::load(&path).unwrap();
/// std::fs::remove_file(&path).unwrap();
/// assert_eq!(any.metric(), MetricTag::Euclidean);
/// assert_eq!(any.len(), 40);
/// assert_eq!(any.dims(), 2);
///
/// let queries = vec![vec![7.2, 1.0].into()];
/// let batch = any.batch_beam(&[meta.entry_point], &queries, 8, 3);
/// assert_eq!(batch.results.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub enum AnyEngine {
    /// An engine over `L_2` ([`MetricTag::Euclidean`]).
    Euclidean(QueryEngine<FlatRow, Euclidean>),
    /// An engine over `L_1` ([`MetricTag::Manhattan`]).
    Manhattan(QueryEngine<FlatRow, Manhattan>),
    /// An engine over `L_inf` ([`MetricTag::Chebyshev`]).
    Chebyshev(QueryEngine<FlatRow, Chebyshev>),
}

/// Forwards a method call to whichever typed engine the enum holds.
macro_rules! dispatch {
    ($self:expr, $e:pat => $body:expr) => {
        match $self {
            AnyEngine::Euclidean($e) => $body,
            AnyEngine::Manhattan($e) => $body,
            AnyEngine::Chebyshev($e) => $body,
        }
    };
}

impl AnyEngine {
    /// Loads an engine from a snapshot file, dispatching on the metric tag
    /// recorded in the file — the run-time-typed counterpart of
    /// [`QueryEngine::load_with_meta`]. Fails with a typed
    /// [`SnapshotError`], never a panic.
    pub fn load(path: impl AsRef<Path>) -> Result<(Self, IndexMeta), SnapshotError> {
        Self::from_snapshot(Snapshot::load(path)?)
    }

    /// Reconstructs an engine from an in-memory [`Snapshot`], dispatching on
    /// its metric tag (see [`QueryEngine::from_snapshot`] for the
    /// validation performed per metric).
    pub fn from_snapshot(snap: Snapshot) -> Result<(Self, IndexMeta), SnapshotError> {
        match snap.meta.metric {
            MetricTag::Euclidean => QueryEngine::<FlatRow, Euclidean>::from_snapshot(snap)
                .map(|(e, m)| (AnyEngine::Euclidean(e), m)),
            MetricTag::Manhattan => QueryEngine::<FlatRow, Manhattan>::from_snapshot(snap)
                .map(|(e, m)| (AnyEngine::Manhattan(e), m)),
            MetricTag::Chebyshev => QueryEngine::<FlatRow, Chebyshev>::from_snapshot(snap)
                .map(|(e, m)| (AnyEngine::Chebyshev(e), m)),
        }
    }

    /// The metric the wrapped engine computes distances under.
    pub fn metric(&self) -> MetricTag {
        match self {
            AnyEngine::Euclidean(_) => MetricTag::Euclidean,
            AnyEngine::Manhattan(_) => MetricTag::Manhattan,
            AnyEngine::Chebyshev(_) => MetricTag::Chebyshev,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        dispatch!(self, e => e.data().len())
    }

    /// Always false: snapshots of empty indexes do not exist
    /// (`Snapshot::validate` rejects `n = 0`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point dimensionality — the coordinate count every query must match.
    pub fn dims(&self) -> usize {
        dispatch!(self, e => e.data().point(0).dim())
    }

    /// The worker count batch calls use (see [`QueryEngine::threads`]).
    pub fn threads(&self) -> usize {
        dispatch!(self, e => e.threads())
    }

    /// Overrides the worker count (see [`QueryEngine::with_threads`]).
    pub fn with_threads(self, threads: usize) -> Self {
        match self {
            AnyEngine::Euclidean(e) => AnyEngine::Euclidean(e.with_threads(threads)),
            AnyEngine::Manhattan(e) => AnyEngine::Manhattan(e.with_threads(threads)),
            AnyEngine::Chebyshev(e) => AnyEngine::Chebyshev(e.with_threads(threads)),
        }
    }

    /// Forwards to [`QueryEngine::batch_beam`] on the wrapped engine.
    pub fn batch_beam(
        &self,
        starts: &[u32],
        queries: &[FlatRow],
        ef: usize,
        k: usize,
    ) -> crate::engine::BatchBeamOutcome {
        dispatch!(self, e => e.batch_beam(starts, queries, ef, k))
    }

    /// Forwards to [`QueryEngine::batch_beam_detailed`] on the wrapped
    /// engine — the serving path, so every response can carry its own
    /// `dist_comps`/`expansions`.
    pub fn batch_beam_detailed(
        &self,
        starts: &[u32],
        queries: &[FlatRow],
        ef: usize,
        k: usize,
    ) -> crate::engine::BatchBeamDetail {
        dispatch!(self, e => e.batch_beam_detailed(starts, queries, ef, k))
    }
}

impl From<QueryEngine<FlatRow, Euclidean>> for AnyEngine {
    fn from(e: QueryEngine<FlatRow, Euclidean>) -> Self {
        AnyEngine::Euclidean(e)
    }
}

impl From<QueryEngine<FlatRow, Manhattan>> for AnyEngine {
    fn from(e: QueryEngine<FlatRow, Manhattan>) -> Self {
        AnyEngine::Manhattan(e)
    }
}

impl From<QueryEngine<FlatRow, Chebyshev>> for AnyEngine {
    fn from(e: QueryEngine<FlatRow, Chebyshev>) -> Self {
        AnyEngine::Chebyshev(e)
    }
}

impl<P: AsRef<[f64]>, M: Metric<P> + SnapshotMetric> QueryEngine<P, M> {
    /// Extracts the raw [`Snapshot`] of this engine: the graph's CSR arrays
    /// plus all point coordinates flattened row-major. Works for any point
    /// layout (`FlatRow`, `Vec<f64>`, …); loading always reconstructs the
    /// flat layout.
    ///
    /// `entry_point` (a suggested routing start, must be `< n`) and `build`
    /// go into the metadata section verbatim.
    pub fn to_snapshot(
        &self,
        entry_point: u32,
        build: Option<BuildParams>,
    ) -> Result<Snapshot, SnapshotError> {
        let points = self.data().points();
        // pg-lint: allow(no-panic-path, Dataset::new rejects empty point sets, so points[0] exists)
        let dims = points[0].as_ref().len();
        let mut coords = Vec::with_capacity(points.len() * dims);
        for (i, p) in points.iter().enumerate() {
            let row = p.as_ref();
            if row.len() != dims {
                return Err(SnapshotError::Invalid {
                    reason: format!(
                        "point {i} has {} coordinates, point 0 has {dims}",
                        row.len()
                    ),
                });
            }
            coords.extend_from_slice(row);
        }
        let snap = Snapshot {
            meta: IndexMeta {
                metric: M::TAG,
                dims: dims as u32,
                n: points.len() as u64,
                entry_point,
                build,
            },
            offsets: self
                .graph()
                .csr_offsets()
                .iter()
                .map(|&o| o as u64)
                .collect(),
            targets: self.graph().csr_targets().to_vec(),
            coords,
            quant: None,
        };
        snap.validate()?;
        Ok(snap)
    }

    /// Saves the engine's index to `path` with default metadata (entry
    /// point 0, no build parameters). See [`QueryEngine::save_with`].
    ///
    /// ```
    /// use pg_core::engine::QueryEngine;
    /// use pg_core::GNet;
    /// use pg_metric::{Euclidean, FlatPoints, FlatRow};
    ///
    /// let mut points = FlatPoints::new(2);
    /// for i in 0..40 {
    ///     points.push(&[i as f64, (i % 7) as f64]);
    /// }
    /// let data = points.into_dataset(Euclidean);
    /// let pg = GNet::build(&data, 1.0);
    /// let engine = QueryEngine::new(pg.graph, data);
    ///
    /// let path = std::env::temp_dir().join(format!("pg_save_doc_{}.pgix", std::process::id()));
    /// engine.save(&path).unwrap();
    /// let loaded: QueryEngine<FlatRow, Euclidean> = QueryEngine::load(&path).unwrap();
    /// std::fs::remove_file(&path).unwrap();
    /// assert_eq!(loaded.graph(), engine.graph());
    /// ```
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        self.save_with(path, 0, None)
    }

    /// Saves the engine's index to `path`, recording `entry_point` and the
    /// build parameters (if given) in the metadata section. The write is
    /// all-or-nothing at the validation level: a structurally inconsistent
    /// engine state is refused before any bytes hit the disk.
    pub fn save_with(
        &self,
        path: impl AsRef<Path>,
        entry_point: u32,
        build: Option<BuildParams>,
    ) -> Result<(), SnapshotError> {
        self.to_snapshot(entry_point, build)?.save(path)
    }

    /// [`QueryEngine::to_snapshot`] plus a compact-points section: the
    /// snapshot carries `compact` (typically from [`QueryEngine::quantize`])
    /// alongside the exact coordinates and writes as format version 2.
    ///
    /// `compact` must describe exactly this engine's points (same count,
    /// same dimensionality); a mismatched store is refused with
    /// [`SnapshotError::Invalid`] before any bytes are produced.
    pub fn to_snapshot_quantized(
        &self,
        entry_point: u32,
        build: Option<BuildParams>,
        compact: &CompactPoints,
    ) -> Result<Snapshot, SnapshotError> {
        let mut snap = self.to_snapshot(entry_point, build)?;
        if compact.len() as u64 != snap.meta.n || compact.dim() as u32 != snap.meta.dims {
            return Err(SnapshotError::Invalid {
                reason: format!(
                    "compact store holds {} points of dim {}, engine holds {} of dim {}",
                    compact.len(),
                    compact.dim(),
                    snap.meta.n,
                    snap.meta.dims
                ),
            });
        }
        snap.quant = Some(match compact {
            CompactPoints::F32(p) => QuantSection::F32 {
                data: p.data().to_vec(),
            },
            CompactPoints::Sq8(p) => QuantSection::Sq8 {
                mins: p.mins().to_vec(),
                steps: p.steps().to_vec(),
                codes: p.codes().to_vec(),
            },
        });
        snap.validate()?;
        Ok(snap)
    }

    /// Saves the engine together with a compact-points section (format
    /// version 2). See [`QueryEngine::to_snapshot_quantized`].
    pub fn save_quantized(
        &self,
        path: impl AsRef<Path>,
        entry_point: u32,
        build: Option<BuildParams>,
        compact: &CompactPoints,
    ) -> Result<(), SnapshotError> {
        self.to_snapshot_quantized(entry_point, build, compact)?
            .save(path)
    }
}

impl<M: Metric<FlatRow> + SnapshotMetric> QueryEngine<FlatRow, M> {
    /// Loads an engine from a snapshot file saved by [`QueryEngine::save`] /
    /// [`QueryEngine::save_with`], discarding the metadata. The loaded
    /// engine is bit-identical to the saved one: same graph, same
    /// coordinates, hence identical results, hops and `dist_comps` for
    /// every query (see the module docs).
    ///
    /// Fails with a typed [`SnapshotError`] — never a panic — on I/O
    /// problems, truncation, corruption, future format versions, or a
    /// metric tag that differs from `M::TAG`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::load_with_meta(path).map(|(engine, _)| engine)
    }

    /// [`QueryEngine::load`], also returning the stored [`IndexMeta`]
    /// (entry point, build parameters, …).
    pub fn load_with_meta(path: impl AsRef<Path>) -> Result<(Self, IndexMeta), SnapshotError> {
        Self::from_snapshot(Snapshot::load(path)?)
    }

    /// Loads an engine **and its compact-points store** from a version-2
    /// snapshot saved by [`QueryEngine::save_quantized`]. The engine is
    /// bit-identical to the saved one; the returned [`CompactPoints`]
    /// carries the exact `f32` buffer or SQ8 codebook that was written, so
    /// quantized search after a round-trip answers exactly like before.
    ///
    /// A plain (version-1) file is refused with
    /// [`SnapshotError::QuantMismatch`] `{ found: None }` — never a panic,
    /// and never a silently re-quantized store.
    pub fn load_quantized(
        path: impl AsRef<Path>,
    ) -> Result<(Self, CompactPoints, IndexMeta), SnapshotError> {
        Self::from_snapshot_quantized(Snapshot::load(path)?)
    }

    /// Reconstructs an engine plus its compact store from an in-memory
    /// version-2 [`Snapshot`]. See [`QueryEngine::load_quantized`].
    pub fn from_snapshot_quantized(
        mut snap: Snapshot,
    ) -> Result<(Self, CompactPoints, IndexMeta), SnapshotError> {
        let quant = snap
            .quant
            .take()
            .ok_or(SnapshotError::QuantMismatch { found: None })?;
        let dims = snap.meta.dims as usize;
        let n = snap.meta.n;
        let compact = match quant {
            QuantSection::F32 { data } => {
                F32Points::try_from_raw(data, dims).map(CompactPoints::F32)
            }
            QuantSection::Sq8 { mins, steps, codes } => {
                Sq8Points::try_from_raw(codes, mins, steps, dims).map(CompactPoints::Sq8)
            }
        }
        .map_err(|reason| SnapshotError::Invalid { reason })?;
        if compact.len() as u64 != n {
            return Err(SnapshotError::Invalid {
                reason: format!(
                    "compact store holds {} points, META stores n = {n}",
                    compact.len()
                ),
            });
        }
        let (engine, meta) = Self::from_snapshot(snap)?;
        Ok((engine, compact, meta))
    }

    /// Reconstructs an engine from an in-memory [`Snapshot`]. The graph- and
    /// buffer-level invariants are (re-)established here through
    /// [`Graph::try_from_csr`] and `FlatPoints::try_from_raw` — untrusted
    /// hand-built snapshots are as safe as files, without repeating the full
    /// [`Snapshot::validate`] scan a file read already performed.
    pub fn from_snapshot(snap: Snapshot) -> Result<(Self, IndexMeta), SnapshotError> {
        if snap.meta.metric != M::TAG {
            return Err(SnapshotError::MetricMismatch {
                expected: M::TAG,
                found: snap.meta.metric,
            });
        }
        // A plain loader must not silently drop a quantized section the
        // writer considered part of the index: demand the quantized loader.
        if let Some(q) = &snap.quant {
            return Err(SnapshotError::QuantMismatch {
                found: Some(q.tag()),
            });
        }
        let Snapshot {
            meta,
            offsets,
            targets,
            coords,
            quant: _,
        } = snap;
        let offsets: Vec<usize> = offsets
            .into_iter()
            .map(|o| {
                o.try_into().map_err(|_| SnapshotError::Invalid {
                    reason: format!("offset {o} exceeds addressable memory"),
                })
            })
            .collect::<Result<_, _>>()?;
        let graph = Graph::try_from_csr(offsets, targets)
            .map_err(|reason| SnapshotError::Invalid { reason })?;
        let points = FlatPoints::try_from_raw(coords, meta.dims as usize)
            .map_err(|reason| SnapshotError::Invalid { reason })?;
        // try_from_csr / try_from_raw cover everything but the O(1)
        // cross-array checks, which keep the engine constructor's size
        // assertion (and downstream uses of the metadata) panic-free.
        if graph.n() != points.len() || meta.n != points.len() as u64 {
            return Err(SnapshotError::Invalid {
                reason: format!(
                    "graph has {} vertices, meta stores n = {}, buffer holds {} points",
                    graph.n(),
                    meta.n,
                    points.len()
                ),
            });
        }
        if meta.entry_point as u64 >= meta.n {
            return Err(SnapshotError::Invalid {
                reason: format!(
                    "entry point {} out of range (n = {})",
                    meta.entry_point, meta.n
                ),
            });
        }
        let data = points.into_dataset(M::from_tag());
        Ok((QueryEngine::new(graph, data), meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnet::GNet;
    use pg_metric::{Dataset, QuantKind};

    fn flat_engine(n: usize, seed: u64) -> (QueryEngine<FlatRow, Euclidean>, GNetParams) {
        let points = FlatPoints::from_fn(n, 2, |i, out| {
            let x = ((i as u64).wrapping_mul(seed.wrapping_add(31)) % 97) as f64;
            out.push(x);
            out.push((i % 11) as f64);
        });
        let data = points.into_dataset(Euclidean);
        let g = GNet::build(&data, 1.0);
        (QueryEngine::new(g.graph, data), g.params)
    }

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pg_core_snap_{}_{name}.pgix", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_graph_points_and_meta() {
        let (engine, params) = flat_engine(80, 7);
        let path = temp("roundtrip");
        engine.save_with(&path, 5, Some(params.into())).unwrap();
        let (loaded, meta) = QueryEngine::<FlatRow, Euclidean>::load_with_meta(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        assert_eq!(loaded.graph(), engine.graph());
        assert_eq!(loaded.data().len(), engine.data().len());
        for i in 0..engine.data().len() {
            assert_eq!(
                loaded.data().point(i).coords(),
                engine.data().point(i).coords()
            );
        }
        assert_eq!(meta.n, 80);
        assert_eq!(meta.dims, 2);
        assert_eq!(meta.entry_point, 5);
        assert_eq!(meta.metric, MetricTag::Euclidean);
        let b = meta.build.unwrap();
        assert_eq!(b.epsilon, params.epsilon);
        assert_eq!(b.eta, params.eta);
        assert_eq!(b.phi, params.phi);
    }

    #[test]
    fn nested_vec_engine_saves_and_loads_as_flat() {
        // Saving is layout-generic: a legacy Vec<Vec<f64>> engine persists
        // to the same format and loads back flat-backed.
        let pts: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, (i % 9) as f64]).collect();
        let data = Dataset::new(pts, Euclidean);
        let g = GNet::build(&data, 1.0);
        let engine = QueryEngine::new(g.graph, data);
        let path = temp("nested");
        engine.save(&path).unwrap();
        let loaded = QueryEngine::<FlatRow, Euclidean>::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.graph(), engine.graph());
        for i in 0..engine.data().len() {
            assert_eq!(loaded.data().point(i).coords(), &engine.data().point(i)[..]);
        }
    }

    #[test]
    fn metric_mismatch_is_a_typed_error() {
        let (engine, _) = flat_engine(40, 3);
        let path = temp("mismatch");
        engine.save(&path).unwrap(); // tagged L2
        let err = QueryEngine::<FlatRow, Manhattan>::load(&path).unwrap_err();
        match err {
            SnapshotError::MetricMismatch { expected, found } => {
                assert_eq!(expected, MetricTag::Manhattan);
                assert_eq!(found, MetricTag::Euclidean);
            }
            other => panic!("got {other:?}"),
        }
        // The right metric still loads.
        assert!(QueryEngine::<FlatRow, Euclidean>::load(&path).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn manhattan_and_chebyshev_roundtrip_under_their_own_tags() {
        let points = FlatPoints::from_fn(30, 3, |i, out| {
            out.extend([(i % 7) as f64, (i % 5) as f64, i as f64]);
        });
        let data = points.into_dataset(Manhattan);
        let g = GNet::build(&data, 1.0);
        let engine = QueryEngine::new(g.graph, data);
        let path = temp("l1");
        engine.save(&path).unwrap();
        let (loaded, meta) = QueryEngine::<FlatRow, Manhattan>::load_with_meta(&path).unwrap();
        assert_eq!(meta.metric, MetricTag::Manhattan);
        assert_eq!(loaded.graph(), engine.graph());
        // An L∞ loader refuses the L1 file.
        assert!(matches!(
            QueryEngine::<FlatRow, Chebyshev>::load(&path),
            Err(SnapshotError::MetricMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_entry_point_is_refused_at_save_time() {
        let (engine, _) = flat_engine(20, 1);
        let err = engine.to_snapshot(20, None).unwrap_err();
        assert!(matches!(err, SnapshotError::Invalid { .. }), "got {err:?}");
    }

    #[test]
    fn any_engine_loads_each_metric_and_answers_like_the_typed_engine() {
        let points = FlatPoints::from_fn(60, 2, |i, out| {
            out.extend([((i * 13) % 41) as f64, (i % 9) as f64]);
        });
        let queries: Vec<FlatRow> = (0..8)
            .map(|i| FlatRow::from(vec![(i * 5) as f64, (i % 3) as f64]))
            .collect();
        let starts = vec![0u32; queries.len()];

        // One roundtrip per metric: the tag in the file picks the variant.
        macro_rules! check_metric {
            ($metric:expr, $tag:expr, $variant:path) => {{
                let data = points.clone().into_dataset($metric);
                let g = GNet::build(&data, 1.0);
                let engine = QueryEngine::new(g.graph, data);
                let path = temp(&format!("any_{}", $tag.code()));
                engine.save(&path).unwrap();
                let (any, meta) = AnyEngine::load(&path).unwrap();
                std::fs::remove_file(&path).unwrap();
                assert_eq!(any.metric(), $tag);
                assert_eq!(meta.metric, $tag);
                assert_eq!(any.len(), 60);
                assert_eq!(any.dims(), 2);
                assert!(matches!(any, $variant(_)));
                // Answers forward bit-identically to the typed engine.
                let direct = engine.batch_beam_detailed(&starts, &queries, 8, 3);
                let through = any.batch_beam_detailed(&starts, &queries, 8, 3);
                assert_eq!(through.outcomes, direct.outcomes);
                assert_eq!(through.dist_comps, direct.dist_comps);
                let beam = any.batch_beam(&starts, &queries, 8, 3);
                assert_eq!(
                    beam.results,
                    direct
                        .outcomes
                        .iter()
                        .map(|o| o.results.clone())
                        .collect::<Vec<_>>()
                );
            }};
        }
        check_metric!(Euclidean, MetricTag::Euclidean, AnyEngine::Euclidean);
        check_metric!(Manhattan, MetricTag::Manhattan, AnyEngine::Manhattan);
        check_metric!(Chebyshev, MetricTag::Chebyshev, AnyEngine::Chebyshev);
    }

    #[test]
    fn any_engine_thread_override_does_not_change_answers() {
        let (engine, _) = flat_engine(70, 21);
        let path = temp("any_threads");
        engine.save(&path).unwrap();
        let (any, _) = AnyEngine::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let queries: Vec<FlatRow> = (0..12)
            .map(|i| FlatRow::from(vec![(i * 7 % 50) as f64, (i % 4) as f64]))
            .collect();
        let starts: Vec<u32> = (0..12).map(|i| (i * 11 % 70) as u32).collect();
        let base = any
            .clone()
            .with_threads(1)
            .batch_beam_detailed(&starts, &queries, 6, 2);
        for t in [2, 8] {
            let par = any.clone().with_threads(t);
            assert_eq!(par.threads(), t);
            let got = par.batch_beam_detailed(&starts, &queries, 6, 2);
            assert_eq!(got.outcomes, base.outcomes, "diverged at {t} threads");
        }
    }

    #[test]
    fn any_engine_load_propagates_typed_errors() {
        let err = AnyEngine::load("/definitely/not/a/real/path.pgix").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "got {err:?}");
    }

    #[test]
    fn quantized_roundtrip_restores_engine_and_compact_store() {
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let (engine, params) = flat_engine(60, 11);
            let compact = engine.quantize(kind).unwrap();
            let path = temp(&format!("quant_{}", kind.name()));
            engine
                .save_quantized(&path, 3, Some(params.into()), &compact)
                .unwrap();
            let (loaded, back, meta) =
                QueryEngine::<FlatRow, Euclidean>::load_quantized(&path).unwrap();
            std::fs::remove_file(&path).unwrap();

            assert_eq!(loaded.graph(), engine.graph());
            assert_eq!(meta.entry_point, 3);
            assert_eq!(back, compact, "compact store changed across the disk");
            // Quantized search after the round-trip answers exactly like
            // before it.
            let queries: Vec<FlatRow> = (0..6)
                .map(|i| FlatRow::from(vec![(i * 9 % 50) as f64, (i % 5) as f64]))
                .collect();
            let starts = vec![0u32; queries.len()];
            let a = engine.batch_beam_quantized(&compact, &starts, &queries, 8, 3);
            let b = loaded.batch_beam_quantized(&back, &starts, &queries, 8, 3);
            assert_eq!(a.results, b.results);
            assert_eq!(a.dist_comps, b.dist_comps);
        }
    }

    #[test]
    fn quant_mismatch_is_typed_in_both_directions() {
        let (engine, _) = flat_engine(30, 5);
        let compact = engine.quantize(QuantKind::Sq8).unwrap();

        // Plain loader on a quantized file.
        let path = temp("quant_on_plain_loader");
        engine.save_quantized(&path, 0, None, &compact).unwrap();
        let err = QueryEngine::<FlatRow, Euclidean>::load(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(
            matches!(
                err,
                SnapshotError::QuantMismatch {
                    found: Some(pg_store::QuantTag::Sq8)
                }
            ),
            "got {err:?}"
        );

        // Quantized loader on a plain file.
        let path = temp("plain_on_quant_loader");
        engine.save(&path).unwrap();
        let err = QueryEngine::<FlatRow, Euclidean>::load_quantized(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(
            matches!(err, SnapshotError::QuantMismatch { found: None }),
            "got {err:?}"
        );
    }

    #[test]
    fn mismatched_compact_store_is_refused_at_save_time() {
        let (engine, _) = flat_engine(40, 2);
        let (small, _) = flat_engine(20, 2);
        let compact = small.quantize(QuantKind::F32).unwrap();
        let err = engine.to_snapshot_quantized(0, None, &compact).unwrap_err();
        assert!(matches!(err, SnapshotError::Invalid { .. }), "got {err:?}");
    }

    #[test]
    fn tampered_file_fails_loading_with_a_typed_error() {
        // End-to-end: corrupt the saved file on disk, then load through the
        // typed engine path — the error must be typed, not a panic.
        let (engine, _) = flat_engine(25, 9);
        let path = temp("tamper");
        engine.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = QueryEngine::<FlatRow, Euclidean>::load(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(
            matches!(err, SnapshotError::ChecksumMismatch { .. }),
            "got {err:?}"
        );
    }
}
