//! The merged Euclidean proximity graph of Theorem 1.3 (Sections 5.2–5.3).
//!
//! Recipe:
//!
//! 1. build `G_net` (Theorem 1.1) — `O((1/ε)^λ n log Δ)` edges;
//! 2. sample each vertex independently with probability `τ = z / log Δ`
//!    (Eq. 17); sampled vertices are **jackpot** vertices and keep their
//!    `G_net` out-edges, all other `G_net` edges are discarded — the
//!    surviving expected edge count is `O((1/ε)^λ n)`;
//! 3. merge with the *small-but-slow* `(ε/32)`-graph `G_geo` (Lemma 5.1),
//!    which contributes `O((1/ε)^{d-1} n)` edges and restores
//!    `(1+ε)`-navigability.
//!
//! Under the jackpot condition (Section 5.2), w.h.p. every greedy walk hits
//! a jackpot vertex within `⌈ln n · log Δ⌉` hops, and each jackpot hop
//! shrinks `⌈log D(p°, p*)⌉` (the log-drop property, Lemma 5.3), giving
//! query time `O((1/ε)^λ log²Δ + (1/ε)^{d-1} log n log²Δ)`.
//!
//! Section 5.3 amplifies the success probability by repeating the sampling
//! `O(log n)` times and keeping the smallest graph —
//! [`MergedGraph::build_best_of`].

use pg_metric::{Dataset, Metric};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::gnet::GNet;
use crate::graph::{Graph, GraphBuilder};
use crate::theta::ThetaGraph;

/// Parameters of the merged construction.
#[derive(Debug, Clone, Copy)]
pub struct MergedParams {
    /// Approximation slack `ε ∈ (0, 1]`.
    pub epsilon: f64,
    /// The sampling constant `z` of Eq. (17): `τ = min(1, z / log Δ)`.
    pub z: f64,
    /// RNG seed for the jackpot sampling (experiments are reproducible).
    pub seed: u64,
    /// Angular diameter for the geometric graph; defaults to the Lemma 5.1
    /// constant `ε/32` when `None`. Practical deployments may widen it
    /// (fewer cones) at the cost of the worst-case guarantee.
    pub theta: Option<f64>,
}

impl MergedParams {
    /// Defaults: `z = 4`, fixed seed, faithful `θ = ε/32`.
    pub fn new(epsilon: f64) -> Self {
        MergedParams {
            epsilon,
            z: 4.0,
            seed: 0xC0FFEE,
            theta: None,
        }
    }

    /// Overrides θ (e.g. for higher dimensions where `ε/32` generates too
    /// many cones to be practical).
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = Some(theta);
        self
    }

    /// Overrides the sampling constant.
    pub fn with_z(mut self, z: f64) -> Self {
        self.z = z;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The merged graph `G = G'_net ∪ G_geo` of Theorem 1.3.
#[derive(Debug, Clone)]
pub struct MergedGraph {
    /// The merged proximity graph.
    pub graph: Graph,
    /// Which vertices are jackpot vertices (kept their `G_net` edges).
    pub jackpots: Vec<bool>,
    /// The sampling probability `τ` actually used.
    pub tau: f64,
    /// Parameters.
    pub params: MergedParams,
    /// Edge count of the underlying full `G_net` (before sampling), for the
    /// separation experiments.
    pub gnet_edges: usize,
    /// Edge count of the geometric `(ε/32)`-graph.
    pub theta_edges: usize,
}

impl MergedGraph {
    /// Builds `G_net` and the θ-graph, then merges (one sampling run).
    pub fn build<P: AsRef<[f64]> + Sync, M: Metric<P> + Sync>(
        data: &Dataset<P, M>,
        params: MergedParams,
    ) -> Self {
        let gnet = GNet::build_fast(data, params.epsilon);
        let theta = match params.theta {
            Some(t) => ThetaGraph::build(data, t),
            None => ThetaGraph::build_for_pg(data, params.epsilon),
        };
        Self::merge(&gnet, &theta, params, params.seed)
    }

    /// Section 5.3 amplification: performs `runs` independent jackpot
    /// samplings (reusing the same `G_net` and θ-graph) and returns the
    /// merged graph with the fewest edges. The paper uses `z' log n` runs.
    pub fn build_best_of<P: AsRef<[f64]> + Sync, M: Metric<P> + Sync>(
        data: &Dataset<P, M>,
        params: MergedParams,
        runs: usize,
    ) -> Self {
        assert!(runs >= 1);
        let gnet = GNet::build_fast(data, params.epsilon);
        let theta = match params.theta {
            Some(t) => ThetaGraph::build(data, t),
            None => ThetaGraph::build_for_pg(data, params.epsilon),
        };
        (0..runs)
            .map(|r| Self::merge(&gnet, &theta, params, params.seed.wrapping_add(r as u64)))
            .min_by_key(|m| m.graph.edge_count())
            .expect("runs >= 1")
    }

    /// Merges a pre-built `G_net` and θ-graph with a fresh jackpot sampling.
    pub fn merge(gnet: &GNet, theta: &ThetaGraph, params: MergedParams, seed: u64) -> Self {
        let n = gnet.graph.n();
        assert_eq!(n, theta.graph.n(), "graphs must share the vertex set");
        let log_delta = (gnet.hierarchy.log_aspect() as f64).max(1.0);
        let tau = (params.z / log_delta).min(1.0);

        let mut rng = StdRng::seed_from_u64(seed);
        let jackpots: Vec<bool> = (0..n).map(|_| rng.random_bool(tau)).collect();

        let mut builder = GraphBuilder::new(n);
        for v in 0..n as u32 {
            for &t in theta.graph.neighbors(v) {
                builder.add_edge(v, t);
            }
            if jackpots[v as usize] {
                for &t in gnet.graph.neighbors(v) {
                    builder.add_edge(v, t);
                }
            }
        }

        MergedGraph {
            graph: builder.build(),
            jackpots,
            tau,
            params,
            gnet_edges: gnet.graph.edge_count(),
            theta_edges: theta.graph.edge_count(),
        }
    }

    /// Number of jackpot vertices.
    pub fn jackpot_count(&self) -> usize {
        self.jackpots.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::navigability::{check_navigable, check_pg_exhaustive, Starts};
    use pg_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_dataset(n: usize, seed: u64) -> Dataset<Vec<f64>, Euclidean> {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::new(
            (0..n)
                .map(|_| vec![rng.random_range(0.0..40.0), rng.random_range(0.0..40.0)])
                .collect(),
            Euclidean,
        )
    }

    #[test]
    fn merged_graph_is_navigable_regardless_of_sampling() {
        // Navigability comes from the θ-graph half of the merge, so it must
        // hold for every seed.
        let ds = random_dataset(80, 1);
        let mut rng = StdRng::seed_from_u64(10);
        let queries: Vec<Vec<f64>> = (0..10)
            .map(|_| vec![rng.random_range(-5.0..45.0), rng.random_range(-5.0..45.0)])
            .collect();
        for seed in [0u64, 1, 2] {
            let m = MergedGraph::build(&ds, MergedParams::new(1.0).with_seed(seed));
            check_navigable(&m.graph, &ds, &queries, 1.0).unwrap();
            check_pg_exhaustive(&m.graph, &ds, &queries, 1.0, Starts::Stride(11)).unwrap();
        }
    }

    #[test]
    fn merged_never_exceeds_sum_of_parts() {
        // Sampling drops non-jackpot G_net edges, so the merge is strictly
        // below G_net + θ whenever tau < 1.
        let ds = random_dataset(150, 2);
        let m = MergedGraph::build(&ds, MergedParams::new(1.0));
        assert!(m.tau < 1.0);
        assert!(
            m.graph.edge_count() < m.gnet_edges + m.theta_edges,
            "merged {} vs parts {} + {}",
            m.graph.edge_count(),
            m.gnet_edges,
            m.theta_edges
        );
    }

    #[test]
    fn merged_beats_full_gnet_at_large_aspect_ratio() {
        // The Euclidean separation (Theorem 1.3) kicks in when log Δ is
        // large: G_net pays an edge per level, the merged graph does not.
        // Geometric chain: 30 clusters of 5 points, cluster j at x = 3^j.
        let mut pts = Vec::new();
        for j in 0..30 {
            for k in 0..5 {
                pts.push(vec![(3.0f64).powi(j), k as f64 * 0.1]);
            }
        }
        let ds = Dataset::new(pts, Euclidean);
        let m = MergedGraph::build(&ds, MergedParams::new(1.0));
        assert!(
            m.tau < 0.2,
            "tau should be small at log Δ ~ 47, got {}",
            m.tau
        );
        assert!(
            m.graph.edge_count() < m.gnet_edges,
            "merged {} vs full G_net {}",
            m.graph.edge_count(),
            m.gnet_edges
        );
    }

    #[test]
    fn tau_follows_equation_17() {
        let ds = random_dataset(100, 3);
        let m = MergedGraph::build(&ds, MergedParams::new(1.0).with_z(2.0));
        assert!(m.tau > 0.0 && m.tau <= 1.0);
        // tau = min(1, z / log Δ); with z = 2 and log Δ >= 2 on this data,
        // tau must be at most 1 and exactly z / logΔ when that is < 1.
        let gnet = crate::gnet::GNet::build_fast(&ds, 1.0);
        let expect = (2.0 / (gnet.hierarchy.log_aspect() as f64).max(1.0)).min(1.0);
        assert!((m.tau - expect).abs() < 1e-12);
    }

    #[test]
    fn best_of_runs_never_bigger_than_single_run() {
        let ds = random_dataset(120, 4);
        let params = MergedParams::new(1.0);
        let single = MergedGraph::build(&ds, params);
        let best = MergedGraph::build_best_of(&ds, params, 6);
        assert!(best.graph.edge_count() <= single.graph.edge_count());
    }

    #[test]
    fn jackpot_fraction_tracks_tau() {
        let ds = random_dataset(400, 5);
        let m = MergedGraph::build(&ds, MergedParams::new(1.0));
        let frac = m.jackpot_count() as f64 / 400.0;
        assert!(
            (frac - m.tau).abs() < 0.12,
            "jackpot fraction {frac} far from tau {}",
            m.tau
        );
    }

    #[test]
    fn merged_contains_all_theta_edges() {
        let ds = random_dataset(60, 6);
        let params = MergedParams::new(1.0);
        let gnet = crate::gnet::GNet::build_fast(&ds, 1.0);
        let theta = crate::theta::ThetaGraph::build_for_pg(&ds, 1.0);
        let m = MergedGraph::merge(&gnet, &theta, params, 7);
        for (u, v) in theta.graph.edges() {
            assert!(m.graph.has_edge(u, v), "theta edge ({u}, {v}) missing");
        }
        // Non-jackpot vertices have exactly their theta edges.
        for v in 0..60u32 {
            if !m.jackpots[v as usize] {
                assert_eq!(m.graph.neighbors(v), theta.graph.neighbors(v));
            }
        }
    }
}
