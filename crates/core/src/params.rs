//! `G_net` parameters: `η` and `φ` (Eqs. 3–4 of the paper).

/// Parameters of the net-based proximity graph of Theorem 1.1:
///
/// * `η = ceil(log2(1 + 2/ε))` (Eq. 3) — always `>= 2`;
/// * `φ = 1 + 2^{η+1}` (Eq. 4) — always `>= 9`, and `φ = Θ(1/ε)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GNetParams {
    /// The approximation slack `ε ∈ (0, 1]`.
    pub epsilon: f64,
    /// `η` from Eq. (3).
    pub eta: u32,
    /// `φ` from Eq. (4); edges at level `i` connect `p` to net points within
    /// `φ * r_i`.
    pub phi: f64,
}

impl GNetParams {
    /// Derives `η` and `φ` from `ε ∈ (0, 1]`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must lie in (0, 1], got {epsilon}"
        );
        let eta = pg_metric::aspect::ceil_log2(1.0 + 2.0 / epsilon);
        let phi = 1.0 + (2.0f64).powi(eta as i32 + 1);
        debug_assert!(eta >= 2, "paper guarantees eta >= 2");
        debug_assert!(phi >= 9.0, "paper guarantees phi >= 9");
        GNetParams { epsilon, eta, phi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_one_gives_the_paper_floor_values() {
        // 1 + 2/1 = 3, ceil(log2 3) = 2, phi = 1 + 2^3 = 9.
        let p = GNetParams::new(1.0);
        assert_eq!(p.eta, 2);
        assert_eq!(p.phi, 9.0);
    }

    #[test]
    fn epsilon_half() {
        // 1 + 4 = 5, ceil(log2 5) = 3, phi = 1 + 16 = 17.
        let p = GNetParams::new(0.5);
        assert_eq!(p.eta, 3);
        assert_eq!(p.phi, 17.0);
    }

    #[test]
    fn epsilon_tenth() {
        // 1 + 20 = 21, ceil(log2 21) = 5, phi = 1 + 64 = 65.
        let p = GNetParams::new(0.1);
        assert_eq!(p.eta, 5);
        assert_eq!(p.phi, 65.0);
    }

    #[test]
    fn two_to_eta_exceeds_two_over_eps() {
        // The proof of Fact 2.2 needs 2^η - 1 >= 2/ε.
        for eps in [1.0, 0.75, 0.5, 0.3, 0.25, 0.1, 0.05, 0.01] {
            let p = GNetParams::new(eps);
            assert!(
                (2.0f64).powi(p.eta as i32) - 1.0 >= 2.0 / eps - 1e-9,
                "eps = {eps}"
            );
        }
    }

    #[test]
    fn phi_is_theta_of_inverse_epsilon() {
        for eps in [1.0, 0.5, 0.25, 0.125, 0.0625] {
            let p = GNetParams::new(eps);
            assert!(p.phi >= 1.0 / eps, "phi >= 1/eps fails at {eps}");
            assert!(p.phi <= 1.0 + 8.0 / eps, "phi <= 1 + 8/eps fails at {eps}");
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in (0, 1]")]
    fn zero_epsilon_rejected() {
        let _ = GNetParams::new(0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in (0, 1]")]
    fn epsilon_above_one_rejected() {
        let _ = GNetParams::new(1.5);
    }
}
