//! Routing over proximity graphs: the `greedy` procedure of Section 1.1,
//! its budgeted `query` wrapper, and beam search as a practical extension.

use pg_metric::{Dataset, Metric, Quantized};

use crate::graph::Graph;

/// The result of running [`greedy`] or [`query`].
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// The returned point (the last hop vertex).
    pub result: u32,
    /// Distance from `result` to the query.
    pub result_dist: f64,
    /// The full sequence of hop vertices visited, starting at `p_start`.
    /// Their distances to the query are strictly descending (the walk
    /// compares in the metric's monotone surrogate space — squared distance
    /// under `L_2` — where the descent is strict by construction).
    pub hops: Vec<u32>,
    /// Number of distance computations performed.
    pub dist_comps: u64,
    /// Whether the procedure self-terminated (line 4 of the pseudocode), as
    /// opposed to being stopped by the budget.
    pub self_terminated: bool,
}

/// The `greedy(p_start, q)` procedure of Section 1.1, verbatim:
///
/// ```text
/// 1. p° ← p_start
/// 2. repeat
/// 3.   p⁺_out ← the out-neighbor of p° closest to q
/// 4.   if p⁺_out = nil or D(p°, q) <= D(p⁺_out, q) then return p°
/// 5.   p° ← p⁺_out
/// ```
///
/// On a `(1+ε)`-proximity graph this always returns a `(1+ε)`-ANN of `q`
/// (Fact 2.1), from **any** start vertex.
pub fn greedy<P, M: Metric<P>>(
    graph: &Graph,
    data: &Dataset<P, M>,
    p_start: u32,
    q: &P,
) -> GreedyOutcome {
    query(graph, data, p_start, q, u64::MAX)
}

/// The budgeted `query(p_start, q, Q)` wrapper of Section 1.1: runs `greedy`
/// until it self-terminates or the distance budget runs out, then returns
/// the last hop vertex.
///
/// Budget semantics (pinned by the regression tests below):
///
/// * A distance is only computed while `comps < budget`; when the budget
///   runs out **mid-scan**, the closest out-neighbor of `cur` is unknown, so
///   no further hop is taken and the last fully-processed hop vertex is
///   returned with `self_terminated = false`.
/// * A scan that **completes** always executes line 4 — including when the
///   budget ran out exactly at the scan's last neighbor: hopping costs no
///   distance computation, so the walk takes that free improving hop (the
///   next scan then terminates immediately). Consequently a budget equal to
///   greedy's exact cost reproduces greedy's result *and* its
///   `self_terminated = true` flag.
/// * The initial `D(p_start, q)` evaluation always happens (the result
///   distance must be known), so the effective budget is at least 1.
///
/// All comparisons run in the metric's monotone surrogate space
/// ([`Metric::surrogate`] — squared distance under `L_2`, so the per-hop
/// `sqrt`s disappear); the single reported `result_dist` is mapped back to
/// the true distance at the end. Each surrogate evaluation counts as one
/// distance computation, so the accounting is identical to evaluating `D`
/// directly. Surrogate order refines distance order (equal surrogates map
/// to equal distances; distinct surrogates can round to equal distances),
/// so the walk — hops, result, termination flag — matches the
/// direct-distance walk except where rounded distances tie while the
/// pre-rounding comparison does not, in which case the surrogate decision
/// is the more accurate one.
pub fn query<P, M: Metric<P>>(
    graph: &Graph,
    data: &Dataset<P, M>,
    p_start: u32,
    q: &P,
    budget: u64,
) -> GreedyOutcome {
    assert!((p_start as usize) < data.len(), "start vertex out of range");
    let mut comps: u64 = 0;
    let mut cur = p_start;
    let mut hops = vec![cur];

    comps += 1;
    let mut s_cur = data.surrogate_to(cur as usize, q);

    loop {
        // Line 3: the out-neighbor of cur closest to q.
        let mut best: Option<(u32, f64)> = None;
        let mut truncated = false;
        for &nb in graph.neighbors(cur) {
            if comps >= budget {
                truncated = true;
                break;
            }
            comps += 1;
            let s = data.surrogate_to(nb as usize, q);
            if best.is_none_or(|(_, bs)| s < bs) {
                best = Some((nb, s));
            }
        }
        if truncated {
            // Forced termination mid-scan: the partial scan cannot certify
            // the closest out-neighbor, so the last hop vertex is returned
            // as-is (see the budget semantics above).
            return GreedyOutcome {
                result: cur,
                result_dist: data.dist_from_surrogate(s_cur),
                hops,
                dist_comps: comps,
                self_terminated: false,
            };
        }
        // Line 4.
        match best {
            None => {
                return GreedyOutcome {
                    result: cur,
                    result_dist: data.dist_from_surrogate(s_cur),
                    hops,
                    dist_comps: comps,
                    self_terminated: true,
                };
            }
            Some((_, s)) if s_cur <= s => {
                return GreedyOutcome {
                    result: cur,
                    result_dist: data.dist_from_surrogate(s_cur),
                    hops,
                    dist_comps: comps,
                    self_terminated: true,
                };
            }
            Some((nb, s)) => {
                // Line 5.
                cur = nb;
                s_cur = s;
                hops.push(cur);
            }
        }
    }
}

/// The result of one [`beam_search_detailed`] call: everything a scoring
/// layer (`pg_eval`) needs about a single query, so quality/cost frontiers
/// can be computed without re-running or re-instrumenting the search.
#[derive(Debug, Clone, PartialEq)]
pub struct BeamOutcome {
    /// Up to `k` results ascending by true distance, ties broken by id —
    /// the same order [`Dataset::k_nearest_brute`] uses, so result lists are
    /// directly comparable against brute-force ground truth.
    pub results: Vec<(u32, f64)>,
    /// Number of distance computations performed by this query.
    pub dist_comps: u64,
    /// Number of vertices *expanded* — popped from the frontier with their
    /// out-neighbor list scanned. The beam analogue of greedy's hop count:
    /// it measures graph-walk length, where `dist_comps` measures metric
    /// work.
    pub expansions: u64,
}

/// Beam search (best-first with a width-`ef` frontier), the de-facto search
/// routine of practical systems (HNSW's `SEARCH-LAYER`). Not part of the
/// paper's model — provided as an extension so the comparison experiments
/// can report recall under the search procedure practitioners actually use.
///
/// Returns up to `k` results ascending by distance and the number of
/// distance computations. [`beam_search_detailed`] additionally reports the
/// expansion count; this wrapper discards it.
///
/// Heap ordering and the frontier cutoff run in surrogate space (squared
/// distance under `L_2`; ties still break by id, identically in both
/// spaces); only the `k` reported distances are mapped back.
pub fn beam_search<P, M: Metric<P>>(
    graph: &Graph,
    data: &Dataset<P, M>,
    p_start: u32,
    q: &P,
    ef: usize,
    k: usize,
) -> (Vec<(u32, f64)>, u64) {
    let out = beam_search_detailed(graph, data, p_start, q, ef, k);
    (out.results, out.dist_comps)
}

/// [`beam_search`] with full per-query accounting: identical walk, identical
/// results and `dist_comps` (the plain wrapper delegates here), plus the
/// number of expanded vertices — the detail the evaluation layer scores
/// from.
pub fn beam_search_detailed<P, M: Metric<P>>(
    graph: &Graph,
    data: &Dataset<P, M>,
    p_start: u32,
    q: &P,
    ef: usize,
    k: usize,
) -> BeamOutcome {
    let BeamSurrogate {
        mut results,
        dist_comps,
        expansions,
    } = beam_search_surrogate(graph, data, p_start, q, ef, k);
    for e in &mut results {
        e.1 = data.dist_from_surrogate(e.1);
    }
    BeamOutcome {
        results,
        dist_comps,
        expansions,
    }
}

/// The result of one [`beam_search_surrogate`] call: the same walk as
/// [`beam_search_detailed`], but with the result list still in **surrogate
/// space** (squared distance under `L_2`), sorted by `(surrogate, id)` and
/// truncated to `k`. This is the merge-ready form a sharded search needs:
/// per-shard top-`k` lists can be merged on the exact surrogate keys (with
/// ids remapped to a global id space) and mapped to true distances once,
/// reproducing the single-index `(distance, id)` order bit-for-bit — mapping
/// to distances *before* merging would round away ties the surrogate keys
/// still distinguish.
#[derive(Debug, Clone, PartialEq)]
pub struct BeamSurrogate {
    /// Up to `k` results as `(id, surrogate)`, ascending by surrogate with
    /// ties broken by id. [`Metric::dist_from_surrogate`]
    /// (`pg_metric::Metric::dist_from_surrogate`) maps each key to the true
    /// distance; equal surrogates always map to equal distances, so this
    /// order refines the [`BeamOutcome::results`] order.
    pub results: Vec<(u32, f64)>,
    /// Number of distance computations performed by this query (one per
    /// surrogate evaluation — identical accounting to [`BeamOutcome`]).
    pub dist_comps: u64,
    /// Number of vertices expanded (see [`BeamOutcome::expansions`]).
    pub expansions: u64,
}

/// The surrogate-space core of [`beam_search_detailed`]: identical walk,
/// identical accounting, but the `(id, surrogate)` result list is returned
/// before the final map to true distances (see [`BeamSurrogate`] for why a
/// sharded merge needs exactly this form). [`beam_search_detailed`] is this
/// plus one `dist_from_surrogate` per result.
pub fn beam_search_surrogate<P, M: Metric<P>>(
    graph: &Graph,
    data: &Dataset<P, M>,
    p_start: u32,
    q: &P,
    ef: usize,
    k: usize,
) -> BeamSurrogate {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Cand(f64, u32);
    impl Eq for Cand {}
    impl PartialOrd for Cand {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Cand {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }

    assert!(ef >= 1);
    let mut comps: u64 = 0;
    let mut expansions: u64 = 0;
    let mut visited = vec![false; data.len()];
    visited[p_start as usize] = true;
    comps += 1;
    let d0 = data.surrogate_to(p_start as usize, q);

    // `frontier`: min-heap of candidates to expand; `results`: max-heap of
    // the best `ef` seen. `worst` mirrors `results.peek()` and is refreshed
    // only when the heap changes, instead of re-peeking per neighbor.
    let mut frontier: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
    let mut results: BinaryHeap<Cand> = BinaryHeap::new();
    frontier.push(Reverse(Cand(d0, p_start)));
    results.push(Cand(d0, p_start));
    let mut worst = d0;

    while let Some(Reverse(Cand(d, v))) = frontier.pop() {
        if results.len() >= ef && d > worst {
            break;
        }
        expansions += 1;
        for &nb in graph.neighbors(v) {
            if visited[nb as usize] {
                continue;
            }
            visited[nb as usize] = true;
            comps += 1;
            let dn = data.surrogate_to(nb as usize, q);
            if results.len() < ef || dn < worst {
                frontier.push(Reverse(Cand(dn, nb)));
                results.push(Cand(dn, nb));
                if results.len() > ef {
                    results.pop();
                }
                worst = results.peek().map(|c| c.0).unwrap_or(f64::INFINITY);
            }
        }
    }

    let mut out: Vec<(u32, f64)> = results.into_iter().map(|Cand(d, v)| (v, d)).collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    out.truncate(k);
    BeamSurrogate {
        results: out,
        dist_comps: comps,
        expansions,
    }
}

/// The result of one [`beam_search_quantized_surrogate`] call. The walk ran
/// in the **quantized** surrogate space, but `results` carries **exact**
/// `f64` surrogates: every gathered candidate was re-ranked against the
/// full-precision points before truncation (the re-rank contract of
/// `pg_metric::quant`). The list is therefore in the same merge-ready
/// `(exact surrogate, id)` order as [`BeamSurrogate`], and a sharded merge
/// can consume either interchangeably.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantBeamSurrogate {
    /// Up to `k` results as `(id, exact surrogate)`, ascending by surrogate
    /// with ties broken by id — identical ordering semantics to
    /// [`BeamSurrogate::results`].
    pub results: Vec<(u32, f64)>,
    /// Size of the candidate set that was re-ranked (`<= ef`; smaller only
    /// when fewer vertices are reachable). Whenever the exact top-`k` is
    /// among these candidates, `results` **equals** the exact top-`k`.
    pub candidates: usize,
    /// Distance computations: quantized surrogate evaluations during the
    /// walk **plus** one exact evaluation per re-ranked candidate. Counting
    /// both keeps quantized frontier rows honest — the re-rank is not free.
    pub dist_comps: u64,
    /// Number of vertices expanded (see [`BeamOutcome::expansions`]).
    pub expansions: u64,
}

/// Beam search navigating in a compact representation with an exact `f64`
/// re-rank before truncation: the quantized counterpart of
/// [`beam_search_surrogate`].
///
/// The walk is the same best-first loop, but every heap/cutoff comparison
/// uses `compact.surrogate(...)` — the approximate squared distance on the
/// quantized codes — so the hot loop streams 4 bytes (`pg_metric::F32Points`)
/// or 1 byte (`pg_metric::Sq8Points`) per coordinate instead of 8. When the
/// walk
/// finishes, the **entire** `ef`-candidate set (not just the top `k` by
/// quantized order) is re-scored with exact surrogates from `data`, sorted
/// by `(exact surrogate, id)`, and only then truncated to `k`. Quantization
/// can thus only affect which candidates are gathered, never their reported
/// order or values.
///
/// # Panics
/// If `compact` does not describe exactly the points of `data` (length
/// mismatch), or `ef == 0`.
pub fn beam_search_quantized_surrogate<P, M, C>(
    graph: &Graph,
    data: &Dataset<P, M>,
    compact: &C,
    p_start: u32,
    q: &P,
    ef: usize,
    k: usize,
) -> QuantBeamSurrogate
where
    P: AsRef<[f64]>,
    M: Metric<P>,
    C: Quantized + ?Sized,
{
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Cand(f64, u32);
    impl Eq for Cand {}
    impl PartialOrd for Cand {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Cand {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }

    assert!(ef >= 1);
    assert_eq!(
        compact.len(),
        data.len(),
        "compact store and dataset must describe the same points"
    );
    let pq = compact.prepare(q.as_ref());
    let mut comps: u64 = 0;
    let mut expansions: u64 = 0;
    let mut visited = vec![false; data.len()];
    visited[p_start as usize] = true;
    comps += 1;
    let d0 = compact.surrogate(p_start as usize, &pq);

    let mut frontier: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
    let mut results: BinaryHeap<Cand> = BinaryHeap::new();
    frontier.push(Reverse(Cand(d0, p_start)));
    results.push(Cand(d0, p_start));
    let mut worst = d0;

    while let Some(Reverse(Cand(d, v))) = frontier.pop() {
        if results.len() >= ef && d > worst {
            break;
        }
        expansions += 1;
        for &nb in graph.neighbors(v) {
            if visited[nb as usize] {
                continue;
            }
            visited[nb as usize] = true;
            comps += 1;
            let dn = compact.surrogate(nb as usize, &pq);
            if results.len() < ef || dn < worst {
                frontier.push(Reverse(Cand(dn, nb)));
                results.push(Cand(dn, nb));
                if results.len() > ef {
                    results.pop();
                }
                worst = results.peek().map(|c| c.0).unwrap_or(f64::INFINITY);
            }
        }
    }

    // Exact re-rank of the full candidate set: one full-precision surrogate
    // per candidate, counted like any other distance computation.
    let candidates = results.len();
    let mut out: Vec<(u32, f64)> = results
        .into_iter()
        .map(|Cand(_, v)| {
            comps += 1;
            (v, data.surrogate_to(v as usize, q))
        })
        .collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    out.truncate(k);
    QuantBeamSurrogate {
        results: out,
        candidates,
        dist_comps: comps,
        expansions,
    }
}

/// [`beam_search_quantized_surrogate`] with the exact surrogates mapped to
/// true distances: the quantized counterpart of [`beam_search_detailed`],
/// returning the same [`BeamOutcome`] shape so scoring layers and adapters
/// consume either path uniformly. The re-ranked `candidates` count is
/// dropped by this wrapper.
pub fn beam_search_quantized<P, M, C>(
    graph: &Graph,
    data: &Dataset<P, M>,
    compact: &C,
    p_start: u32,
    q: &P,
    ef: usize,
    k: usize,
) -> BeamOutcome
where
    P: AsRef<[f64]>,
    M: Metric<P>,
    C: Quantized + ?Sized,
{
    let QuantBeamSurrogate {
        mut results,
        dist_comps,
        expansions,
        ..
    } = beam_search_quantized_surrogate(graph, data, compact, p_start, q, ef, k);
    for e in &mut results {
        e.1 = data.dist_from_surrogate(e.1);
    }
    BeamOutcome {
        results,
        dist_comps,
        expansions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::{Dataset, Euclidean};

    fn line_dataset(n: usize) -> Dataset<Vec<f64>, Euclidean> {
        Dataset::new((0..n).map(|i| vec![i as f64]).collect(), Euclidean)
    }

    /// Path graph: each vertex points to its neighbors on the line.
    fn path_graph(n: usize) -> Graph {
        Graph::from_adjacency(
            (0..n)
                .map(|v| {
                    let mut a = Vec::new();
                    if v > 0 {
                        a.push(v as u32 - 1);
                    }
                    if v + 1 < n {
                        a.push(v as u32 + 1);
                    }
                    a
                })
                .collect(),
        )
    }

    #[test]
    fn greedy_walks_the_line_to_the_nearest_point() {
        let ds = line_dataset(20);
        let g = path_graph(20);
        let out = greedy(&g, &ds, 0, &vec![17.3]);
        assert_eq!(out.result, 17);
        assert!(out.self_terminated);
        assert_eq!(out.hops, (0..=17).collect::<Vec<u32>>());
    }

    #[test]
    fn greedy_hop_distances_strictly_descend() {
        let ds = line_dataset(30);
        let g = path_graph(30);
        let q = vec![22.4];
        let out = greedy(&g, &ds, 3, &q);
        let dists: Vec<f64> = out
            .hops
            .iter()
            .map(|&h| ds.dist_to(h as usize, &q))
            .collect();
        assert!(dists.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn greedy_on_complete_graph_returns_exact_nn_in_one_hop() {
        let ds = line_dataset(15);
        let g = Graph::complete(15);
        let out = greedy(&g, &ds, 14, &vec![3.2]);
        assert_eq!(out.result, 3);
        assert_eq!(out.hops.len(), 2); // start + one hop
    }

    #[test]
    fn greedy_terminates_at_sink() {
        let ds = line_dataset(5);
        let g = Graph::empty(5);
        let out = greedy(&g, &ds, 2, &vec![0.0]);
        assert_eq!(out.result, 2);
        assert!(out.self_terminated);
        assert_eq!(out.dist_comps, 1);
    }

    #[test]
    fn budget_stops_the_walk() {
        let ds = line_dataset(50);
        let g = path_graph(50);
        // Budget of 6 distance computations: enough for only a couple hops.
        let out = query(&g, &ds, 0, &vec![49.0], 6);
        assert!(!out.self_terminated);
        assert_eq!(out.dist_comps, 6);
        assert!(out.result < 49);
        // Unbudgeted run reaches the target.
        let full = greedy(&g, &ds, 0, &vec![49.0]);
        assert_eq!(full.result, 49);
        assert!(full.dist_comps > 6);
    }

    #[test]
    fn dist_comps_accounting_on_path() {
        let ds = line_dataset(10);
        let g = path_graph(10);
        // Start at 0, query at 0: one distance for the start, two for the
        // neighbor scan... vertex 0 has one neighbor.
        let out = greedy(&g, &ds, 0, &vec![0.0]);
        assert_eq!(out.result, 0);
        assert_eq!(out.dist_comps, 2); // D(0, q) + D(1, q)
    }

    #[test]
    fn budget_one_returns_start_without_scanning() {
        let ds = line_dataset(50);
        let g = path_graph(50);
        let out = query(&g, &ds, 0, &vec![49.0], 1);
        assert_eq!(out.result, 0);
        assert_eq!(out.dist_comps, 1);
        assert_eq!(out.hops, vec![0]);
        assert!(!out.self_terminated);
    }

    #[test]
    fn budget_at_exact_scan_boundary_takes_the_free_hop() {
        // Budget 2: the start evaluation plus vertex 0's single-neighbor
        // scan, which completes exactly as the budget runs out. The hop to
        // the found improvement costs no distance computation, so the walk
        // takes it; the next scan is then truncated immediately.
        let ds = line_dataset(10);
        let g = path_graph(10);
        let out = query(&g, &ds, 0, &vec![9.0], 2);
        assert_eq!(out.result, 1);
        assert_eq!(out.dist_comps, 2);
        assert_eq!(out.hops, vec![0, 1]);
        assert!(!out.self_terminated);
    }

    #[test]
    fn budget_equal_to_greedy_cost_reports_self_termination() {
        // Greedy from 0 on a query at 0 costs exactly 2 distances and
        // self-terminates; a budget of exactly 2 must reproduce that,
        // including the flag (the completed scan still executes line 4).
        let ds = line_dataset(10);
        let g = path_graph(10);
        let out = query(&g, &ds, 0, &vec![0.0], 2);
        assert_eq!(out.result, 0);
        assert_eq!(out.dist_comps, 2);
        assert!(out.self_terminated);
    }

    #[test]
    fn budget_max_is_exactly_greedy() {
        let ds = line_dataset(40);
        let g = path_graph(40);
        let q = vec![33.6];
        let a = query(&g, &ds, 2, &q, u64::MAX);
        let b = greedy(&g, &ds, 2, &q);
        assert_eq!(a.result, b.result);
        assert_eq!(a.result_dist, b.result_dist);
        assert_eq!(a.hops, b.hops);
        assert_eq!(a.dist_comps, b.dist_comps);
        assert_eq!(a.self_terminated, b.self_terminated);
    }

    #[test]
    fn budget_is_never_exceeded_and_sink_self_terminates() {
        let ds = line_dataset(30);
        let g = path_graph(30);
        for budget in 1..=12u64 {
            let out = query(&g, &ds, 0, &vec![29.0], budget);
            assert!(out.dist_comps <= budget.max(1));
        }
        // A sink needs only the start evaluation: budget 1 covers the whole
        // procedure, so this is a genuine self-termination (line 4, nil).
        let out = query(&Graph::empty(30), &ds, 4, &vec![0.0], 1);
        assert_eq!(out.dist_comps, 1);
        assert!(out.self_terminated);
    }

    #[test]
    fn beam_search_finds_knn_on_path() {
        let ds = line_dataset(40);
        let g = path_graph(40);
        let (res, _comps) = beam_search(&g, &ds, 0, &vec![25.2], 8, 3);
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].0, 25);
        assert_eq!(res[1].0, 26);
        assert_eq!(res[2].0, 24);
    }

    #[test]
    fn beam_results_deterministic_under_distance_ties() {
        // Vertices 1..=6 all lie at distance 2 from the query; with ef = 3
        // the heap boundary falls inside the tie group. The Cand ordering
        // breaks distance ties by id, so the smallest ids must be kept —
        // and the output must agree with brute force's (dist, id) order.
        let pts: Vec<Vec<f64>> = vec![
            vec![0.0],
            vec![2.0],
            vec![-2.0],
            vec![2.0],
            vec![-2.0],
            vec![2.0],
            vec![-2.0],
        ];
        let ds = Dataset::new(pts, Euclidean);
        let g = Graph::complete(7);
        let q = vec![0.0];
        let (res, _) = beam_search(&g, &ds, 0, &q, 3, 3);
        assert_eq!(res, vec![(0, 0.0), (1, 2.0), (2, 2.0)]);
        // Re-running is bit-identical.
        let (res2, comps2) = beam_search(&g, &ds, 0, &q, 3, 3);
        assert_eq!(res, res2);
        let (_, comps) = beam_search(&g, &ds, 0, &q, 3, 3);
        assert_eq!(comps, comps2);
    }

    #[test]
    fn beam_on_complete_graph_with_full_width_is_exact() {
        let ds = line_dataset(25);
        let g = Graph::complete(25);
        let q = vec![11.3];
        let (res, _) = beam_search(&g, &ds, 24, &q, 25, 6);
        let brute = ds.k_nearest_brute(&q, 6);
        let brute_ids: Vec<(u32, f64)> = brute.into_iter().map(|(i, d)| (i as u32, d)).collect();
        assert_eq!(res, brute_ids);
    }

    #[test]
    fn beam_detailed_agrees_with_plain_wrapper_and_counts_expansions() {
        let ds = line_dataset(40);
        let g = path_graph(40);
        let q = vec![25.2];
        let (res, comps) = beam_search(&g, &ds, 0, &q, 8, 3);
        let det = beam_search_detailed(&g, &ds, 0, &q, 8, 3);
        assert_eq!(det.results, res);
        assert_eq!(det.dist_comps, comps);
        // The walk expands at least every vertex on the path to the answer,
        // and never more vertices than it evaluated distances for.
        assert!(det.expansions >= 25);
        assert!(det.expansions <= det.dist_comps);
        // A start with no out-edges is popped once and expands nothing
        // beyond itself: exactly one expansion.
        let det = beam_search_detailed(&Graph::empty(40), &ds, 7, &q, 4, 1);
        assert_eq!(det.expansions, 1);
        assert_eq!(det.results, vec![(7, ds.dist_to(7, &q))]);
    }

    #[test]
    fn beam_surrogate_is_the_detailed_walk_before_the_distance_map() {
        let ds = line_dataset(40);
        let g = path_graph(40);
        let q = vec![25.2];
        let sur = beam_search_surrogate(&g, &ds, 0, &q, 8, 3);
        let det = beam_search_detailed(&g, &ds, 0, &q, 8, 3);
        assert_eq!(sur.dist_comps, det.dist_comps);
        assert_eq!(sur.expansions, det.expansions);
        assert_eq!(sur.results.len(), det.results.len());
        for (s, d) in sur.results.iter().zip(det.results.iter()) {
            assert_eq!(s.0, d.0);
            assert_eq!(ds.dist_from_surrogate(s.1), d.1);
        }
        // Surrogate keys are sorted (surrogate, id) — the merge invariant.
        assert!(sur
            .results
            .windows(2)
            .all(|w| w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)));
    }

    #[test]
    fn beam_with_ef_one_behaves_like_greedy_result_quality() {
        let ds = line_dataset(40);
        let g = path_graph(40);
        let q = vec![31.7];
        let (res, _) = beam_search(&g, &ds, 2, &q, 1, 1);
        let out = greedy(&g, &ds, 2, &q);
        // ef=1 beam and greedy both converge to the same local optimum on a
        // path graph.
        assert_eq!(res[0].0, out.result);
    }

    #[test]
    fn quantized_beam_at_full_width_equals_the_exact_beam() {
        use pg_metric::{CompactPoints, QuantKind};
        let n = 30;
        let ds = line_dataset(n);
        let g = path_graph(n);
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let q = vec![13.4];
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let compact = CompactPoints::from_rows(kind, &rows).unwrap();
            // ef = n on a connected graph gathers every vertex, so the
            // re-ranked top-k must equal the exact top-k bit-for-bit.
            let exact = beam_search_detailed(&g, &ds, 0, &q, n, 5);
            let quant = beam_search_quantized(&g, &ds, &compact, 0, &q, n, 5);
            assert_eq!(exact.results, quant.results);

            // Accounting: the quantized walk visited all n vertices and then
            // re-ranked all n candidates.
            let sur = beam_search_quantized_surrogate(&g, &ds, &compact, 0, &q, n, 5);
            assert_eq!(sur.candidates, n);
            assert_eq!(sur.dist_comps, 2 * n as u64);
        }
    }

    #[test]
    fn quantized_rerank_reports_exact_surrogate_keys() {
        use pg_metric::{CompactPoints, QuantKind};
        let n = 25;
        let ds = line_dataset(n);
        let g = path_graph(n);
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let compact = CompactPoints::from_rows(QuantKind::Sq8, &rows).unwrap();
        let q = vec![7.3];
        let sur = beam_search_quantized_surrogate(&g, &ds, &compact, 0, &q, 6, 6);
        for &(id, s) in &sur.results {
            // Every reported key is the exact full-precision surrogate, not
            // the quantized one the walk navigated by.
            assert_eq!(s, ds.surrogate_to(id as usize, &q));
        }
    }
}
