//! Proximity graphs for similarity search — the primary contribution of
//! Lu & Tao, *Proximity Graphs for Similarity Search: Fast Construction,
//! Lower Bounds, and Euclidean Separation* (PODS 2025), implemented from
//! scratch.
//!
//! # What lives here
//!
//! * [`graph`] — CSR directed graphs over dataset ids, plus failure
//!   injection (edge removal) and the merge operation of Section 5;
//! * [`search`] — the `greedy` walk and budgeted `query` of Section 1.1,
//!   verbatim, counting distance computations; beam search as an extension;
//! * [`navigability`] — the `(1+ε)`-navigability checker of Fact 2.1 and an
//!   exhaustive operational PG checker;
//! * [`params`] — `η` and `φ` (Eqs. 3–4);
//! * [`gnet`] — `G_net` of Theorem 1.1 with three equivalent constructions
//!   (naive, fast relatives-cascade, and the Section 2.4 dynamic-ANN
//!   procedure);
//! * [`theta`] — cone covers and θ-graphs of Section 5.1 (Lemma 5.1:
//!   an `(ε/32)`-graph is a `(1+ε)`-PG);
//! * [`merged`] — the merged Euclidean graph of Theorem 1.3 with jackpot
//!   vertex sampling (Eq. 17) and best-of-runs amplification (Section 5.3);
//! * [`dynamic`] — an insert/delete extension: logarithmic rebuilding on top
//!   of `G_net`, keeping the `(1+ε)` guarantee at all times;
//! * [`engine`] — the parallel batched query executor: shards query batches
//!   across a thread pool with results identical to the sequential routines;
//! * [`snapshot`] — engine persistence: `QueryEngine::save`/`load` through
//!   the versioned `pg_store` on-disk format, with a loaded engine answering
//!   bit-identically to the one that was saved;
//! * [`sharded`] — one logical index over millions of points as `S`
//!   independent per-shard sub-indexes, searched in parallel and merged in
//!   surrogate space with a deterministic tie-break, so results are
//!   bit-identical across shard counts and thread counts.
//!
//! The crate map, the flat-storage design, and the snapshot format spec
//! live in `ARCHITECTURE.md` at the repository root.
//!
//! # Quick example
//!
//! ```
//! use pg_core::gnet::GNet;
//! use pg_core::search::greedy;
//! use pg_metric::{Dataset, Euclidean};
//!
//! let points: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i % 7) as f64]).collect();
//! let data = Dataset::new(points, Euclidean);
//! let pg = GNet::build(&data, 1.0); // a 2-approximate proximity graph
//!
//! let query = vec![17.2, 3.4];
//! let out = greedy(&pg.graph, &data, 0, &query);
//! let (exact, _) = data.nearest_brute(&query);
//! assert!(out.result_dist <= 2.0 * data.dist_to(exact, &query));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dynamic;
pub mod engine;
pub mod gnet;
pub mod graph;
pub mod merged;
pub mod navigability;
pub mod params;
pub mod reorder;
pub mod search;
pub mod sharded;
pub mod snapshot;
pub mod theta;

pub use dynamic::{DynamicAnswer, DynamicGNet, DynamicStats};
pub use engine::{BatchBeamDetail, BatchBeamOutcome, BatchOutcome, QueryEngine};
pub use gnet::{gnet_edges_with_phi, GNet, GNetIndependent};
pub use graph::{Graph, GraphBuilder};
pub use merged::{MergedGraph, MergedParams};
pub use navigability::{check_navigable, check_pg_exhaustive, Starts, Violation};
pub use params::GNetParams;
pub use reorder::{bfs_degree_order, mean_edge_gap, Reordering};
pub use search::{
    beam_search, beam_search_detailed, beam_search_quantized, beam_search_quantized_surrogate,
    beam_search_surrogate, greedy, query, BeamOutcome, BeamSurrogate, GreedyOutcome,
    QuantBeamSurrogate,
};
pub use sharded::{ShardAssignment, ShardedEngine};
pub use snapshot::{AnyEngine, SnapshotMetric};
pub use theta::{ConeSet, ThetaGraph};
