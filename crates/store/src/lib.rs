//! Versioned on-disk index snapshots — the durable boundary between
//! offline construction and online serving.
//!
//! The paper's pipeline is build-once, query-many: constructing `G_net`
//! (Theorem 1.1) is the expensive phase, while queries are cheap greedy
//! walks. A serving system therefore builds the index offline, persists it,
//! and loads it for online traffic — this crate defines that persistence
//! layer as a small, hand-rolled binary format over `std::io` with **no
//! external dependencies** (the build environment has no crates.io access;
//! see `crates/compat/README.md`).
//!
//! A [`Snapshot`] is the raw, serialization-ready view of an index:
//!
//! * [`IndexMeta`] — metric tag, dimensionality, point count, entry point,
//!   and optional build parameters (`ε`, `η`, `φ`);
//! * the CSR graph arrays (`offsets`, `targets`) exactly as `pg_core`'s
//!   `Graph` stores them;
//! * the flat row-major coordinate buffer exactly as `pg_metric`'s
//!   `FlatPoints` stores it.
//!
//! This crate depends on nothing and knows nothing about graphs or metrics
//! beyond these raw arrays; `pg_core::snapshot` does the typed wiring
//! (`QueryEngine::save` / `QueryEngine::load`) and re-validates the
//! graph-level invariants on load.
//!
//! # File format (versions 1 and 2)
//!
//! Everything is **little-endian**. The byte-level layout table lives in
//! `ARCHITECTURE.md` at the repository root (§ "Index snapshots"); in
//! brief: an 16-byte header (magic `PGIXSNAP`, `format_version`,
//! `section_count`), followed by three framed sections (`META`, `GRPH`,
//! `PNTS`) in that fixed order, each carrying its payload length and an
//! FNV-1a 64 checksum ([`checksum`]) of the payload.
//!
//! Version 2 **appends** exactly one more framed section carrying a
//! compact-points store ([`QuantSection`]): tag `PN32` (row-major `f32`
//! coordinates) or `PNQ8` (8-bit scalar-quantized codes with per-dimension
//! affine parameters). Append-only evolution: the first three sections are
//! byte-identical to version 1, a plain snapshot still writes version 1,
//! and readers accept both versions — so every version-1 file on disk
//! stays loadable forever. A typed loader whose quantization expectation
//! disagrees with the file gets [`SnapshotError::QuantMismatch`], never a
//! panic.
//!
//! Corrupt, truncated, or incompatible files **never panic and never yield
//! a partially-read index**: every failure is a typed [`SnapshotError`],
//! and a [`Snapshot`] is only returned after all checksums and structural
//! cross-checks pass.
//!
//! Writes are **atomic and durable**: [`Snapshot::save`] stages the bytes
//! in a temporary sibling file, `sync_all`s it, and renames it over the
//! destination, so a reader never observes a torn snapshot and a crash
//! mid-save leaves the previous file intact (see [`Snapshot::save`] for
//! the full crash-safety contract). The I/O steps carry `pg_fault`
//! failpoints ([`sites`]) behind the `failpoints` cargo feature, and
//! `tests/chaos.rs` drives every one of them.
//!
//! ```
//! use pg_store::{BuildParams, IndexMeta, MetricTag, Snapshot};
//!
//! let snap = Snapshot {
//!     meta: IndexMeta {
//!         metric: MetricTag::Euclidean,
//!         dims: 2,
//!         n: 3,
//!         entry_point: 0,
//!         build: Some(BuildParams { epsilon: 1.0, eta: 2, phi: 9.0 }),
//!     },
//!     offsets: vec![0, 2, 3, 4],
//!     targets: vec![1, 2, 0, 0],
//!     coords: vec![0.0, 0.0, 3.0, 4.0, 0.0, 1.0],
//!     quant: None,
//! };
//! let bytes = snap.to_bytes().unwrap();
//! let back = Snapshot::from_bytes(&bytes).unwrap();
//! assert_eq!(back, snap);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

/// The 8-byte magic prefix of every snapshot file.
pub const MAGIC: [u8; 8] = *b"PGIXSNAP";

/// The snapshot format version written for snapshots **without** a
/// quantized section — the original three-section layout, byte-for-byte.
///
/// Versioning rule: readers accept exactly the versions they know
/// (currently `1` and [`FORMAT_VERSION_QUANT`]) and reject anything newer
/// with [`SnapshotError::UnsupportedVersion`] — a new layout means a
/// version bump, never a silent reinterpretation of old bytes.
pub const FORMAT_VERSION: u32 = 1;

/// The snapshot format version written when a quantized-points section
/// ([`QuantSection`]; tag `PN32` or `PNQ8`) is appended after `PNTS`. The
/// newest version this crate reads.
pub const FORMAT_VERSION_QUANT: u32 = 2;

/// Bytes of the fixed file header: magic + `format_version` +
/// `section_count`.
pub const HEADER_LEN: usize = 8 + 4 + 4;

/// Bytes of a section frame preceding each payload: 4-byte ASCII tag +
/// `payload_len: u64` + `checksum: u64`.
pub const SECTION_HEADER_LEN: usize = 4 + 8 + 8;

/// Incremental FNV-1a 64-bit hasher — the single home of the hash
/// constants every on-disk format in this workspace checksums with
/// (`pg_store` snapshot sections via [`checksum`], the `pg_eval`
/// ground-truth cache and its workload fingerprints via streaming
/// updates).
///
/// ```
/// use pg_store::{checksum, Fnv64};
///
/// let mut h = Fnv64::new();
/// h.update(b"split ");
/// h.update(b"stream");
/// assert_eq!(h.finish(), checksum(b"split stream"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the FNV-1a 64 offset basis (`0xcbf29ce484222325`).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Fnv64(0xcbf29ce484222325)
    }

    /// Folds `bytes` into the state (prime `0x100000001b3`).
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a 64-bit hash — the per-section checksum function of the format
/// (one-shot form of [`Fnv64`]).
///
/// Chosen because it is tiny, dependency-free, byte-order independent and
/// fully specified, so independent implementations of the format can
/// reproduce it exactly.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Identifies which metric an index was built under.
///
/// Version 1 covers the three `L_p` metrics the experiments run on; new
/// metrics append new codes (existing codes are frozen forever).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricTag {
    /// `L_2` (code 0) — `pg_metric::Euclidean`.
    Euclidean,
    /// `L_1` (code 1) — `pg_metric::Manhattan`.
    Manhattan,
    /// `L_inf` (code 2) — `pg_metric::Chebyshev`.
    Chebyshev,
}

impl MetricTag {
    /// The on-disk `u32` code.
    pub fn code(self) -> u32 {
        match self {
            MetricTag::Euclidean => 0,
            MetricTag::Manhattan => 1,
            MetricTag::Chebyshev => 2,
        }
    }

    /// Decodes an on-disk code, `None` for unknown codes.
    pub fn from_code(code: u32) -> Option<Self> {
        match code {
            0 => Some(MetricTag::Euclidean),
            1 => Some(MetricTag::Manhattan),
            2 => Some(MetricTag::Chebyshev),
            _ => None,
        }
    }
}

impl fmt::Display for MetricTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricTag::Euclidean => write!(f, "L2 (Euclidean)"),
            MetricTag::Manhattan => write!(f, "L1 (Manhattan)"),
            MetricTag::Chebyshev => write!(f, "Linf (Chebyshev)"),
        }
    }
}

/// The sections of a snapshot, in file order. Versions 1 and 2 share the
/// first three; version 2 appends exactly one of the two quantized tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionTag {
    /// `META`: index metadata ([`IndexMeta`]).
    Meta,
    /// `GRPH`: the CSR graph arrays.
    Graph,
    /// `PNTS`: the flat coordinate buffer.
    Points,
    /// `PN32` (the "PNTS32" section): row-major `f32` coordinates —
    /// version 2 only.
    Points32,
    /// `PNQ8` (the "PNTSQ8" section): 8-bit scalar-quantized codes with
    /// per-dimension affine parameters — version 2 only.
    PointsSq8,
    /// `MANI`: the single checksummed payload of a [`ShardManifest`] file
    /// (not a section of `PGIXSNAP` snapshots — named here so manifest
    /// corruption reports through the same [`SnapshotError::ChecksumMismatch`]).
    Manifest,
}

impl SectionTag {
    /// The 4-byte ASCII tag written to disk.
    pub fn bytes(self) -> [u8; 4] {
        match self {
            SectionTag::Meta => *b"META",
            SectionTag::Graph => *b"GRPH",
            SectionTag::Points => *b"PNTS",
            SectionTag::Points32 => *b"PN32",
            SectionTag::PointsSq8 => *b"PNQ8",
            SectionTag::Manifest => *b"MANI",
        }
    }
}

impl fmt::Display for SectionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.bytes();
        write!(f, "{}", String::from_utf8_lossy(&b))
    }
}

/// The `G_net` build parameters recorded in a snapshot (Eqs. 3–4 of the
/// paper), so a loaded index knows the guarantee it was built for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildParams {
    /// The approximation slack `ε ∈ (0, 1]` — greedy on the stored graph
    /// returns a `(1+ε)`-ANN.
    pub epsilon: f64,
    /// `η = ceil(log2(1 + 2/ε))` (Eq. 3).
    pub eta: u32,
    /// `φ = 1 + 2^{η+1}` (Eq. 4).
    pub phi: f64,
}

/// Index metadata: everything about a stored index that is not the graph or
/// the coordinates themselves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexMeta {
    /// The metric the index was built under. Typed loaders refuse a
    /// mismatching file (`SnapshotError::MetricMismatch`).
    pub metric: MetricTag,
    /// Point dimensionality `d` (row stride of the coordinate buffer).
    pub dims: u32,
    /// Number of points `n` (and graph vertices).
    pub n: u64,
    /// Suggested start vertex for greedy routing (e.g. a top-level net
    /// center). Always a valid id `< n`; writers that track no entry point
    /// store `0`.
    pub entry_point: u32,
    /// Build parameters, if the writer recorded them.
    pub build: Option<BuildParams>,
}

/// Which quantized-points section a version-2 snapshot carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantTag {
    /// `PN32`: row-major `f32` coordinates.
    F32,
    /// `PNQ8`: 8-bit scalar-quantized codes with per-dimension affine
    /// parameters.
    Sq8,
}

impl QuantTag {
    /// The section tag this quantization kind is framed with on disk.
    pub fn section(self) -> SectionTag {
        match self {
            QuantTag::F32 => SectionTag::Points32,
            QuantTag::Sq8 => SectionTag::PointsSq8,
        }
    }
}

impl fmt::Display for QuantTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantTag::F32 => write!(f, "f32"),
            QuantTag::Sq8 => write!(f, "sq8"),
        }
    }
}

/// The payload of a version-2 quantized-points section: a compact copy of
/// the coordinate matrix in one of two precisions. The exact `f64` buffer
/// in [`Snapshot::coords`] is always present alongside — the compact store
/// serves surrogate navigation, the exact one serves re-ranking.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantSection {
    /// Row-major `n × dims` coordinates narrowed to `f32` (`PN32`).
    F32 {
        /// The `f32` coordinate buffer, length `n * dims`.
        data: Vec<f32>,
    },
    /// Per-dimension affine 8-bit codes (`PNQ8`):
    /// `decode(i, j) = mins[j] + codes[i*dims + j] * steps[j]`.
    Sq8 {
        /// Per-dimension minimum, length `dims`, all finite.
        mins: Vec<f64>,
        /// Per-dimension step `(max - min) / 255`, length `dims`, all
        /// finite and `>= 0` (`0` for a constant dimension).
        steps: Vec<f64>,
        /// Row-major `n × dims` code buffer.
        codes: Vec<u8>,
    },
}

impl QuantSection {
    /// Which quantization kind this section stores.
    pub fn tag(&self) -> QuantTag {
        match self {
            QuantSection::F32 { .. } => QuantTag::F32,
            QuantSection::Sq8 { .. } => QuantTag::Sq8,
        }
    }
}

/// Everything a snapshot stores, in memory: metadata plus the raw CSR and
/// coordinate arrays. See the module docs for the invariants
/// ([`Snapshot::validate`] checks them on both the write and the read path).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Index metadata.
    pub meta: IndexMeta,
    /// CSR row offsets, length `n + 1`, `offsets[0] == 0`, non-decreasing,
    /// `offsets[n] == targets.len()`.
    pub offsets: Vec<u64>,
    /// CSR edge targets (out-neighbor ids, each `< n`). Graph-level
    /// invariants (per-row sortedness, no self-loops) are re-validated by
    /// the typed loader in `pg_core`.
    pub targets: Vec<u32>,
    /// Row-major `n × dims` coordinate buffer, all values finite.
    pub coords: Vec<f64>,
    /// Optional compact-points section. `None` writes a version-1 file,
    /// byte-identical to snapshots from before quantization existed;
    /// `Some` writes version 2 with the extra section appended.
    pub quant: Option<QuantSection>,
}

/// Every way reading or writing a snapshot can fail. No variant is ever
/// produced by panicking, and no partially-read index escapes: a failed
/// [`Snapshot::from_bytes`] returns nothing but the error.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with the [`MAGIC`] bytes — not a snapshot.
    BadMagic,
    /// The file's `format_version` is newer than this reader supports.
    UnsupportedVersion {
        /// The version found in the file.
        found: u32,
    },
    /// The data ended before a complete structure could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A section's stored checksum does not match its payload.
    ChecksumMismatch {
        /// The section whose payload is corrupt.
        section: SectionTag,
    },
    /// A typed loader asked for one metric but the file stores another.
    MetricMismatch {
        /// The metric the loader expected.
        expected: MetricTag,
        /// The metric recorded in the file.
        found: MetricTag,
    },
    /// A typed loader's quantization expectation disagrees with the file:
    /// a plain loader opened a quantized (version-2) snapshot, or a
    /// quantized loader opened a plain (version-1) one.
    QuantMismatch {
        /// The quantized section the file carries (`None` for a plain
        /// snapshot).
        found: Option<QuantTag>,
    },
    /// The bytes parse but violate a structural invariant (unknown codes,
    /// inconsistent counts, non-monotone offsets, out-of-range ids, …).
    Invalid {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => {
                write!(f, "not a proximity-graphs index snapshot (bad magic)")
            }
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "snapshot format version {found} is newer than the supported version {FORMAT_VERSION_QUANT}"
            ),
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            SnapshotError::MetricMismatch { expected, found } => write!(
                f,
                "metric mismatch: loader expected {expected}, snapshot stores {found}"
            ),
            SnapshotError::QuantMismatch { found } => match found {
                Some(tag) => write!(
                    f,
                    "quantization mismatch: plain loader opened a snapshot carrying a {tag} quantized section"
                ),
                None => write!(
                    f,
                    "quantization mismatch: quantized loader opened a plain snapshot with no quantized section"
                ),
            },
            SnapshotError::Invalid { reason } => write!(f, "invalid snapshot: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Failpoint site names instrumented in this crate (see `pg_fault`).
///
/// The hooks behind them are compiled in only with the `failpoints` cargo
/// feature; the names themselves are always available so chaos suites can
/// enumerate every site (`sites::ALL`) and assert the failure contract at
/// each one.
pub mod sites {
    /// Writing the snapshot payload into the temporary file.
    /// `ShortWrite(n)` here persists an `n`-byte prefix then fails —
    /// a simulated crash mid-write.
    pub const SAVE_WRITE: &str = "store.save.write";
    /// Flushing the temporary file to stable storage (`sync_all`).
    pub const SAVE_SYNC: &str = "store.save.sync";
    /// Renaming the temporary file over the destination.
    pub const SAVE_RENAME: &str = "store.save.rename";
    /// Reading the snapshot file in [`crate::Snapshot::load`].
    pub const LOAD_READ: &str = "store.load.read";
    /// Every failpoint site this crate instruments.
    pub const ALL: &[&str] = &[SAVE_WRITE, SAVE_SYNC, SAVE_RENAME, LOAD_READ];
}

/// Asks `pg_fault` whether an injected fault should fire at `site`; any
/// fired fault becomes a plain `io::Error` here. Compiled to a no-op
/// without the `failpoints` feature.
#[cfg(feature = "failpoints")]
fn failpoint(site: &str) -> Result<(), std::io::Error> {
    match pg_fault::hit(site) {
        None => Ok(()),
        Some(fault) => Err(fault.into_io_error(site)),
    }
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
fn failpoint(_site: &str) -> Result<(), std::io::Error> {
    Ok(())
}

/// Like [`failpoint`], but a `ShortWrite(n)` fault is returned as
/// `Ok(Some(n))` so the write path can persist a torn prefix first.
#[cfg(feature = "failpoints")]
fn failpoint_write(site: &str) -> Result<Option<usize>, std::io::Error> {
    match pg_fault::hit(site) {
        None => Ok(None),
        Some(pg_fault::Fault::ShortWrite(n)) => Ok(Some(n)),
        Some(fault) => Err(fault.into_io_error(site)),
    }
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
fn failpoint_write(_site: &str) -> Result<Option<usize>, std::io::Error> {
    Ok(None)
}

/// A unique temporary sibling of `path`: same directory (so the final
/// `rename` never crosses a filesystem boundary), name extended with
/// `.tmp.<pid>.<seq>` (so concurrent savers in one or many processes
/// never collide).
fn tmp_sibling(path: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("snapshot"));
    name.push(format!(".tmp.{}.{seq}", std::process::id()));
    path.with_file_name(name)
}

/// The temp-file + `sync_all` + atomic-rename sequence behind
/// [`Snapshot::save`], with a failpoint ahead of each fallible step.
fn write_atomically(tmp: &Path, path: &Path, bytes: &[u8]) -> Result<(), std::io::Error> {
    use std::io::Write as _;
    let mut file = std::fs::File::create(tmp)?;
    if let Some(n) = failpoint_write(sites::SAVE_WRITE)? {
        // Simulated crash mid-write: persist a prefix of the payload in
        // the temp file, then fail. The destination is untouched.
        let prefix = bytes.get(..n.min(bytes.len())).unwrap_or(bytes);
        file.write_all(prefix)?;
        let _ = file.sync_all();
        return Err(std::io::Error::new(
            std::io::ErrorKind::WriteZero,
            format!(
                "injected short write ({n} bytes) at `{}`",
                sites::SAVE_WRITE
            ),
        ));
    }
    file.write_all(bytes)?;
    failpoint(sites::SAVE_SYNC)?;
    file.sync_all()?;
    drop(file);
    failpoint(sites::SAVE_RENAME)?;
    std::fs::rename(tmp, path)?;
    // Durability of the rename itself: sync the parent directory so the
    // new entry survives a crash. Best-effort — opening a directory is
    // not portable, and the data content is already safe either way.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn invalid(reason: impl Into<String>) -> SnapshotError {
    SnapshotError::Invalid {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

impl Snapshot {
    /// Serializes into the on-disk byte layout — version 1 when
    /// [`Snapshot::quant`] is `None` (byte-identical to pre-quantization
    /// writers), version 2 with the quantized section appended otherwise.
    /// Runs [`Snapshot::validate`] first, so a structurally broken
    /// `Snapshot` is refused at write time rather than producing an
    /// unreadable file.
    pub fn to_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        self.validate()?;

        let meta = self.encode_meta();
        let graph = self.encode_graph();
        let points = self.encode_points();

        let mut framed: Vec<(SectionTag, Vec<u8>)> = vec![
            (SectionTag::Meta, meta),
            (SectionTag::Graph, graph),
            (SectionTag::Points, points),
        ];
        let version = match &self.quant {
            None => FORMAT_VERSION,
            Some(q) => {
                framed.push((
                    q.tag().section(),
                    encode_quant(q, self.meta.n, self.meta.dims),
                ));
                FORMAT_VERSION_QUANT
            }
        };

        let total = HEADER_LEN
            + framed.len() * SECTION_HEADER_LEN
            + framed.iter().map(|(_, p)| p.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        push_u32(&mut out, version);
        push_u32(&mut out, framed.len() as u32); // section count
        for (tag, payload) in &framed {
            out.extend_from_slice(&tag.bytes());
            push_u64(&mut out, payload.len() as u64);
            push_u64(&mut out, checksum(payload));
            out.extend_from_slice(payload);
        }
        Ok(out)
    }

    /// Serializes into an [`std::io::Write`] sink (one buffered write of the
    /// full encoding).
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), SnapshotError> {
        let bytes = self.to_bytes()?;
        w.write_all(&bytes)?;
        Ok(())
    }

    /// Writes the snapshot to `path`, creating or overwriting the file
    /// **atomically and durably**.
    ///
    /// # Crash safety
    ///
    /// The bytes go to a fresh temporary file (`<name>.tmp.<pid>.<seq>`)
    /// in `path`'s own directory, are flushed to stable storage with
    /// `sync_all`, and only then renamed over `path` — and `rename(2)`
    /// within one filesystem is atomic. A concurrent or subsequent reader
    /// (in particular `pg_serve`'s `swap_from_path`) therefore observes
    /// either the complete previous file or the complete new one, never a
    /// torn prefix: the mid-write race that used to surface as a spurious
    /// `ChecksumMismatch` is structurally impossible. A crash mid-save
    /// leaves at worst a `.tmp.*` sibling (which no reader ever opens)
    /// plus the previous snapshot intact; on any save error the temporary
    /// file is removed best-effort. After the rename, the parent
    /// directory is `sync_all`-ed (best-effort — not every platform lets
    /// a directory be opened) so the new directory entry is durable too.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let bytes = self.to_bytes()?;
        let path = path.as_ref();
        let tmp = tmp_sibling(path);
        let result = write_atomically(&tmp, path, &bytes);
        if result.is_err() {
            // Never leave a torn temp file behind on a failed save. (A
            // hard crash can still leave one; it is never read.)
            let _ = std::fs::remove_file(&tmp);
        }
        Ok(result?)
    }

    fn encode_meta(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(44);
        push_u32(&mut p, self.meta.metric.code());
        push_u32(&mut p, self.meta.dims);
        push_u64(&mut p, self.meta.n);
        push_u32(&mut p, self.meta.entry_point);
        push_u32(&mut p, self.meta.build.is_some() as u32);
        let b = self.meta.build.unwrap_or(BuildParams {
            epsilon: 0.0,
            eta: 0,
            phi: 0.0,
        });
        push_f64(&mut p, b.epsilon);
        push_u32(&mut p, b.eta);
        push_f64(&mut p, b.phi);
        p
    }

    fn encode_graph(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(16 + 8 * self.offsets.len() + 4 * self.targets.len());
        push_u64(&mut p, self.meta.n);
        push_u64(&mut p, self.targets.len() as u64);
        for &o in &self.offsets {
            push_u64(&mut p, o);
        }
        for &t in &self.targets {
            push_u32(&mut p, t);
        }
        p
    }

    fn encode_points(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(12 + 8 * self.coords.len());
        push_u64(&mut p, self.meta.n);
        push_u32(&mut p, self.meta.dims);
        for &c in &self.coords {
            push_f64(&mut p, c);
        }
        p
    }

    /// Checks every structural invariant of the snapshot (see the field docs
    /// on [`Snapshot`] and [`IndexMeta`]). Called on both the write and the
    /// read path, so files on disk and snapshots handed to `pg_core` are
    /// equally vetted.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        let n = self.meta.n;
        if n == 0 {
            return Err(invalid("index holds zero points"));
        }
        if self.meta.dims == 0 {
            return Err(invalid("dimensionality must be at least 1"));
        }
        if self.offsets.len() as u64 != n + 1 {
            return Err(invalid(format!(
                "offsets length {} does not match n + 1 = {}",
                self.offsets.len(),
                n + 1
            )));
        }
        // pg-lint: allow(no-panic-path, offsets.len() == n + 1 >= 1 was checked above)
        if self.offsets[0] != 0 {
            return Err(invalid("offsets must start at 0"));
        }
        // pg-lint: allow(no-panic-path, windows(2) yields exactly 2-element slices)
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(invalid("offsets must be non-decreasing"));
        }
        // pg-lint: allow(no-panic-path, offsets is non-empty per the length check above)
        let final_offset = *self.offsets.last().unwrap();
        if final_offset != self.targets.len() as u64 {
            return Err(invalid(format!(
                "final offset {} does not match edge count {}",
                final_offset,
                self.targets.len()
            )));
        }
        if let Some(&t) = self.targets.iter().find(|&&t| t as u64 >= n) {
            return Err(invalid(format!("edge target {t} out of range (n = {n})")));
        }
        if self.meta.entry_point as u64 >= n {
            return Err(invalid(format!(
                "entry point {} out of range (n = {n})",
                self.meta.entry_point
            )));
        }
        let expect_coords = n
            .checked_mul(self.meta.dims as u64)
            .ok_or_else(|| invalid("n * dims overflows"))?;
        if self.coords.len() as u64 != expect_coords {
            return Err(invalid(format!(
                "coordinate buffer holds {} values, expected n * dims = {expect_coords}",
                self.coords.len()
            )));
        }
        if self.coords.iter().any(|c| !c.is_finite()) {
            return Err(invalid("non-finite coordinate"));
        }
        match &self.quant {
            None => {}
            Some(QuantSection::F32 { data }) => {
                if data.len() as u64 != expect_coords {
                    return Err(invalid(format!(
                        "PN32 section holds {} values, expected n * dims = {expect_coords}",
                        data.len()
                    )));
                }
                if data.iter().any(|c| !c.is_finite()) {
                    return Err(invalid("non-finite f32 quantized coordinate"));
                }
            }
            Some(QuantSection::Sq8 { mins, steps, codes }) => {
                if mins.len() != self.meta.dims as usize {
                    return Err(invalid(format!(
                        "PNQ8 mins length {} does not match dims {}",
                        mins.len(),
                        self.meta.dims
                    )));
                }
                if steps.len() != self.meta.dims as usize {
                    return Err(invalid(format!(
                        "PNQ8 steps length {} does not match dims {}",
                        steps.len(),
                        self.meta.dims
                    )));
                }
                if codes.len() as u64 != expect_coords {
                    return Err(invalid(format!(
                        "PNQ8 section holds {} codes, expected n * dims = {expect_coords}",
                        codes.len()
                    )));
                }
                if mins.iter().any(|m| !m.is_finite()) {
                    return Err(invalid("non-finite PNQ8 minimum"));
                }
                if steps.iter().any(|s| !s.is_finite() || *s < 0.0) {
                    return Err(invalid("PNQ8 step must be finite and non-negative"));
                }
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------------
    // Reading
    // -----------------------------------------------------------------------

    /// Parses a snapshot from bytes. Never panics: truncation, corruption,
    /// unknown versions and structural violations all surface as the
    /// matching [`SnapshotError`] variant, and nothing is returned unless
    /// the whole file — header, every section checksum, all cross-checks —
    /// verifies.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut cur = Cursor { bytes, pos: 0 };

        let magic = cur.take(8, "magic")?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = cur.u32("format version")?;
        if version != FORMAT_VERSION && version != FORMAT_VERSION_QUANT {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let sections = cur.u32("section count")?;
        let expect_sections = if version == FORMAT_VERSION { 3 } else { 4 };
        if sections != expect_sections {
            return Err(invalid(format!(
                "version {version} snapshots have exactly {expect_sections} sections, found {sections}"
            )));
        }

        let meta_payload = cur.section(SectionTag::Meta)?;
        let graph_payload = cur.section(SectionTag::Graph)?;
        let points_payload = cur.section(SectionTag::Points)?;
        let quant_framed = if version == FORMAT_VERSION_QUANT {
            Some(cur.quant_section()?)
        } else {
            None
        };
        if cur.pos != bytes.len() {
            return Err(invalid(format!(
                "{} trailing bytes after the last section",
                bytes.len() - cur.pos
            )));
        }

        let meta = decode_meta(meta_payload)?;
        let (offsets, targets) = decode_graph(graph_payload, &meta)?;
        let coords = decode_points(points_payload, &meta)?;
        let quant = match quant_framed {
            None => None,
            Some((tag, payload)) => Some(decode_quant(tag, payload, &meta)?),
        };

        let snap = Snapshot {
            meta,
            offsets,
            targets,
            coords,
            quant,
        };
        snap.validate()?;
        Ok(snap)
    }

    /// Reads a snapshot from an [`std::io::Read`] source (reads to end, then
    /// parses).
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Snapshot, SnapshotError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Snapshot::from_bytes(&bytes)
    }

    /// Loads a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Snapshot, SnapshotError> {
        failpoint(sites::LOAD_READ)?;
        let bytes = std::fs::read(path)?;
        Snapshot::from_bytes(&bytes)
    }

    /// Approximate in-memory footprint of the index this snapshot describes
    /// (CSR arrays as `pg_core::Graph` holds them, the coordinate buffer,
    /// and one 24-byte `FlatRow` handle per point) — the comparison partner
    /// for the on-disk size in `exp_snapshot`.
    pub fn in_memory_bytes(&self) -> u64 {
        let usize_bytes = std::mem::size_of::<usize>() as u64;
        let quant = match &self.quant {
            None => 0,
            Some(QuantSection::F32 { data }) => (data.len() as u64) * 4,
            Some(QuantSection::Sq8 { mins, steps, codes }) => {
                (mins.len() as u64) * 8 + (steps.len() as u64) * 8 + codes.len() as u64
            }
        };
        (self.offsets.len() as u64) * usize_bytes
            + (self.targets.len() as u64) * 4
            + (self.coords.len() as u64) * 8
            + self.meta.n * 24
            + quant
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() - self.pos < len {
            return Err(SnapshotError::Truncated { context });
        }
        // pg-lint: allow(no-panic-path, length-checked above: pos + len <= bytes.len())
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            // pg-lint: allow(no-panic-path, take(4) returns exactly 4 bytes; try_into cannot fail)
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            // pg-lint: allow(no-panic-path, take(8) returns exactly 8 bytes; try_into cannot fail)
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    /// Reads one section frame: verifies the tag and the payload checksum,
    /// returns the payload slice.
    fn section(&mut self, expect: SectionTag) -> Result<&'a [u8], SnapshotError> {
        let tag = self.take(4, "section tag")?;
        if tag != expect.bytes() {
            return Err(invalid(format!(
                "expected section {expect}, found tag {:?}",
                tag
            )));
        }
        let len = self.u64("section length")?;
        let len: usize = len
            .try_into()
            .map_err(|_| invalid("section length exceeds addressable memory"))?;
        let stored = self.u64("section checksum")?;
        let payload = self.take(len, "section payload")?;
        if checksum(payload) != stored {
            return Err(SnapshotError::ChecksumMismatch { section: expect });
        }
        Ok(payload)
    }

    /// Reads the fourth section of a version-2 snapshot, whose tag may be
    /// either quantized kind: verifies the tag is `PN32` or `PNQ8` and the
    /// payload checksum, returns the kind and the payload slice.
    fn quant_section(&mut self) -> Result<(QuantTag, &'a [u8]), SnapshotError> {
        let tag_bytes = self.take(4, "section tag")?;
        let tag = if tag_bytes == SectionTag::Points32.bytes() {
            QuantTag::F32
        } else if tag_bytes == SectionTag::PointsSq8.bytes() {
            QuantTag::Sq8
        } else {
            return Err(invalid(format!(
                "expected a quantized section (PN32 or PNQ8), found tag {:?}",
                tag_bytes
            )));
        };
        let len = self.u64("section length")?;
        let len: usize = len
            .try_into()
            .map_err(|_| invalid("section length exceeds addressable memory"))?;
        let stored = self.u64("section checksum")?;
        let payload = self.take(len, "section payload")?;
        if checksum(payload) != stored {
            return Err(SnapshotError::ChecksumMismatch {
                section: tag.section(),
            });
        }
        Ok((tag, payload))
    }
}

fn decode_meta(payload: &[u8]) -> Result<IndexMeta, SnapshotError> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    let metric_code = cur.u32("metric tag")?;
    let metric = MetricTag::from_code(metric_code)
        .ok_or_else(|| invalid(format!("unknown metric tag code {metric_code}")))?;
    let dims = cur.u32("dims")?;
    let n = cur.u64("n")?;
    let entry_point = cur.u32("entry point")?;
    let has_build = cur.u32("build-params flag")?;
    if has_build > 1 {
        return Err(invalid(format!(
            "build-params flag must be 0 or 1, found {has_build}"
        )));
    }
    let epsilon = f64::from_bits(cur.u64("epsilon")?);
    let eta = cur.u32("eta")?;
    let phi = f64::from_bits(cur.u64("phi")?);
    if cur.pos != payload.len() {
        return Err(invalid("META section has trailing bytes"));
    }
    let build = (has_build == 1).then_some(BuildParams { epsilon, eta, phi });
    Ok(IndexMeta {
        metric,
        dims,
        n,
        entry_point,
        build,
    })
}

fn decode_graph(payload: &[u8], meta: &IndexMeta) -> Result<(Vec<u64>, Vec<u32>), SnapshotError> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    let n = cur.u64("graph n")?;
    if n != meta.n {
        return Err(invalid(format!(
            "GRPH section stores n = {n}, META stores n = {}",
            meta.n
        )));
    }
    let edges = cur.u64("edge count")?;
    let rows: usize = (n + 1)
        .try_into()
        .map_err(|_| invalid("n + 1 exceeds addressable memory"))?;
    let edges: usize = edges
        .try_into()
        .map_err(|_| invalid("edge count exceeds addressable memory"))?;
    // Exact-size check before any allocation: a corrupt count cannot force
    // an oversized buffer.
    let expect = 16usize
        .checked_add(
            rows.checked_mul(8)
                .ok_or_else(|| invalid("offsets size overflows"))?,
        )
        .and_then(|b| b.checked_add(edges.checked_mul(4)?))
        .ok_or_else(|| invalid("GRPH section size overflows"))?;
    if payload.len() != expect {
        return Err(invalid(format!(
            "GRPH section holds {} bytes, counts imply {expect}",
            payload.len()
        )));
    }
    let mut offsets = Vec::with_capacity(rows);
    for _ in 0..rows {
        offsets.push(cur.u64("offset")?);
    }
    let mut targets = Vec::with_capacity(edges);
    for _ in 0..edges {
        targets.push(cur.u32("edge target")?);
    }
    Ok((offsets, targets))
}

fn decode_points(payload: &[u8], meta: &IndexMeta) -> Result<Vec<f64>, SnapshotError> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    let n = cur.u64("points n")?;
    if n != meta.n {
        return Err(invalid(format!(
            "PNTS section stores n = {n}, META stores n = {}",
            meta.n
        )));
    }
    let dims = cur.u32("points dims")?;
    if dims != meta.dims {
        return Err(invalid(format!(
            "PNTS section stores dims = {dims}, META stores dims = {}",
            meta.dims
        )));
    }
    let count: usize = n
        .checked_mul(dims as u64)
        .and_then(|c| c.try_into().ok())
        .ok_or_else(|| invalid("n * dims exceeds addressable memory"))?;
    let expect = 12usize
        .checked_add(
            count
                .checked_mul(8)
                .ok_or_else(|| invalid("coords size overflows"))?,
        )
        .ok_or_else(|| invalid("PNTS section size overflows"))?;
    if payload.len() != expect {
        return Err(invalid(format!(
            "PNTS section holds {} bytes, counts imply {expect}",
            payload.len()
        )));
    }
    let mut coords = Vec::with_capacity(count);
    for _ in 0..count {
        coords.push(f64::from_bits(cur.u64("coordinate")?));
    }
    Ok(coords)
}

/// Encodes a quantized-points section payload. Both layouts lead with the
/// same `n: u64` + `dims: u32` counts as `PNTS`, cross-checked against
/// `META` on read; `PNQ8` then stores `dims` `f64` minima, `dims` `f64`
/// steps, and `n * dims` code bytes.
fn encode_quant(quant: &QuantSection, n: u64, dims: u32) -> Vec<u8> {
    match quant {
        QuantSection::F32 { data } => {
            let mut p = Vec::with_capacity(12 + 4 * data.len());
            push_u64(&mut p, n);
            push_u32(&mut p, dims);
            for &c in data {
                push_u32(&mut p, c.to_bits());
            }
            p
        }
        QuantSection::Sq8 { mins, steps, codes } => {
            let mut p = Vec::with_capacity(12 + 16 * mins.len() + codes.len());
            push_u64(&mut p, n);
            push_u32(&mut p, dims);
            for &m in mins {
                push_f64(&mut p, m);
            }
            for &s in steps {
                push_f64(&mut p, s);
            }
            p.extend_from_slice(codes);
            p
        }
    }
}

fn decode_quant(
    tag: QuantTag,
    payload: &[u8],
    meta: &IndexMeta,
) -> Result<QuantSection, SnapshotError> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    let label = tag.section();
    let n = cur.u64("quantized points n")?;
    if n != meta.n {
        return Err(invalid(format!(
            "{label} section stores n = {n}, META stores n = {}",
            meta.n
        )));
    }
    let dims = cur.u32("quantized points dims")?;
    if dims != meta.dims {
        return Err(invalid(format!(
            "{label} section stores dims = {dims}, META stores dims = {}",
            meta.dims
        )));
    }
    let count: usize = n
        .checked_mul(dims as u64)
        .and_then(|c| c.try_into().ok())
        .ok_or_else(|| invalid("n * dims exceeds addressable memory"))?;
    match tag {
        QuantTag::F32 => {
            // Exact-size check before any allocation, as for PNTS.
            let expect = 12usize
                .checked_add(
                    count
                        .checked_mul(4)
                        .ok_or_else(|| invalid("PN32 size overflows"))?,
                )
                .ok_or_else(|| invalid("PN32 section size overflows"))?;
            if payload.len() != expect {
                return Err(invalid(format!(
                    "PN32 section holds {} bytes, counts imply {expect}",
                    payload.len()
                )));
            }
            let mut data = Vec::with_capacity(count);
            for _ in 0..count {
                data.push(f32::from_bits(cur.u32("f32 coordinate")?));
            }
            Ok(QuantSection::F32 { data })
        }
        QuantTag::Sq8 => {
            let dims_usize = dims as usize;
            let expect = 12usize
                .checked_add(
                    dims_usize
                        .checked_mul(16)
                        .ok_or_else(|| invalid("PNQ8 parameter size overflows"))?,
                )
                .and_then(|b| b.checked_add(count))
                .ok_or_else(|| invalid("PNQ8 section size overflows"))?;
            if payload.len() != expect {
                return Err(invalid(format!(
                    "PNQ8 section holds {} bytes, counts imply {expect}",
                    payload.len()
                )));
            }
            let mut mins = Vec::with_capacity(dims_usize);
            for _ in 0..dims_usize {
                mins.push(f64::from_bits(cur.u64("sq8 minimum")?));
            }
            let mut steps = Vec::with_capacity(dims_usize);
            for _ in 0..dims_usize {
                steps.push(f64::from_bits(cur.u64("sq8 step")?));
            }
            let codes = cur.take(count, "sq8 codes")?.to_vec();
            Ok(QuantSection::Sq8 { mins, steps, codes })
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded-index manifests
// ---------------------------------------------------------------------------

/// The 8-byte magic prefix of every shard-manifest file.
pub const SHARD_MANIFEST_MAGIC: [u8; 8] = *b"PGSHMANI";

/// The shard-manifest format version this crate reads and writes
/// (versioning rules identical to [`FORMAT_VERSION`]).
pub const SHARD_MANIFEST_VERSION: u32 = 1;

/// Conventional file name of the manifest inside a sharded-snapshot
/// directory (the per-shard snapshot files sit next to it, named by
/// [`shard_file_name`]).
pub const SHARD_MANIFEST_FILE: &str = "manifest.pgsm";

/// Conventional file name of shard `i`'s snapshot inside a sharded-snapshot
/// directory: `shard_0000.pgix`, `shard_0001.pgix`, …
pub fn shard_file_name(i: usize) -> String {
    format!("shard_{i:04}.pgix")
}

/// How a sharded index splits one global id space `0..n` across `S`
/// per-shard sub-indexes — the raw, dependency-free half of a sharded
/// snapshot (the typed engine wiring lives in `pg_core::sharded`).
///
/// The invariant this type exists to pin: the per-shard global-id lists are
/// **strictly ascending** and together form an **exact partition** of
/// `0..n` — every id appears in exactly one shard, no shard is empty.
/// Ascending order is load-bearing, not cosmetic: a shard's local id `j`
/// maps to `ids[j]`, so ascending lists make local id order agree with
/// global id order, which is what lets a surrogate-space merge of per-shard
/// results reproduce the unsharded `(surrogate, global id)` tie-break
/// bit-for-bit. [`ShardManifest::new`] and [`ShardManifest::from_bytes`]
/// both enforce the full invariant, so no constructed or loaded manifest
/// can violate it.
///
/// # File format (version 1)
///
/// Little-endian, following the [`GroundTruth`-cache] conventions: magic
/// [`SHARD_MANIFEST_MAGIC`], `format_version` (u32), then a checksummed
/// payload — `n` (u64), shard count (u64), and per shard its length (u64)
/// followed by that many ids (u32 each) — terminated by the FNV-1a 64
/// [`checksum`] of the payload (bytes 12 up to the checksum itself).
/// Reads never panic and never return a partially-validated manifest.
///
/// [`GroundTruth`-cache]: crate::checksum
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    n: u64,
    shards: Vec<Vec<u32>>,
}

impl ShardManifest {
    /// Builds a manifest after checking the full partition invariant:
    /// at least one shard, every shard non-empty and strictly ascending,
    /// every id `< n`, and every id in `0..n` present exactly once.
    pub fn new(n: u64, shards: Vec<Vec<u32>>) -> Result<Self, SnapshotError> {
        let m = ShardManifest { n, shards };
        m.validate()?;
        Ok(m)
    }

    /// Number of points `n` in the global id space.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of shards `S`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard global-id lists, each strictly ascending; entry `s`
    /// maps shard `s`'s local ids to global ids (`ids[local] = global`).
    pub fn shards(&self) -> &[Vec<u32>] {
        &self.shards
    }

    /// Consumes the manifest, handing back the per-shard id lists.
    pub fn into_shards(self) -> Vec<Vec<u32>> {
        self.shards
    }

    fn validate(&self) -> Result<(), SnapshotError> {
        if self.shards.is_empty() {
            return Err(invalid("manifest holds zero shards"));
        }
        if self.n == 0 {
            return Err(invalid("manifest covers zero points"));
        }
        let n: usize = self
            .n
            .try_into()
            .map_err(|_| invalid("n exceeds addressable memory"))?;
        let mut seen = vec![false; n];
        let mut total: u64 = 0;
        for (s, ids) in self.shards.iter().enumerate() {
            if ids.is_empty() {
                return Err(invalid(format!("shard {s} is empty")));
            }
            if ids.windows(2).any(|w| match w {
                [a, b] => a >= b,
                _ => false,
            }) {
                return Err(invalid(format!("shard {s} ids are not strictly ascending")));
            }
            for &id in ids {
                match seen.get_mut(id as usize) {
                    Some(slot) if !*slot => *slot = true,
                    Some(_) => {
                        return Err(invalid(format!("id {id} appears in more than one shard")))
                    }
                    None => {
                        return Err(invalid(format!(
                            "shard {s} id {id} out of range (n = {})",
                            self.n
                        )))
                    }
                }
            }
            total += ids.len() as u64;
        }
        if total != self.n {
            return Err(invalid(format!(
                "shards hold {total} ids, the manifest covers n = {}",
                self.n
            )));
        }
        Ok(())
    }

    /// Serializes into the version-1 byte layout (see the type docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let cells: usize = self.shards.iter().map(|s| s.len()).sum();
        let mut payload = Vec::with_capacity(16 + self.shards.len() * 8 + cells * 4);
        push_u64(&mut payload, self.n);
        push_u64(&mut payload, self.shards.len() as u64);
        for ids in &self.shards {
            push_u64(&mut payload, ids.len() as u64);
            for &id in ids {
                push_u32(&mut payload, id);
            }
        }
        let mut out = Vec::with_capacity(8 + 4 + payload.len() + 8);
        out.extend_from_slice(&SHARD_MANIFEST_MAGIC);
        push_u32(&mut out, SHARD_MANIFEST_VERSION);
        let sum = checksum(&payload);
        out.append(&mut payload);
        push_u64(&mut out, sum);
        out
    }

    /// Parses the version-1 byte layout. Never panics; a manifest is only
    /// returned after the magic, version, checksum, and the full partition
    /// invariant ([`ShardManifest::new`]) all check out.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let magic_len = bytes.len().min(8);
        let magic_prefix = bytes.get(..magic_len).unwrap_or(bytes);
        if magic_prefix != SHARD_MANIFEST_MAGIC.get(..magic_len).unwrap_or_default() {
            return Err(SnapshotError::BadMagic);
        }
        let mut cur = Cursor { bytes, pos: 0 };
        cur.take(8, "manifest magic")?;
        let version = cur.u32("manifest version")?;
        if version != SHARD_MANIFEST_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let payload_start = cur.pos;
        if bytes.len() < payload_start + 8 {
            return Err(SnapshotError::Truncated {
                context: "manifest checksum",
            });
        }
        let payload_end = bytes.len() - 8;
        let payload = bytes
            .get(payload_start..payload_end)
            .ok_or(SnapshotError::Truncated {
                context: "manifest payload",
            })?;
        let stored = bytes
            .get(payload_end..)
            .and_then(|t| <[u8; 8]>::try_from(t).ok())
            .map(u64::from_le_bytes)
            .ok_or(SnapshotError::Truncated {
                context: "manifest checksum",
            })?;
        if checksum(payload) != stored {
            return Err(SnapshotError::ChecksumMismatch {
                section: SectionTag::Manifest,
            });
        }
        let mut cur = Cursor {
            bytes: payload,
            pos: 0,
        };
        let n = cur.u64("manifest n")?;
        let shard_count = cur.u64("manifest shard count")?;
        let shard_count: usize = shard_count
            .try_into()
            .map_err(|_| invalid("shard count exceeds addressable memory"))?;
        // A shard frame is at least 12 bytes (len + one id); reject an
        // impossible count before allocating for it.
        if shard_count > payload.len() / 12 {
            return Err(invalid(format!(
                "shard count {shard_count} cannot fit in a {}-byte payload",
                payload.len()
            )));
        }
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let len = cur.u64("shard length")?;
            let len: usize = len
                .try_into()
                .map_err(|_| invalid("shard length exceeds addressable memory"))?;
            if len > (payload.len() - cur.pos) / 4 {
                return Err(SnapshotError::Truncated {
                    context: "shard ids",
                });
            }
            let mut ids = Vec::with_capacity(len);
            for _ in 0..len {
                ids.push(cur.u32("shard id")?);
            }
            shards.push(ids);
        }
        if cur.pos != payload.len() {
            return Err(invalid(format!(
                "{} trailing bytes after the last shard",
                payload.len() - cur.pos
            )));
        }
        ShardManifest::new(n, shards)
    }

    /// Writes the manifest to `path` atomically and durably — the same
    /// temp-file + `sync_all` + rename sequence as [`Snapshot::save`], so a
    /// reader never observes a torn manifest.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let bytes = self.to_bytes();
        let path = path.as_ref();
        let tmp = tmp_sibling(path);
        let result = write_atomically(&tmp, path, &bytes);
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        Ok(result?)
    }

    /// Loads and validates a manifest from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        ShardManifest::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            meta: IndexMeta {
                metric: MetricTag::Euclidean,
                dims: 2,
                n: 3,
                entry_point: 1,
                build: Some(BuildParams {
                    epsilon: 1.0,
                    eta: 2,
                    phi: 9.0,
                }),
            },
            offsets: vec![0, 2, 3, 4],
            targets: vec![1, 2, 0, 0],
            coords: vec![0.0, 0.0, 3.0, 4.0, -1.5, 0.25],
            quant: None,
        }
    }

    fn sample_f32() -> Snapshot {
        let mut snap = sample();
        snap.quant = Some(QuantSection::F32 {
            data: snap.coords.iter().map(|&c| c as f32).collect(),
        });
        snap
    }

    fn sample_sq8() -> Snapshot {
        let mut snap = sample();
        snap.quant = Some(QuantSection::Sq8 {
            mins: vec![-1.5, 0.0],
            steps: vec![4.5 / 255.0, 4.0 / 255.0],
            codes: vec![85, 0, 255, 255, 0, 16],
        });
        snap
    }

    #[test]
    fn roundtrip_bytes_is_lossless() {
        let snap = sample();
        let bytes = snap.to_bytes().unwrap();
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn roundtrip_without_build_params() {
        let mut snap = sample();
        snap.meta.build = None;
        let bytes = snap.to_bytes().unwrap();
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn plain_snapshots_still_write_version_1_with_three_sections() {
        let bytes = sample().to_bytes().unwrap();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 3);
    }

    #[test]
    fn quantized_roundtrips_are_lossless_and_write_version_2() {
        for snap in [sample_f32(), sample_sq8()] {
            let bytes = snap.to_bytes().unwrap();
            assert_eq!(
                u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
                FORMAT_VERSION_QUANT
            );
            assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 4);
            assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);
        }
    }

    #[test]
    fn quantized_prefix_is_byte_identical_to_the_plain_encoding() {
        // Append-only evolution: the first three sections of a version-2
        // file are the version-1 body verbatim (only the header's version
        // and section count differ).
        let plain = sample().to_bytes().unwrap();
        let quant = sample_f32().to_bytes().unwrap();
        assert_eq!(&quant[16..plain.len()], &plain[16..]);
    }

    #[test]
    fn validate_rejects_quant_violations() {
        let cases: Vec<(&str, Snapshot)> = vec![
            ("f32 length", {
                let mut s = sample_f32();
                match s.quant.as_mut().unwrap() {
                    QuantSection::F32 { data } => data.pop().map(|_| ()).unwrap(),
                    _ => unreachable!(),
                }
                s
            }),
            ("f32 non-finite", {
                let mut s = sample_f32();
                match s.quant.as_mut().unwrap() {
                    QuantSection::F32 { data } => data[0] = f32::NAN,
                    _ => unreachable!(),
                }
                s
            }),
            ("sq8 mins length", {
                let mut s = sample_sq8();
                match s.quant.as_mut().unwrap() {
                    QuantSection::Sq8 { mins, .. } => mins.push(0.0),
                    _ => unreachable!(),
                }
                s
            }),
            ("sq8 steps length", {
                let mut s = sample_sq8();
                match s.quant.as_mut().unwrap() {
                    QuantSection::Sq8 { steps, .. } => steps.pop().map(|_| ()).unwrap(),
                    _ => unreachable!(),
                }
                s
            }),
            ("sq8 codes length", {
                let mut s = sample_sq8();
                match s.quant.as_mut().unwrap() {
                    QuantSection::Sq8 { codes, .. } => codes.push(0),
                    _ => unreachable!(),
                }
                s
            }),
            ("sq8 non-finite min", {
                let mut s = sample_sq8();
                match s.quant.as_mut().unwrap() {
                    QuantSection::Sq8 { mins, .. } => mins[0] = f64::INFINITY,
                    _ => unreachable!(),
                }
                s
            }),
            ("sq8 negative step", {
                let mut s = sample_sq8();
                match s.quant.as_mut().unwrap() {
                    QuantSection::Sq8 { steps, .. } => steps[1] = -1.0,
                    _ => unreachable!(),
                }
                s
            }),
        ];
        for (name, bad) in cases {
            let err = bad.validate().unwrap_err();
            assert!(
                matches!(err, SnapshotError::Invalid { .. }),
                "case {name}: got {err:?}"
            );
            assert!(bad.to_bytes().is_err(), "case {name}: to_bytes accepted");
        }
    }

    #[test]
    fn quant_mismatch_display_spells_out_both_directions() {
        let plain_on_quant = SnapshotError::QuantMismatch {
            found: Some(QuantTag::Sq8),
        };
        assert!(plain_on_quant.to_string().contains("plain loader"));
        assert!(plain_on_quant.to_string().contains("sq8"));
        let quant_on_plain = SnapshotError::QuantMismatch { found: None };
        assert!(quant_on_plain.to_string().contains("quantized loader"));
    }

    #[test]
    fn in_memory_bytes_adds_the_quant_store() {
        let base = sample().in_memory_bytes();
        assert_eq!(sample_f32().in_memory_bytes(), base + 6 * 4);
        assert_eq!(sample_sq8().in_memory_bytes(), base + 2 * 8 + 2 * 8 + 6);
    }

    #[test]
    fn roundtrip_through_io_traits() {
        let snap = sample();
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let mut reader = &buf[..];
        assert_eq!(Snapshot::read_from(&mut reader).unwrap(), snap);
    }

    #[test]
    fn roundtrip_through_a_file() {
        let snap = sample();
        let path = std::env::temp_dir().join(format!("pg_store_unit_{}.pgix", std::process::id()));
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Snapshot::load("/definitely/not/a/real/path.pgix").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "got {err:?}");
    }

    #[test]
    fn metric_tag_codes_are_stable() {
        for tag in [
            MetricTag::Euclidean,
            MetricTag::Manhattan,
            MetricTag::Chebyshev,
        ] {
            assert_eq!(MetricTag::from_code(tag.code()), Some(tag));
        }
        assert_eq!(MetricTag::Euclidean.code(), 0);
        assert_eq!(MetricTag::Manhattan.code(), 1);
        assert_eq!(MetricTag::Chebyshev.code(), 2);
        assert_eq!(MetricTag::from_code(3), None);
    }

    #[test]
    fn checksum_matches_fnv1a_test_vectors() {
        // Published FNV-1a 64 vectors.
        assert_eq!(checksum(b""), 0xcbf29ce484222325);
        assert_eq!(checksum(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(checksum(b"foobar"), 0x85944171f73967e8);
    }

    type Mutation = Box<dyn Fn(&mut Snapshot)>;

    #[test]
    fn validate_rejects_structural_violations() {
        let ok = sample();
        let cases: Vec<(&str, Mutation)> = vec![
            ("zero points", Box::new(|s| s.meta.n = 0)),
            ("zero dims", Box::new(|s| s.meta.dims = 0)),
            (
                "offsets length",
                Box::new(|s| s.offsets.pop().map(|_| ()).unwrap()),
            ),
            ("offsets start", Box::new(|s| s.offsets[0] = 1)),
            ("offsets monotone", Box::new(|s| s.offsets[1] = 5)),
            (
                "final offset",
                Box::new(|s| *s.offsets.last_mut().unwrap() = 7),
            ),
            ("target range", Box::new(|s| s.targets[0] = 3)),
            ("entry point", Box::new(|s| s.meta.entry_point = 3)),
            ("coords length", Box::new(|s| s.coords.push(0.0))),
            ("non-finite", Box::new(|s| s.coords[0] = f64::NAN)),
        ];
        for (name, mutate) in cases {
            let mut bad = ok.clone();
            mutate(&mut bad);
            let err = bad.validate().unwrap_err();
            assert!(
                matches!(err, SnapshotError::Invalid { .. }),
                "case {name}: got {err:?}"
            );
            // The write path refuses the same snapshot.
            assert!(bad.to_bytes().is_err(), "case {name}: to_bytes accepted");
        }
        ok.validate().unwrap();
    }

    #[test]
    fn error_display_is_informative() {
        let e = SnapshotError::UnsupportedVersion { found: 9 };
        assert!(e.to_string().contains("version 9"));
        let e = SnapshotError::MetricMismatch {
            expected: MetricTag::Euclidean,
            found: MetricTag::Manhattan,
        };
        assert!(e.to_string().contains("L2"));
        assert!(e.to_string().contains("L1"));
        let e = SnapshotError::ChecksumMismatch {
            section: SectionTag::Points,
        };
        assert!(e.to_string().contains("PNTS"));
    }

    #[test]
    fn in_memory_bytes_counts_all_three_arrays() {
        let snap = sample();
        let usize_bytes = std::mem::size_of::<usize>() as u64;
        assert_eq!(
            snap.in_memory_bytes(),
            4 * usize_bytes + 4 * 4 + 6 * 8 + 3 * 24
        );
    }

    fn sample_manifest() -> ShardManifest {
        ShardManifest::new(7, vec![vec![0, 3, 6], vec![1, 4], vec![2, 5]]).unwrap()
    }

    #[test]
    fn shard_manifest_round_trips_and_reports_shape() {
        let m = sample_manifest();
        assert_eq!(m.n(), 7);
        assert_eq!(m.shard_count(), 3);
        assert_eq!(m.shards()[1], vec![1, 4]);
        let bytes = m.to_bytes();
        assert_eq!(ShardManifest::from_bytes(&bytes).unwrap(), m);
        assert_eq!(m.clone().into_shards(), m.shards().to_vec());
    }

    #[test]
    fn shard_manifest_round_trips_through_a_file() {
        let m = sample_manifest();
        let path =
            std::env::temp_dir().join(format!("pg_store_manifest_{}.pgsm", std::process::id()));
        m.save(&path).unwrap();
        assert_eq!(ShardManifest::load(&path).unwrap(), m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shard_manifest_rejects_every_partition_violation() {
        // Duplicated id.
        assert!(ShardManifest::new(4, vec![vec![0, 1], vec![1, 2, 3]]).is_err());
        // Missing id (3 absent).
        assert!(ShardManifest::new(4, vec![vec![0, 1], vec![2]]).is_err());
        // Out-of-range id.
        assert!(ShardManifest::new(3, vec![vec![0, 1], vec![3]]).is_err());
        // Empty shard.
        assert!(ShardManifest::new(2, vec![vec![0, 1], vec![]]).is_err());
        // Not strictly ascending.
        assert!(ShardManifest::new(3, vec![vec![1, 0], vec![2]]).is_err());
        // Zero shards / zero points.
        assert!(ShardManifest::new(1, vec![]).is_err());
        assert!(ShardManifest::new(0, vec![vec![]]).is_err());
        // One shard holding everything is fine.
        assert!(ShardManifest::new(3, vec![vec![0, 1, 2]]).is_ok());
    }

    #[test]
    fn shard_manifest_every_corruption_is_typed() {
        let m = sample_manifest();
        let bytes = m.to_bytes();
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            ShardManifest::from_bytes(&bad),
            Err(SnapshotError::BadMagic)
        ));
        // Future version.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            ShardManifest::from_bytes(&bad),
            Err(SnapshotError::UnsupportedVersion { found: 9 })
        ));
        // Every truncation point fails, never panics.
        for cut in 0..bytes.len() {
            assert!(
                ShardManifest::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} was accepted"
            );
        }
        // Every payload byte flip is caught by the checksum.
        for i in 12..bytes.len() - 8 {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(matches!(
                ShardManifest::from_bytes(&bad),
                Err(SnapshotError::ChecksumMismatch {
                    section: SectionTag::Manifest
                })
            ));
        }
        // Trailing garbage after a valid payload fails the checksum frame.
        let mut bad = bytes.clone();
        bad.extend_from_slice(&[0u8; 4]);
        assert!(ShardManifest::from_bytes(&bad).is_err());
    }

    #[test]
    fn shard_file_names_are_stable_and_sorted() {
        assert_eq!(shard_file_name(0), "shard_0000.pgix");
        assert_eq!(shard_file_name(12), "shard_0012.pgix");
        let names: Vec<String> = (0..20).map(shard_file_name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
