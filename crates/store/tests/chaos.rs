//! Fault-injection suite for the snapshot I/O paths (requires the
//! `failpoints` cargo feature; CI's chaos job runs it with
//! `--test-threads=1`).
//!
//! The contract under test: **every** fault injected at **every**
//! registered failpoint site yields a typed [`SnapshotError`] — never a
//! panic, never a torn file at the destination — and once the fault
//! clears, the same operation succeeds. `faults_cover_every_registered_site`
//! enumerates `pg_store::sites::ALL` with an exhaustive match, so adding a
//! failpoint without a chaos scenario fails the suite.

use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use pg_fault::{configure, reset, FaultAction, FaultConfig};
use pg_store::{sites, BuildParams, IndexMeta, MetricTag, Snapshot, SnapshotError};

/// The pg_fault registry is process-global; every test serializes on this
/// lock and resets the registry at entry and exit.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    reset();
    guard
}

/// A small valid snapshot; `salt` varies the coordinates so two snapshots
/// are distinguishable on disk.
fn snapshot(salt: f64) -> Snapshot {
    Snapshot {
        meta: IndexMeta {
            metric: MetricTag::Euclidean,
            dims: 2,
            n: 3,
            entry_point: 0,
            build: Some(BuildParams {
                epsilon: 1.0,
                eta: 2,
                phi: 9.0,
            }),
        },
        offsets: vec![0, 2, 3, 4],
        targets: vec![1, 2, 0, 0],
        coords: vec![0.0, salt, 3.0, 4.0 + salt, 0.0, 1.0],
        quant: None,
    }
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pg_store_chaos_{}_{name}.pgix", std::process::id()))
}

/// Files in `path`'s directory whose names mark them as save temporaries
/// of `path` — visible only if a failed save leaked one.
fn leaked_temps(path: &Path) -> Vec<PathBuf> {
    let dir = path.parent().expect("temp path has a parent");
    let stem = path
        .file_name()
        .expect("temp path has a file name")
        .to_string_lossy()
        .into_owned();
    std::fs::read_dir(dir)
        .expect("listing the temp dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().starts_with(&format!("{stem}.tmp.")))
                .unwrap_or(false)
        })
        .collect()
}

/// Every registered failpoint site has a scenario: inject a fault at the
/// site, assert a typed error (not a panic, not a torn file), then assert
/// the operation succeeds once the fault is spent.
#[test]
fn faults_cover_every_registered_site() {
    let _g = serial();
    assert!(!sites::ALL.is_empty());
    for &site in sites::ALL {
        reset();
        let path = temp(&format!("site_{}", site.replace('.', "_")));
        let _ = std::fs::remove_file(&path);
        // Seed the destination with snapshot A so fault scenarios can
        // check it survives.
        let a = snapshot(0.25);
        a.save(&path).expect("seeding save must succeed");

        configure(
            site,
            FaultConfig::times(FaultAction::Fail(ErrorKind::Other), 1),
        );
        let b = snapshot(7.75);
        // Exhaustive over the registered sites: a new failpoint without a
        // scenario here fails the suite.
        match site {
            sites::SAVE_WRITE | sites::SAVE_SYNC | sites::SAVE_RENAME => {
                let err = b.save(&path).expect_err("injected save fault must surface");
                assert!(
                    matches!(err, SnapshotError::Io(_)),
                    "typed Io error expected at {site}, got {err:?}"
                );
                // The destination still holds complete, valid snapshot A.
                assert_eq!(Snapshot::load(&path).expect("old file intact"), a);
                // No temp debris from the failed save.
                assert_eq!(leaked_temps(&path), Vec::<PathBuf>::new());
            }
            sites::LOAD_READ => {
                let err = Snapshot::load(&path).expect_err("injected read fault must surface");
                assert!(
                    matches!(err, SnapshotError::Io(_)),
                    "typed Io error expected at {site}, got {err:?}"
                );
            }
            other => panic!("failpoint site {other} has no chaos scenario — add one"),
        }
        // The Times(1) budget is spent: the clean retry succeeds.
        assert_eq!(pg_fault::fired(site), 1, "{site} must have fired");
        b.save(&path).expect("retry after the fault clears");
        assert_eq!(Snapshot::load(&path).expect("reload"), b);
        let _ = std::fs::remove_file(&path);
    }
    reset();
}

/// A crash mid-write (short write into the temp file) can never be
/// observed at the destination: the old snapshot stays complete and the
/// torn bytes live only in the temporary, which the failed save removes.
#[test]
fn short_write_never_tears_the_destination() {
    let _g = serial();
    let path = temp("short_write");
    let _ = std::fs::remove_file(&path);
    let a = snapshot(1.5);
    a.save(&path).expect("seeding save");
    let full_len = std::fs::metadata(&path).expect("seed metadata").len() as usize;

    let b = snapshot(9.5);
    // Tear at every interesting boundary: nothing written, one byte, half
    // the payload, all but one byte.
    for torn in [0usize, 1, full_len / 2, full_len - 1] {
        configure(
            sites::SAVE_WRITE,
            FaultConfig::times(FaultAction::ShortWrite(torn), 1),
        );
        let err = b.save(&path).expect_err("torn write must fail the save");
        assert!(matches!(err, SnapshotError::Io(_)), "got {err:?}");
        assert_eq!(
            Snapshot::load(&path).expect("destination must stay complete"),
            a,
            "torn at {torn} bytes"
        );
        assert_eq!(leaked_temps(&path), Vec::<PathBuf>::new());
    }
    reset();
    b.save(&path).expect("clean save after the chaos");
    assert_eq!(Snapshot::load(&path).expect("reload"), b);
    let _ = std::fs::remove_file(&path);
}

/// Probabilistic chaos: with every save site flapping, a loop of saves
/// sees only typed errors, the destination is *always* loadable as one of
/// the two complete snapshots, and the seeds make every run identical.
#[test]
fn probabilistic_save_chaos_keeps_the_file_loadable() {
    let _g = serial();
    let path = temp("prob");
    let _ = std::fs::remove_file(&path);
    let a = snapshot(0.0);
    let b = snapshot(42.0);
    a.save(&path).expect("seeding save");

    for (seed_base, p) in [(100u64, 0.3), (200, 0.5)] {
        configure(
            sites::SAVE_WRITE,
            FaultConfig::prob(FaultAction::Fail(ErrorKind::Interrupted), seed_base, p),
        );
        configure(
            sites::SAVE_SYNC,
            FaultConfig::prob(FaultAction::Fail(ErrorKind::Other), seed_base + 1, p),
        );
        configure(
            sites::SAVE_RENAME,
            FaultConfig::prob(
                FaultAction::Fail(ErrorKind::PermissionDenied),
                seed_base + 2,
                p,
            ),
        );
        let mut failures = 0u32;
        for i in 0..40 {
            let next = if i % 2 == 0 { &b } else { &a };
            match next.save(&path) {
                Ok(()) => {}
                Err(SnapshotError::Io(_)) => failures += 1,
                Err(other) => panic!("non-Io error from an injected I/O fault: {other:?}"),
            }
            let on_disk = Snapshot::load(&path).expect("always a complete snapshot");
            assert!(on_disk == a || on_disk == b, "torn or mixed file observed");
            assert_eq!(leaked_temps(&path), Vec::<PathBuf>::new());
        }
        assert!(
            failures > 0,
            "p = {p} must inject something in 120 site hits"
        );
    }
    reset();
    let _ = std::fs::remove_file(&path);
}

/// The load failpoint models a transient read error: typed error while
/// armed, same call succeeds after.
#[test]
fn transient_read_error_then_clean_retry() {
    let _g = serial();
    let path = temp("read_retry");
    let a = snapshot(3.5);
    a.save(&path).expect("seeding save");
    configure(
        sites::LOAD_READ,
        FaultConfig::times(FaultAction::Fail(ErrorKind::Interrupted), 2),
    );
    for _ in 0..2 {
        let err = Snapshot::load(&path).expect_err("armed read must fail");
        assert!(matches!(err, SnapshotError::Io(_)));
    }
    assert_eq!(Snapshot::load(&path).expect("third try is clean"), a);
    reset();
    let _ = std::fs::remove_file(&path);
}
