//! Snapshot failure modes, exhaustively: every way a file can be damaged
//! must surface as the matching typed [`SnapshotError`] variant — never a
//! panic, never a partially-read index.
//!
//! The four modes the acceptance criteria name — truncation, a flipped
//! checksum-covered byte, a future `format_version`, and a metric-tag
//! mismatch — are covered here at the byte level (the metric mismatch via
//! the raw tag; the typed `QueryEngine::load` variant lives in
//! `pg_core::snapshot`'s tests, closer to the trait that raises it).

use pg_store::{
    checksum, BuildParams, IndexMeta, MetricTag, QuantSection, QuantTag, SectionTag, Snapshot,
    SnapshotError, HEADER_LEN, SECTION_HEADER_LEN,
};

fn sample() -> Snapshot {
    Snapshot {
        meta: IndexMeta {
            metric: MetricTag::Euclidean,
            dims: 3,
            n: 4,
            entry_point: 2,
            build: Some(BuildParams {
                epsilon: 0.5,
                eta: 3,
                phi: 17.0,
            }),
        },
        offsets: vec![0, 2, 4, 5, 6],
        targets: vec![1, 3, 0, 2, 1, 0],
        coords: (0..12).map(|i| i as f64 * 0.5 - 2.0).collect(),
        quant: None,
    }
}

fn sample_bytes() -> Vec<u8> {
    sample().to_bytes().unwrap()
}

/// Byte offset where the META section's payload starts.
const META_PAYLOAD: usize = HEADER_LEN + SECTION_HEADER_LEN;

/// Patches the META payload at `offset` and re-stamps the section checksum,
/// so the mutation reaches the structural decoder instead of tripping the
/// checksum gate.
fn patch_meta(bytes: &mut [u8], offset: usize, value: &[u8]) {
    bytes[META_PAYLOAD + offset..META_PAYLOAD + offset + value.len()].copy_from_slice(value);
    let len = u64::from_le_bytes(bytes[HEADER_LEN + 4..HEADER_LEN + 12].try_into().unwrap());
    let sum = checksum(&bytes[META_PAYLOAD..META_PAYLOAD + len as usize]);
    bytes[HEADER_LEN + 12..HEADER_LEN + 20].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn every_truncation_point_is_a_typed_error() {
    let bytes = sample_bytes();
    // Chop the file at every possible length: each prefix must fail with
    // Truncated (the bytes simply run out — no prefix of a valid snapshot
    // parses, because trailing sections are always required).
    for len in 0..bytes.len() {
        let err = Snapshot::from_bytes(&bytes[..len])
            .expect_err(&format!("prefix of {len} bytes parsed"));
        assert!(
            matches!(err, SnapshotError::Truncated { .. }),
            "prefix of {len} bytes: got {err:?}"
        );
    }
    // The full file still parses.
    assert!(Snapshot::from_bytes(&bytes).is_ok());
}

#[test]
fn every_flipped_payload_byte_is_caught() {
    let bytes = sample_bytes();
    // Flip one bit in every checksum-covered payload byte; parsing must
    // fail — with ChecksumMismatch naming the right section.
    let mut pos = HEADER_LEN;
    for expect in [SectionTag::Meta, SectionTag::Graph, SectionTag::Points] {
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let payload = pos + SECTION_HEADER_LEN;
        for i in 0..len {
            let mut bad = bytes.clone();
            bad[payload + i] ^= 0x40;
            match Snapshot::from_bytes(&bad) {
                Err(SnapshotError::ChecksumMismatch { section }) => {
                    assert_eq!(section, expect, "byte {i} of {expect}")
                }
                other => panic!("flipped byte {i} of {expect}: got {other:?}"),
            }
        }
        pos = payload + len;
    }
}

#[test]
fn flipped_stored_checksum_is_caught_too() {
    let mut bytes = sample_bytes();
    bytes[HEADER_LEN + 12] ^= 0x01; // first byte of META's stored checksum
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(SnapshotError::ChecksumMismatch {
            section: SectionTag::Meta
        })
    ));
}

#[test]
fn future_format_version_is_rejected() {
    let mut bytes = sample_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found }) => assert_eq!(found, 99),
        other => panic!("got {other:?}"),
    }
}

#[test]
fn version_zero_is_rejected_as_unsupported() {
    let mut bytes = sample_bytes();
    bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(SnapshotError::UnsupportedVersion { found: 0 })
    ));
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = sample_bytes();
    bytes[0] = b'X';
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(SnapshotError::BadMagic)
    ));
    // A file of something else entirely.
    assert!(matches!(
        Snapshot::from_bytes(b"not a snapshot at all, sorry"),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn unknown_metric_tag_is_invalid() {
    let mut bytes = sample_bytes();
    patch_meta(&mut bytes, 0, &7u32.to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Invalid { reason }) => {
            assert!(reason.contains("metric tag"), "reason: {reason}")
        }
        other => panic!("got {other:?}"),
    }
}

#[test]
fn raw_metric_tag_swap_survives_parsing_for_typed_loaders_to_catch() {
    // Re-tagging the metric (with a valid code) parses fine at this layer —
    // the byte format cannot know what the caller wants. The *typed* loader
    // (`QueryEngine::<_, M>::load`) turns it into MetricMismatch; here we
    // pin that the tag really is carried through.
    let mut bytes = sample_bytes();
    patch_meta(&mut bytes, 0, &MetricTag::Chebyshev.code().to_le_bytes());
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(snap.meta.metric, MetricTag::Chebyshev);
}

#[test]
fn cross_section_count_mismatch_is_invalid() {
    // META's n disagrees with GRPH/PNTS (checksums re-stamped): the
    // cross-checks must catch it.
    let mut bytes = sample_bytes();
    patch_meta(&mut bytes, 8, &5u64.to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Invalid { reason }) => {
            assert!(reason.contains("n = "), "reason: {reason}")
        }
        other => panic!("got {other:?}"),
    }
}

#[test]
fn out_of_range_entry_point_is_invalid() {
    let mut bytes = sample_bytes();
    patch_meta(&mut bytes, 16, &9u32.to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Invalid { reason }) => {
            assert!(reason.contains("entry point"), "reason: {reason}")
        }
        other => panic!("got {other:?}"),
    }
}

#[test]
fn trailing_garbage_is_invalid() {
    let mut bytes = sample_bytes();
    bytes.extend_from_slice(b"junk");
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Invalid { reason }) => {
            assert!(reason.contains("trailing"), "reason: {reason}")
        }
        other => panic!("got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Version-2 (quantized) snapshots get the full corruption treatment too:
// every truncation offset, every flipped payload byte, every structural
// cross-check, and the loader-direction mismatches — all typed, no panics.
// ---------------------------------------------------------------------------

/// The [`sample`] snapshot carrying an `f32` compact section (format v2).
fn sample_f32() -> Snapshot {
    let mut snap = sample();
    snap.quant = Some(QuantSection::F32 {
        data: snap.coords.iter().map(|&c| c as f32).collect(),
    });
    snap
}

/// The [`sample`] snapshot carrying an SQ8 compact section (format v2).
fn sample_sq8() -> Snapshot {
    let mut snap = sample();
    snap.quant = Some(QuantSection::Sq8 {
        mins: vec![-2.0, -1.5, -1.0],
        steps: vec![4.0 / 255.0, 4.5 / 255.0, 5.0 / 255.0],
        codes: (0..12).map(|i| (i * 21) as u8).collect(),
    });
    snap
}

/// Both quantized fixtures as `(tag, bytes)` pairs.
fn quant_fixtures() -> [(QuantTag, Vec<u8>); 2] {
    [
        (QuantTag::F32, sample_f32().to_bytes().unwrap()),
        (QuantTag::Sq8, sample_sq8().to_bytes().unwrap()),
    ]
}

/// Byte offset where section `idx` (0-based) starts, by walking the frames.
fn section_start(bytes: &[u8], idx: usize) -> usize {
    let mut pos = HEADER_LEN;
    for _ in 0..idx {
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        pos += SECTION_HEADER_LEN + len;
    }
    pos
}

/// Patches section `idx`'s payload at `offset` and re-stamps that section's
/// checksum, so the mutation reaches the structural decoder.
fn patch_section(bytes: &mut [u8], idx: usize, offset: usize, value: &[u8]) {
    let start = section_start(bytes, idx);
    let payload = start + SECTION_HEADER_LEN;
    bytes[payload + offset..payload + offset + value.len()].copy_from_slice(value);
    let len = u64::from_le_bytes(bytes[start + 4..start + 12].try_into().unwrap()) as usize;
    let sum = checksum(&bytes[payload..payload + len]);
    bytes[start + 12..start + 20].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn every_truncation_point_of_a_quantized_snapshot_is_typed() {
    for (tag, bytes) in quant_fixtures() {
        for len in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..len])
                .expect_err(&format!("{tag}: prefix of {len} bytes parsed"));
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "{tag}: prefix of {len} bytes: got {err:?}"
            );
        }
        let full = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(full.quant.as_ref().unwrap().tag(), tag);
    }
}

#[test]
fn every_flipped_payload_byte_of_a_quantized_snapshot_is_caught() {
    for (tag, bytes) in quant_fixtures() {
        let quant_section = tag.section();
        let expect = [
            SectionTag::Meta,
            SectionTag::Graph,
            SectionTag::Points,
            quant_section,
        ];
        let mut pos = HEADER_LEN;
        for section in expect {
            let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
            let payload = pos + SECTION_HEADER_LEN;
            for i in 0..len {
                let mut bad = bytes.clone();
                bad[payload + i] ^= 0x40;
                match Snapshot::from_bytes(&bad) {
                    Err(SnapshotError::ChecksumMismatch { section: got }) => {
                        assert_eq!(got, section, "{tag}: byte {i} of {section:?}")
                    }
                    other => panic!("{tag}: flipped byte {i} of {section:?}: got {other:?}"),
                }
            }
            pos = payload + len;
        }
    }
}

#[test]
fn quant_section_count_cross_checks_are_invalid_not_panics() {
    for (tag, bytes) in quant_fixtures() {
        // The quant payload's own n disagrees with META's.
        let mut bad_n = bytes.clone();
        patch_section(&mut bad_n, 3, 0, &9u64.to_le_bytes());
        match Snapshot::from_bytes(&bad_n) {
            Err(SnapshotError::Invalid { reason }) => {
                assert!(reason.contains("n = "), "{tag}: reason: {reason}")
            }
            other => panic!("{tag}: bad quant n: got {other:?}"),
        }
        // ...and so does its dims.
        let mut bad_d = bytes.clone();
        patch_section(&mut bad_d, 3, 8, &7u32.to_le_bytes());
        match Snapshot::from_bytes(&bad_d) {
            Err(SnapshotError::Invalid { reason }) => {
                assert!(reason.contains("dims"), "{tag}: reason: {reason}")
            }
            other => panic!("{tag}: bad quant dims: got {other:?}"),
        }
    }
}

#[test]
fn retagging_the_quant_section_is_invalid_not_a_panic() {
    // Swapping the 4th section's tag (frame checksum intact — the tag is
    // not checksum-covered) makes the payload size wrong for the claimed
    // representation: a structural error, never an out-of-bounds read.
    for (tag, bytes) in quant_fixtures() {
        let other_tag = match tag {
            QuantTag::F32 => SectionTag::PointsSq8,
            QuantTag::Sq8 => SectionTag::Points32,
        };
        let start = section_start(&bytes, 3);
        let mut bad = bytes.clone();
        bad[start..start + 4].copy_from_slice(&other_tag.bytes());
        match Snapshot::from_bytes(&bad) {
            Err(SnapshotError::Invalid { reason }) => {
                assert!(
                    reason.contains("bytes") || reason.contains("payload"),
                    "{tag}: reason: {reason}"
                )
            }
            other => panic!("{tag}: retagged section: got {other:?}"),
        }
        // A non-quant tag in the 4th slot is rejected by name.
        let mut nonq = bytes.clone();
        nonq[start..start + 4].copy_from_slice(&SectionTag::Meta.bytes());
        match Snapshot::from_bytes(&nonq) {
            Err(SnapshotError::Invalid { reason }) => {
                assert!(
                    reason.contains("quantized section"),
                    "{tag}: reason: {reason}"
                )
            }
            other => panic!("{tag}: META in quant slot: got {other:?}"),
        }
    }
}

#[test]
fn version_and_section_count_must_agree() {
    // A v2 body with the version byte rewritten to 1 (and vice versa) is a
    // structural error: the version dictates the exact section count.
    let (_, quant_bytes) = &quant_fixtures()[0];
    let mut v1_with_quant = quant_bytes.clone();
    v1_with_quant[8..12].copy_from_slice(&1u32.to_le_bytes());
    match Snapshot::from_bytes(&v1_with_quant) {
        Err(SnapshotError::Invalid { reason }) => {
            assert!(reason.contains("sections"), "reason: {reason}")
        }
        other => panic!("v1 header on v2 body: got {other:?}"),
    }

    let mut v2_without_quant = sample_bytes();
    v2_without_quant[8..12].copy_from_slice(&2u32.to_le_bytes());
    match Snapshot::from_bytes(&v2_without_quant) {
        Err(SnapshotError::Invalid { reason }) => {
            assert!(reason.contains("sections"), "reason: {reason}")
        }
        other => panic!("v2 header on v1 body: got {other:?}"),
    }
}

#[test]
fn quantized_bytes_carry_the_tag_for_typed_loaders_to_catch() {
    // The byte layer parses a quantized snapshot happily — the plain-vs-
    // quantized loader mismatch is typed one level up (QueryEngine::load
    // raises QuantMismatch{found: Some(tag)}, load_quantized raises
    // QuantMismatch{found: None}; see pg_core::snapshot's tests). Here we
    // pin that the parsed value carries exactly what those loaders match on.
    for (tag, bytes) in quant_fixtures() {
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.quant.as_ref().unwrap().tag(), tag);
    }
    let plain = Snapshot::from_bytes(&sample_bytes()).unwrap();
    assert!(plain.quant.is_none());
}

#[test]
fn wrong_section_order_is_invalid() {
    // Swap the GRPH and PNTS sections wholesale (frames intact, checksums
    // valid): the fixed v1 order is part of the format.
    let bytes = sample_bytes();
    let grph_start = {
        let meta_len =
            u64::from_le_bytes(bytes[HEADER_LEN + 4..HEADER_LEN + 12].try_into().unwrap());
        HEADER_LEN + SECTION_HEADER_LEN + meta_len as usize
    };
    let pnts_start = {
        let grph_len =
            u64::from_le_bytes(bytes[grph_start + 4..grph_start + 12].try_into().unwrap());
        grph_start + SECTION_HEADER_LEN + grph_len as usize
    };
    let mut swapped = bytes[..grph_start].to_vec();
    swapped.extend_from_slice(&bytes[pnts_start..]);
    swapped.extend_from_slice(&bytes[grph_start..pnts_start]);
    assert_eq!(swapped.len(), bytes.len());
    match Snapshot::from_bytes(&swapped) {
        Err(SnapshotError::Invalid { reason }) => {
            assert!(reason.contains("expected section"), "reason: {reason}")
        }
        other => panic!("got {other:?}"),
    }
}
