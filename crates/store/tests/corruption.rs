//! Snapshot failure modes, exhaustively: every way a file can be damaged
//! must surface as the matching typed [`SnapshotError`] variant — never a
//! panic, never a partially-read index.
//!
//! The four modes the acceptance criteria name — truncation, a flipped
//! checksum-covered byte, a future `format_version`, and a metric-tag
//! mismatch — are covered here at the byte level (the metric mismatch via
//! the raw tag; the typed `QueryEngine::load` variant lives in
//! `pg_core::snapshot`'s tests, closer to the trait that raises it).

use pg_store::{
    checksum, BuildParams, IndexMeta, MetricTag, SectionTag, Snapshot, SnapshotError, HEADER_LEN,
    SECTION_HEADER_LEN,
};

fn sample() -> Snapshot {
    Snapshot {
        meta: IndexMeta {
            metric: MetricTag::Euclidean,
            dims: 3,
            n: 4,
            entry_point: 2,
            build: Some(BuildParams {
                epsilon: 0.5,
                eta: 3,
                phi: 17.0,
            }),
        },
        offsets: vec![0, 2, 4, 5, 6],
        targets: vec![1, 3, 0, 2, 1, 0],
        coords: (0..12).map(|i| i as f64 * 0.5 - 2.0).collect(),
    }
}

fn sample_bytes() -> Vec<u8> {
    sample().to_bytes().unwrap()
}

/// Byte offset where the META section's payload starts.
const META_PAYLOAD: usize = HEADER_LEN + SECTION_HEADER_LEN;

/// Patches the META payload at `offset` and re-stamps the section checksum,
/// so the mutation reaches the structural decoder instead of tripping the
/// checksum gate.
fn patch_meta(bytes: &mut [u8], offset: usize, value: &[u8]) {
    bytes[META_PAYLOAD + offset..META_PAYLOAD + offset + value.len()].copy_from_slice(value);
    let len = u64::from_le_bytes(bytes[HEADER_LEN + 4..HEADER_LEN + 12].try_into().unwrap());
    let sum = checksum(&bytes[META_PAYLOAD..META_PAYLOAD + len as usize]);
    bytes[HEADER_LEN + 12..HEADER_LEN + 20].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn every_truncation_point_is_a_typed_error() {
    let bytes = sample_bytes();
    // Chop the file at every possible length: each prefix must fail with
    // Truncated (the bytes simply run out — no prefix of a valid snapshot
    // parses, because trailing sections are always required).
    for len in 0..bytes.len() {
        let err = Snapshot::from_bytes(&bytes[..len])
            .expect_err(&format!("prefix of {len} bytes parsed"));
        assert!(
            matches!(err, SnapshotError::Truncated { .. }),
            "prefix of {len} bytes: got {err:?}"
        );
    }
    // The full file still parses.
    assert!(Snapshot::from_bytes(&bytes).is_ok());
}

#[test]
fn every_flipped_payload_byte_is_caught() {
    let bytes = sample_bytes();
    // Flip one bit in every checksum-covered payload byte; parsing must
    // fail — with ChecksumMismatch naming the right section.
    let mut pos = HEADER_LEN;
    for expect in [SectionTag::Meta, SectionTag::Graph, SectionTag::Points] {
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let payload = pos + SECTION_HEADER_LEN;
        for i in 0..len {
            let mut bad = bytes.clone();
            bad[payload + i] ^= 0x40;
            match Snapshot::from_bytes(&bad) {
                Err(SnapshotError::ChecksumMismatch { section }) => {
                    assert_eq!(section, expect, "byte {i} of {expect}")
                }
                other => panic!("flipped byte {i} of {expect}: got {other:?}"),
            }
        }
        pos = payload + len;
    }
}

#[test]
fn flipped_stored_checksum_is_caught_too() {
    let mut bytes = sample_bytes();
    bytes[HEADER_LEN + 12] ^= 0x01; // first byte of META's stored checksum
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(SnapshotError::ChecksumMismatch {
            section: SectionTag::Meta
        })
    ));
}

#[test]
fn future_format_version_is_rejected() {
    let mut bytes = sample_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found }) => assert_eq!(found, 99),
        other => panic!("got {other:?}"),
    }
}

#[test]
fn version_zero_is_rejected_as_unsupported() {
    let mut bytes = sample_bytes();
    bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(SnapshotError::UnsupportedVersion { found: 0 })
    ));
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = sample_bytes();
    bytes[0] = b'X';
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(SnapshotError::BadMagic)
    ));
    // A file of something else entirely.
    assert!(matches!(
        Snapshot::from_bytes(b"not a snapshot at all, sorry"),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn unknown_metric_tag_is_invalid() {
    let mut bytes = sample_bytes();
    patch_meta(&mut bytes, 0, &7u32.to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Invalid { reason }) => {
            assert!(reason.contains("metric tag"), "reason: {reason}")
        }
        other => panic!("got {other:?}"),
    }
}

#[test]
fn raw_metric_tag_swap_survives_parsing_for_typed_loaders_to_catch() {
    // Re-tagging the metric (with a valid code) parses fine at this layer —
    // the byte format cannot know what the caller wants. The *typed* loader
    // (`QueryEngine::<_, M>::load`) turns it into MetricMismatch; here we
    // pin that the tag really is carried through.
    let mut bytes = sample_bytes();
    patch_meta(&mut bytes, 0, &MetricTag::Chebyshev.code().to_le_bytes());
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(snap.meta.metric, MetricTag::Chebyshev);
}

#[test]
fn cross_section_count_mismatch_is_invalid() {
    // META's n disagrees with GRPH/PNTS (checksums re-stamped): the
    // cross-checks must catch it.
    let mut bytes = sample_bytes();
    patch_meta(&mut bytes, 8, &5u64.to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Invalid { reason }) => {
            assert!(reason.contains("n = "), "reason: {reason}")
        }
        other => panic!("got {other:?}"),
    }
}

#[test]
fn out_of_range_entry_point_is_invalid() {
    let mut bytes = sample_bytes();
    patch_meta(&mut bytes, 16, &9u32.to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Invalid { reason }) => {
            assert!(reason.contains("entry point"), "reason: {reason}")
        }
        other => panic!("got {other:?}"),
    }
}

#[test]
fn trailing_garbage_is_invalid() {
    let mut bytes = sample_bytes();
    bytes.extend_from_slice(b"junk");
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Invalid { reason }) => {
            assert!(reason.contains("trailing"), "reason: {reason}")
        }
        other => panic!("got {other:?}"),
    }
}

#[test]
fn wrong_section_order_is_invalid() {
    // Swap the GRPH and PNTS sections wholesale (frames intact, checksums
    // valid): the fixed v1 order is part of the format.
    let bytes = sample_bytes();
    let grph_start = {
        let meta_len =
            u64::from_le_bytes(bytes[HEADER_LEN + 4..HEADER_LEN + 12].try_into().unwrap());
        HEADER_LEN + SECTION_HEADER_LEN + meta_len as usize
    };
    let pnts_start = {
        let grph_len =
            u64::from_le_bytes(bytes[grph_start + 4..grph_start + 12].try_into().unwrap());
        grph_start + SECTION_HEADER_LEN + grph_len as usize
    };
    let mut swapped = bytes[..grph_start].to_vec();
    swapped.extend_from_slice(&bytes[pnts_start..]);
    swapped.extend_from_slice(&bytes[grph_start..pnts_start]);
    assert_eq!(swapped.len(), bytes.len());
    match Snapshot::from_bytes(&swapped) {
        Err(SnapshotError::Invalid { reason }) => {
            assert!(reason.contains("expected section"), "reason: {reason}")
        }
        other => panic!("got {other:?}"),
    }
}
