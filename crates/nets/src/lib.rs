//! `r`-nets and hierarchical net construction for doubling metrics.
//!
//! Section 2 of the paper builds its proximity graph `G_net` from a ladder of
//! nets `Y_0, ..., Y_h` where `Y_i` is a `2^i`-net of the data set `P`
//! (Eq. 2): a subset that is **separated** (`D(y_1, y_2) >= r` for distinct
//! net points) and **covering** (every `x ∈ P` has a net point within `r`).
//!
//! Two constructions are provided:
//!
//! * [`greedy_net`] / [`independent_hierarchy`] — the textbook `O(n * |Y|)`
//!   greedy net, used as ground truth and for cross-validation;
//! * [`NetHierarchy::build`] — a top-down hierarchical construction in the
//!   spirit of Har-Peled–Mendel \[15, Thm 3.2\] (which the paper invokes for
//!   line 1 of its `build` procedure). Each level's centers carry *friends
//!   lists* (nearby centers at the same scale), and each point's covering
//!   center is found by scanning only the friends of its previous cover.
//!   On a metric with doubling dimension `λ` this costs `2^{O(λ)}` distance
//!   evaluations per point per level, i.e. `2^{O(λ)} * n log Δ` in total —
//!   the near-linear bound Theorem 1.1 needs. Every level is an **exact**
//!   `r`-net (no slack factors), and the ladder is nested
//!   (`Y_{i+1} ⊆ Y_i`), which only strengthens the paper's requirements.
//!
//! The hierarchy also recovers, for free, the `d̂_min`/`d̂_max` estimates of
//! the Section 2.4 remark: the top radius is the 2-approximate diameter and
//! the bottom radius lies in `[d_min/2, d_min)` (see
//! [`NetHierarchy::bottom_radius`]).
//!
//! [`RelativesCascade`] generalizes the friends lists to any radius factor
//! `K >= 4`; `pg-core` uses it with `K = φ + 1` to enumerate the out-edges of
//! `G_net` without scanning whole levels.
//!
//! Where this crate sits in the workspace is mapped in `ARCHITECTURE.md`
//! at the repository root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cascade;
mod greedy;
mod hierarchy;

pub use cascade::RelativesCascade;
pub use greedy::{greedy_net, independent_hierarchy, validate_net};
pub use hierarchy::{NetHierarchy, NetLevel};
