//! Textbook greedy `r`-nets (quadratic; ground truth for tests and the
//! "naive" construction path).

use pg_metric::{Dataset, Metric};

/// Computes an `r`-net of the points `ids` by a greedy pass: a point becomes
/// a center unless an existing center lies within `r` of it.
///
/// The result satisfies both net properties by construction:
/// separation `> r` between centers (strictly, so `>= r` holds) and covering
/// radius `<= r`. Cost: `O(|ids| * |net|)` distance evaluations.
pub fn greedy_net<P, M: Metric<P>>(data: &Dataset<P, M>, ids: &[u32], r: f64) -> Vec<u32> {
    assert!(r >= 0.0 && r.is_finite());
    let mut centers: Vec<u32> = Vec::new();
    'outer: for &p in ids {
        for &c in &centers {
            if data.dist(p as usize, c as usize) <= r {
                continue 'outer;
            }
        }
        centers.push(p);
    }
    centers
}

/// Checks the two net properties of Section 2 for `centers` as an `r`-net of
/// `ids`: separation (`D(y_1, y_2) >= r`) and covering
/// (`∀x ∃y: D(x, y) <= r`). Quadratic; intended for tests.
pub fn validate_net<P, M: Metric<P>>(
    data: &Dataset<P, M>,
    ids: &[u32],
    centers: &[u32],
    r: f64,
) -> Result<(), String> {
    for (a, &y1) in centers.iter().enumerate() {
        if !ids.contains(&y1) {
            return Err(format!("center {y1} is not a member of the ground set"));
        }
        for &y2 in centers.iter().skip(a + 1) {
            let d = data.dist(y1 as usize, y2 as usize);
            if d < r * (1.0 - 1e-12) {
                return Err(format!(
                    "separation violated: D({y1}, {y2}) = {d} < r = {r}"
                ));
            }
        }
    }
    'cover: for &x in ids {
        for &y in centers {
            if data.dist(x as usize, y as usize) <= r * (1.0 + 1e-12) {
                continue 'cover;
            }
        }
        return Err(format!(
            "covering violated: point {x} has no center within {r}"
        ));
    }
    Ok(())
}

/// Builds *independent* greedy nets at the radius ladder
/// `r_top, r_top/2, ..., r_bottom` (one net per level, not nested), matching
/// the paper's Eq. (2) verbatim where each `Y_i` is any `2^i`-net of `P`.
///
/// Returns levels bottom-up: `out[0]` is the finest net (all of `P` when
/// `r_bottom < d_min`), `out.last()` the coarsest. Quadratic per level;
/// reference implementation for cross-validation against
/// [`crate::NetHierarchy`].
pub fn independent_hierarchy<P, M: Metric<P>>(
    data: &Dataset<P, M>,
    r_top: f64,
    r_bottom: f64,
) -> Vec<(f64, Vec<u32>)> {
    assert!(r_bottom > 0.0 && r_top >= r_bottom);
    let ids: Vec<u32> = (0..data.len() as u32).collect();
    let mut out = Vec::new();
    let mut r = r_top;
    loop {
        out.push((r, greedy_net(data, &ids, r)));
        if r <= r_bottom {
            break;
        }
        r /= 2.0;
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_dataset(n: usize, seed: u64) -> Dataset<Vec<f64>, Euclidean> {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::new(
            (0..n)
                .map(|_| vec![rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)])
                .collect(),
            Euclidean,
        )
    }

    #[test]
    fn greedy_net_is_a_valid_net() {
        let ds = random_dataset(300, 1);
        let ids: Vec<u32> = (0..300).collect();
        for r in [1.0, 5.0, 20.0, 100.0] {
            let net = greedy_net(&ds, &ids, r);
            validate_net(&ds, &ids, &net, r).unwrap();
        }
    }

    #[test]
    fn tiny_radius_keeps_every_point() {
        let ds = random_dataset(50, 2);
        let ids: Vec<u32> = (0..50).collect();
        let (dmin, _) = ds.min_max_interpoint();
        let net = greedy_net(&ds, &ids, dmin * 0.5);
        assert_eq!(net.len(), 50, "a net finer than d_min must be all of P");
    }

    #[test]
    fn huge_radius_keeps_one_point() {
        let ds = random_dataset(50, 3);
        let ids: Vec<u32> = (0..50).collect();
        let net = greedy_net(&ds, &ids, 1e6);
        assert_eq!(net, vec![0]);
    }

    #[test]
    fn validator_detects_separation_violation() {
        let ds = random_dataset(20, 4);
        let ids: Vec<u32> = (0..20).collect();
        // All points as centers at a large radius: separation must fail.
        let err = validate_net(&ds, &ids, &ids, 1e5).unwrap_err();
        assert!(err.contains("separation"));
    }

    #[test]
    fn validator_detects_covering_violation() {
        let ds = random_dataset(20, 5);
        let ids: Vec<u32> = (0..20).collect();
        // Single center at a tiny radius: covering must fail.
        let err = validate_net(&ds, &ids, &[0], 1e-6).unwrap_err();
        assert!(err.contains("covering"));
    }

    #[test]
    fn independent_hierarchy_levels_are_nets() {
        let ds = random_dataset(120, 6);
        let ids: Vec<u32> = (0..120).collect();
        let levels = independent_hierarchy(&ds, 200.0, 0.5);
        assert!(levels.len() >= 8);
        for (r, net) in &levels {
            validate_net(&ds, &ids, net, *r).unwrap();
        }
        // Radii double going up.
        for w in levels.windows(2) {
            assert!((w[1].0 / w[0].0 - 2.0).abs() < 1e-12);
        }
    }
}
