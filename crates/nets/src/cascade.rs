//! Top-down cascade of *relatives lists*: for every net center at the
//! current level, all centers within `K * radius`.
//!
//! This generalizes the construction-time friends lists to an arbitrary
//! factor `K >= 4`. `pg-core` drives the cascade with `K = φ + 1` to
//! enumerate the out-edges of `G_net`: the centers within `φ * r_i` of a
//! point `p` are all relatives of `p`'s covering center (by the triangle
//! inequality, they lie within `(φ + 1) * r_i` of it). On a doubling metric
//! each relatives list has `K^{O(λ)}` entries (the packing bound, Fact 2.3),
//! which is exactly the `O(φ^λ)` term in the paper's Eq. (13).

use pg_metric::{Dataset, Metric};

use crate::hierarchy::NetHierarchy;

/// Iterator-style descent through a [`NetHierarchy`], maintaining relatives
/// lists for one level at a time (memory stays proportional to a single
/// level's output rather than the whole ladder's).
#[derive(Debug)]
pub struct RelativesCascade<'h, 'd, P, M> {
    hierarchy: &'h NetHierarchy,
    data: &'d Dataset<P, M>,
    k: f64,
    /// Index of the current level (bottom-up indexing; starts at the top).
    level_idx: usize,
    /// `rel[pos]` = positions (within the current level) of all centers
    /// within `k * radius` of the center at `pos`. Includes `pos` itself.
    rel: Vec<Vec<u32>>,
}

impl<'h, 'd, P, M: Metric<P>> RelativesCascade<'h, 'd, P, M> {
    /// Starts a cascade at the top level. `k` must be at least 4 for the
    /// level-to-level recurrence to be complete.
    pub fn new(data: &'d Dataset<P, M>, hierarchy: &'h NetHierarchy, k: f64) -> Self {
        assert!(k >= 4.0, "relatives factor must be >= 4, got {k}");
        RelativesCascade {
            hierarchy,
            data,
            k,
            level_idx: hierarchy.num_levels() - 1,
            rel: vec![vec![0]],
        }
    }

    /// The level the relatives currently describe (bottom-up index).
    pub fn level_idx(&self) -> usize {
        self.level_idx
    }

    /// The relatives factor `K`.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Relatives lists for the current level: `relatives()[pos]` holds the
    /// positions of every center within `k * radius` of center `pos`.
    pub fn relatives(&self) -> &[Vec<u32>] {
        &self.rel
    }

    /// Moves one level down, recomputing relatives. Returns `false` (and
    /// does nothing) when already at the bottom level.
    ///
    /// Completeness argument: let `y, z` be centers of the lower level with
    /// `D(y, z) <= k * r`. Their parents (covers at the upper level, radius
    /// `2r`) satisfy `D(parent(y), parent(z)) <= k*r + 2r + 2r =
    /// (k/2 + 2) * (2r) <= k * (2r)` since `k >= 4`, so `parent(z)` is a
    /// relative of `parent(y)` and `z` is found either as a carried-over
    /// center or as a freshly promoted child of that relative.
    pub fn descend(&mut self) -> bool {
        if self.level_idx == 0 {
            return false;
        }
        let above = self.hierarchy.level(self.level_idx);
        let below = self.hierarchy.level(self.level_idx - 1);
        let r_below = below.radius;

        // Freshly promoted centers of `below`, grouped by parent position.
        let mut new_by_parent: Vec<Vec<u32>> = vec![Vec::new(); above.len()];
        for pos in above.len()..below.len() {
            new_by_parent[below.parent_pos[pos] as usize].push(pos as u32);
        }

        let mut next_rel: Vec<Vec<u32>> = Vec::with_capacity(below.len());
        for pos in 0..below.len() {
            let y = below.centers[pos] as usize;
            let ppos = below.parent_pos[pos] as usize;
            let mut list = Vec::new();
            for &f in &self.rel[ppos] {
                // Carried-over center: same position at both levels.
                let old_pid = above.centers[f as usize];
                if self.data.dist(y, old_pid as usize) <= self.k * r_below {
                    list.push(f);
                }
                for &np in &new_by_parent[f as usize] {
                    let new_pid = below.centers[np as usize];
                    if self.data.dist(y, new_pid as usize) <= self.k * r_below {
                        list.push(np);
                    }
                }
            }
            next_rel.push(list);
        }

        self.rel = next_rel;
        self.level_idx -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_dataset(n: usize, seed: u64) -> Dataset<Vec<f64>, Euclidean> {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::new(
            (0..n)
                .map(|_| vec![rng.random_range(0.0..64.0), rng.random_range(0.0..64.0)])
                .collect(),
            Euclidean,
        )
    }

    /// Brute-force relatives at a level, for comparison.
    fn brute_rel(
        data: &Dataset<Vec<f64>, Euclidean>,
        centers: &[u32],
        k: f64,
        r: f64,
    ) -> Vec<Vec<u32>> {
        centers
            .iter()
            .map(|&y| {
                centers
                    .iter()
                    .enumerate()
                    .filter(|&(_, &z)| data.dist(y as usize, z as usize) <= k * r)
                    .map(|(pos, _)| pos as u32)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn cascade_matches_brute_force_at_every_level() {
        let ds = random_dataset(150, 5);
        let h = NetHierarchy::build(&ds);
        for k in [4.0, 6.0, 10.0] {
            let mut cascade = RelativesCascade::new(&ds, &h, k);
            loop {
                let lvl = h.level(cascade.level_idx());
                let expect = brute_rel(&ds, &lvl.centers, k, lvl.radius);
                let got: Vec<Vec<u32>> = cascade
                    .relatives()
                    .iter()
                    .map(|v| {
                        let mut v = v.clone();
                        v.sort_unstable();
                        v
                    })
                    .collect();
                assert_eq!(got, expect, "k = {k}, level = {}", cascade.level_idx());
                if !cascade.descend() {
                    break;
                }
            }
        }
    }

    #[test]
    fn relatives_always_include_self() {
        let ds = random_dataset(80, 6);
        let h = NetHierarchy::build(&ds);
        let mut cascade = RelativesCascade::new(&ds, &h, 4.0);
        loop {
            for (pos, list) in cascade.relatives().iter().enumerate() {
                assert!(
                    list.contains(&(pos as u32)),
                    "center {pos} missing from its own relatives"
                );
            }
            if !cascade.descend() {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be >= 4")]
    fn factor_below_four_rejected() {
        let ds = random_dataset(10, 7);
        let h = NetHierarchy::build(&ds);
        let _ = RelativesCascade::new(&ds, &h, 3.0);
    }
}
