//! The hierarchical net ladder `Y_0 ⊇ Y_1 ⊇ ... ⊇ Y_h` with near-linear
//! construction (Har-Peled–Mendel substitute; see crate docs).

use pg_metric::aspect::approx_diameter;
use pg_metric::{Dataset, Metric};

/// Sentinel for "not a center at this level".
pub(crate) const NOT_A_CENTER: u32 = u32::MAX;

/// One level of a [`NetHierarchy`]: an exact `radius`-net of `P`.
///
/// **Position invariant**: the centers of level `i` that already existed at
/// level `i+1` occupy the same positions (indices into `centers`) as they do
/// at level `i+1`; newly promoted centers are appended after them. Several
/// algorithms (friends lists, [`crate::RelativesCascade`]) rely on this.
#[derive(Debug, Clone)]
pub struct NetLevel {
    /// Net radius `r_i` of this level.
    pub radius: f64,
    /// Dataset ids of the net points, position-indexed.
    pub centers: Vec<u32>,
    /// For every dataset id: position (in `centers`) of a covering center
    /// with `D(p, center) <= radius`. Centers cover themselves.
    pub cover: Vec<u32>,
    /// For every dataset id: its position in `centers`, or
    /// [`u32::MAX`] if it is not a center at this level.
    pub pos_of: Vec<u32>,
    /// For every center position: the position of its parent (its covering
    /// center one level up). At the top level this is `0`.
    ///
    /// By the position invariant, `parent_pos[i] == i` for carried-over
    /// centers (`i < |Y_{i+1}|`).
    pub parent_pos: Vec<u32>,
}

impl NetLevel {
    /// Number of net points at this level.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// Whether the level is empty (never true in a built hierarchy).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Dataset id of the center covering dataset point `pid`.
    pub fn cover_center(&self, pid: u32) -> u32 {
        self.centers[self.cover[pid as usize] as usize]
    }

    /// Whether dataset point `pid` is a net point at this level.
    pub fn is_center(&self, pid: u32) -> bool {
        self.pos_of[pid as usize] != NOT_A_CENTER
    }
}

/// A nested ladder of exact `r`-nets of a dataset with radii
/// `r_bot, 2 r_bot, 4 r_bot, ..., r_top`, stored bottom-up
/// (`level(0)` is the finest; `level(h)` has a single center).
///
/// Guarantees (checked by [`NetHierarchy::validate`] and property tests):
///
/// * every level is an exact `radius`-net of `P` — separation `> radius`
///   and covering `<= radius`, as required by the paper's Section 2;
/// * levels are nested: `Y_{i+1} ⊆ Y_i`;
/// * the bottom level is all of `P` (its radius is below `d_min`), playing
///   the role of `Y_0 = P` in the paper;
/// * `bottom_radius() ∈ [d_min/2, d_min)` and `top_radius() ∈
///   [diam, 2 diam]` — the `d̂`-estimates of the Section 2.4 remark come for
///   free.
#[derive(Debug, Clone)]
pub struct NetHierarchy {
    levels: Vec<NetLevel>,
}

/// Friends-list radius factor used during construction. Any value `>= 4`
/// closes the level-to-level recurrence (see `RelativesCascade`); 4 is the
/// cheapest.
const BUILD_FRIEND_FACTOR: f64 = 4.0;

impl NetHierarchy {
    /// Builds the hierarchy top-down.
    ///
    /// Each level is derived from the one above by promoting every point not
    /// covered within the halved radius; candidate covers are found through
    /// the friends lists of the previous level, so the whole construction
    /// costs `2^{O(λ)}` distances per point per level instead of a full
    /// scan. Construction is deterministic (no randomness): points are
    /// processed in id order.
    ///
    /// Panics if the dataset contains duplicate points (`max_levels`, default
    /// 192, exceeded) — the paper assumes a finite aspect ratio, which
    /// requires distinct points.
    pub fn build<P, M: Metric<P>>(data: &Dataset<P, M>) -> Self {
        Self::build_with_max_levels(data, 192)
    }

    /// [`NetHierarchy::build`] with an explicit level cap.
    pub fn build_with_max_levels<P, M: Metric<P>>(data: &Dataset<P, M>, max_levels: usize) -> Self {
        let n = data.len();
        assert!(n >= 2, "hierarchy needs at least two points");

        let r_top = approx_diameter(data);
        assert!(
            r_top > 0.0,
            "all points are identical: aspect ratio is undefined"
        );

        // Top level: a single center (point 0) whose ball of radius
        // r_top >= diam(P) covers everything.
        let top = NetLevel {
            radius: r_top,
            centers: vec![0],
            cover: vec![0; n],
            pos_of: {
                let mut v = vec![NOT_A_CENTER; n];
                v[0] = 0;
                v
            },
            parent_pos: vec![0],
        };
        let mut levels_topdown: Vec<NetLevel> = vec![top];
        // friends[pos] = positions of centers within BUILD_FRIEND_FACTOR * r.
        let mut friends: Vec<Vec<u32>> = vec![vec![0]];

        while levels_topdown.last().unwrap().len() < n {
            assert!(
                levels_topdown.len() < max_levels,
                "exceeded {max_levels} net levels: dataset likely contains \
                 duplicate points (infinite aspect ratio)"
            );
            let cur = levels_topdown.last().unwrap();
            let r_next = cur.radius / 2.0;

            // Carried-over centers keep their positions (position invariant).
            let mut centers = cur.centers.clone();
            let mut parent_pos: Vec<u32> = (0..cur.len() as u32).collect();
            let mut pos_of = cur.pos_of.clone();
            let mut cover = vec![NOT_A_CENTER; n];
            // Positions (in the *next* level) of newly promoted centers,
            // grouped by the position (in the *current* level) of their
            // parent.
            let mut new_by_parent: Vec<Vec<u32>> = vec![Vec::new(); cur.len()];

            for p in 0..n as u32 {
                let cpos = cur.cover[p as usize] as usize;
                // Find the nearest candidate center within r_next among the
                // friends of p's current cover and their freshly promoted
                // children. Completeness: any center z with D(p, z) <= r_next
                // has a parent within r_next + 2*r_next of p, hence within
                // (3 + 2) * r_next = 2.5 * r_cur <= 4 * r_cur of cpos.
                let mut best: Option<(f64, u32)> = None;
                for &f in &friends[cpos] {
                    let old_pid = cur.centers[f as usize];
                    let d = data.dist(p as usize, old_pid as usize);
                    if d <= r_next && best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, f)); // old center keeps position f
                    }
                    for &np in &new_by_parent[f as usize] {
                        let new_pid = centers[np as usize];
                        let d = data.dist(p as usize, new_pid as usize);
                        if d <= r_next && best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, np));
                        }
                    }
                }
                match best {
                    Some((_, pos)) => cover[p as usize] = pos,
                    None => {
                        let pos = centers.len() as u32;
                        centers.push(p);
                        parent_pos.push(cpos as u32);
                        new_by_parent[cpos].push(pos);
                        pos_of[p as usize] = pos;
                        cover[p as usize] = pos;
                    }
                }
            }

            // Friends lists for the next level, from the parents' friends.
            // Completeness for factor C >= 4: centers y, z at distance
            // <= C * r_next have parents within (C/2 + 2) * r_cur <= C * r_cur.
            let mut next_friends: Vec<Vec<u32>> = Vec::with_capacity(centers.len());
            for i in 0..centers.len() {
                let y = centers[i] as usize;
                let ppos = parent_pos[i] as usize;
                let mut list = Vec::new();
                for &f in &friends[ppos] {
                    let old_pid = cur.centers[f as usize];
                    if data.dist(y, old_pid as usize) <= BUILD_FRIEND_FACTOR * r_next {
                        list.push(f);
                    }
                    for &np in &new_by_parent[f as usize] {
                        let new_pid = centers[np as usize];
                        if data.dist(y, new_pid as usize) <= BUILD_FRIEND_FACTOR * r_next {
                            list.push(np);
                        }
                    }
                }
                next_friends.push(list);
            }

            friends = next_friends;
            levels_topdown.push(NetLevel {
                radius: r_next,
                centers,
                cover,
                pos_of,
                parent_pos,
            });
        }

        levels_topdown.reverse();
        NetHierarchy {
            levels: levels_topdown,
        }
    }

    /// Number of levels `h + 1` (bottom level 0 through top level `h`).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// `h = num_levels - 1`, the paper's `ceil(log diam)` analog; also an
    /// estimate of `log Δ` within ±2.
    pub fn h(&self) -> usize {
        self.levels.len() - 1
    }

    /// Level `i` (0 = bottom/finest).
    pub fn level(&self, i: usize) -> &NetLevel {
        &self.levels[i]
    }

    /// All levels, bottom-up.
    pub fn levels(&self) -> &[NetLevel] {
        &self.levels
    }

    /// Radius of the bottom level; lies in `[d_min / 2, d_min)`, so it is a
    /// valid `d̂_min` in the sense of the Section 2.4 remark.
    pub fn bottom_radius(&self) -> f64 {
        self.levels[0].radius
    }

    /// Radius of the top level; lies in `[diam, 2 diam]`, a valid `d̂_max`.
    pub fn top_radius(&self) -> f64 {
        self.levels[self.levels.len() - 1].radius
    }

    /// Estimated `log2` of the aspect ratio (within a constant of the true
    /// `log Δ`): the number of radius halvings between top and bottom.
    pub fn log_aspect(&self) -> usize {
        self.h()
    }

    /// Validates every level as an exact net (quadratic per level — tests
    /// only), plus nesting, the bottom-is-everything property and the
    /// position invariant.
    pub fn validate<P, M: Metric<P>>(&self, data: &Dataset<P, M>) -> Result<(), String> {
        let n = data.len();
        let all_ids: Vec<u32> = (0..n as u32).collect();
        if self.levels[0].len() != n {
            return Err("bottom level must contain every point".into());
        }
        if self.levels[self.levels.len() - 1].len() != 1 {
            return Err("top level must contain exactly one center".into());
        }
        for (i, lvl) in self.levels.iter().enumerate() {
            crate::greedy::validate_net(data, &all_ids, &lvl.centers, lvl.radius)
                .map_err(|e| format!("level {i}: {e}"))?;
            // The recorded cover positions must themselves be valid.
            for p in 0..n {
                let pos = lvl.cover[p];
                if pos as usize >= lvl.len() {
                    return Err(format!("level {i}: cover position out of range"));
                }
                let c = lvl.centers[pos as usize];
                let d = data.dist(p, c as usize);
                if d > lvl.radius * (1.0 + 1e-12) {
                    return Err(format!(
                        "level {i}: recorded cover of point {p} at distance {d} > {r}",
                        r = lvl.radius
                    ));
                }
            }
            // pos_of consistency.
            for (pos, &c) in lvl.centers.iter().enumerate() {
                if lvl.pos_of[c as usize] != pos as u32 {
                    return Err(format!("level {i}: pos_of inconsistent for center {c}"));
                }
            }
            if i + 1 < self.levels.len() {
                let up = &self.levels[i + 1];
                // Nesting + position invariant.
                if lvl.len() < up.len() {
                    return Err(format!("level {i}: fewer centers than level {}", i + 1));
                }
                for pos in 0..up.len() {
                    if lvl.centers[pos] != up.centers[pos] {
                        return Err(format!(
                            "position invariant violated between levels {i} and {}",
                            i + 1
                        ));
                    }
                }
                // Parent must cover the child at the level above.
                for (pos, &c) in lvl.centers.iter().enumerate() {
                    let pp = lvl.parent_pos[pos] as usize;
                    if pp >= up.len() {
                        return Err(format!("level {i}: parent position out of range"));
                    }
                    let parent = up.centers[pp];
                    let d = data.dist(c as usize, parent as usize);
                    if d > up.radius * (1.0 + 1e-12) {
                        return Err(format!(
                            "level {i}: parent of center {c} at distance {d} > {r}",
                            r = up.radius
                        ));
                    }
                }
                if (up.radius / lvl.radius - 2.0).abs() > 1e-9 {
                    return Err(format!("radius ladder broken at level {i}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset<Vec<f64>, Euclidean> {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::new(
            (0..n)
                .map(|_| (0..d).map(|_| rng.random_range(0.0..100.0)).collect())
                .collect(),
            Euclidean,
        )
    }

    #[test]
    fn hierarchy_is_valid_on_random_2d() {
        let ds = random_dataset(250, 2, 42);
        let h = NetHierarchy::build(&ds);
        h.validate(&ds).unwrap();
    }

    #[test]
    fn hierarchy_is_valid_on_random_3d() {
        let ds = random_dataset(150, 3, 43);
        let h = NetHierarchy::build(&ds);
        h.validate(&ds).unwrap();
    }

    #[test]
    fn bottom_radius_brackets_dmin() {
        let ds = random_dataset(120, 2, 44);
        let h = NetHierarchy::build(&ds);
        let (dmin, dmax) = ds.min_max_interpoint();
        let rb = h.bottom_radius();
        assert!(
            rb >= dmin / 2.0 - 1e-12 && rb < dmin,
            "bottom radius {rb} outside [{}, {})",
            dmin / 2.0,
            dmin
        );
        let rt = h.top_radius();
        assert!(rt >= dmax - 1e-9 && rt <= 2.0 * dmax + 1e-9);
    }

    #[test]
    fn level_count_tracks_log_aspect() {
        let ds = random_dataset(100, 2, 45);
        let h = NetHierarchy::build(&ds);
        let delta = ds.aspect_ratio_exact();
        let expect = delta.log2();
        let got = h.h() as f64;
        assert!(
            (got - expect).abs() <= 3.0,
            "levels {got} vs log2(aspect) {expect}"
        );
    }

    #[test]
    fn two_point_dataset() {
        let ds = Dataset::new(vec![vec![0.0], vec![5.0]], Euclidean);
        let h = NetHierarchy::build(&ds);
        h.validate(&ds).unwrap();
        assert_eq!(h.level(0).len(), 2);
    }

    #[test]
    fn huge_aspect_ratio_line() {
        // Exponentially spread points: log aspect ~ 30.
        let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![(2.0f64).powi(i)]).collect();
        let ds = Dataset::new(pts, Euclidean);
        let h = NetHierarchy::build(&ds);
        h.validate(&ds).unwrap();
        assert!(h.num_levels() >= 25);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_are_rejected() {
        let ds = Dataset::new(vec![vec![0.0], vec![0.0], vec![1.0]], Euclidean);
        let _ = NetHierarchy::build(&ds);
    }

    #[test]
    fn cover_center_helper() {
        let ds = random_dataset(60, 2, 46);
        let h = NetHierarchy::build(&ds);
        for lvl_idx in 0..h.num_levels() {
            let lvl = h.level(lvl_idx);
            for p in 0..60u32 {
                let c = lvl.cover_center(p);
                assert!(ds.dist(p as usize, c as usize) <= lvl.radius * (1.0 + 1e-12));
            }
        }
    }

    #[test]
    fn deterministic_construction() {
        let ds = random_dataset(100, 2, 47);
        let h1 = NetHierarchy::build(&ds);
        let h2 = NetHierarchy::build(&ds);
        assert_eq!(h1.num_levels(), h2.num_levels());
        for i in 0..h1.num_levels() {
            assert_eq!(h1.level(i).centers, h2.level(i).centers);
        }
    }
}
