//! Property tests for net construction: every hierarchy level is an exact
//! net on arbitrary inputs (including adversarial shapes), and the cascade
//! is complete for any admissible factor.

use pg_metric::{Dataset, Euclidean};
use pg_nets::{greedy_net, validate_net, NetHierarchy, RelativesCascade};
use proptest::prelude::*;

fn pointset() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        (0i32..3000, 0i32..3000).prop_map(|(x, y)| vec![x as f64 * 0.07, y as f64 * 0.07]),
        2..60,
    )
    .prop_map(|mut pts| {
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pts.dedup();
        pts
    })
    .prop_filter("need >= 2 distinct", |p| p.len() >= 2)
}

/// Collinear, exponentially spaced — a worst-case aspect-ratio shape.
fn collinear() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..20).prop_map(|k| (0..k).map(|i| vec![(1.7f64).powi(i as i32), 0.0]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hierarchy_valid_on_random_sets(pts in pointset()) {
        let data = Dataset::new(pts, Euclidean);
        let h = NetHierarchy::build(&data);
        prop_assert!(h.validate(&data).is_ok());
    }

    #[test]
    fn hierarchy_valid_on_collinear_exponential(pts in collinear()) {
        let data = Dataset::new(pts, Euclidean);
        let h = NetHierarchy::build(&data);
        prop_assert!(h.validate(&data).is_ok());
    }

    #[test]
    fn bottom_radius_brackets_dmin(pts in pointset()) {
        let data = Dataset::new(pts, Euclidean);
        let (dmin, dmax) = data.min_max_interpoint();
        prop_assume!(dmin > 0.0);
        let h = NetHierarchy::build(&data);
        prop_assert!(h.bottom_radius() >= dmin / 2.0 - 1e-12);
        prop_assert!(h.bottom_radius() < dmin);
        prop_assert!(h.top_radius() >= dmax - 1e-9);
        prop_assert!(h.top_radius() <= 2.0 * dmax + 1e-9);
    }

    #[test]
    fn greedy_net_valid_at_any_radius(pts in pointset(), r in 0.01f64..500.0) {
        let data = Dataset::new(pts, Euclidean);
        let ids: Vec<u32> = (0..data.len() as u32).collect();
        let net = greedy_net(&data, &ids, r);
        prop_assert!(validate_net(&data, &ids, &net, r).is_ok());
    }

    #[test]
    fn cascade_complete_for_any_factor(pts in pointset(), k in 4.0f64..12.0) {
        let data = Dataset::new(pts, Euclidean);
        let h = NetHierarchy::build(&data);
        let mut cascade = RelativesCascade::new(&data, &h, k);
        loop {
            let lvl = h.level(cascade.level_idx());
            // Brute-force verify completeness at this level.
            for (pos, rel) in cascade.relatives().iter().enumerate() {
                let y = lvl.centers[pos];
                for (pos2, &z) in lvl.centers.iter().enumerate() {
                    let within = data.dist(y as usize, z as usize) <= k * lvl.radius;
                    let listed = rel.contains(&(pos2 as u32));
                    prop_assert_eq!(within, listed,
                        "level {} center {} vs {}", cascade.level_idx(), pos, pos2);
                }
            }
            if !cascade.descend() {
                break;
            }
        }
    }

    #[test]
    fn nesting_and_monotone_sizes(pts in pointset()) {
        let data = Dataset::new(pts, Euclidean);
        let h = NetHierarchy::build(&data);
        for i in 0..h.num_levels() - 1 {
            prop_assert!(h.level(i).len() >= h.level(i + 1).len(),
                "level sizes must shrink going up");
        }
        prop_assert_eq!(h.level(0).len(), data.len());
        prop_assert_eq!(h.level(h.num_levels() - 1).len(), 1);
    }
}
