//! Protocol corruption suite, in the style of `pg_store`'s
//! `tests/corruption.rs`: every frame type is round-tripped, truncated at
//! **every** offset, and bit-flipped at **every** position, asserting a
//! typed [`ServeError`] each time — decoding untrusted bytes never panics
//! and never mis-parses. A live-server section then verifies the error
//! *discipline*: a malformed request costs its sender an error frame, not
//! the connection.

mod common;

use std::sync::Arc;

use pg_serve::client::Client;
use pg_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, IndexInfo, QueryReply,
    Request, Response, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use pg_serve::registry::IndexRegistry;
use pg_serve::server::{ServeConfig, Server};
use pg_serve::{ErrorCode, ServeError};
use pg_store::checksum;

/// One frame of every request kind.
fn all_request_frames() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("ping", encode_request(&Request::Ping)),
        (
            "query",
            encode_request(&Request::Query {
                index: "main".into(),
                ef: 32,
                k: 5,
                coords: vec![1.5, -2.25, 1e12],
            }),
        ),
        (
            "info",
            encode_request(&Request::Info {
                index: "tenant".into(),
            }),
        ),
        ("list", encode_request(&Request::ListIndexes)),
    ]
}

/// One frame of every response kind.
fn all_response_frames() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("pong", encode_response(&Response::Pong)),
        (
            "query_ok",
            encode_response(&Response::Query(QueryReply {
                epoch: 3,
                dist_comps: 99,
                expansions: 12,
                results: vec![(7, 0.5), (1, 2.75)],
            })),
        ),
        (
            "info_ok",
            encode_response(&Response::Info(IndexInfo {
                epoch: 1,
                n: 500,
                dims: 3,
                metric_code: 1,
                entry_point: 42,
            })),
        ),
        (
            "index_list",
            encode_response(&Response::IndexList(vec!["a".into(), "bb".into()])),
        ),
        (
            "error",
            encode_response(&Response::Error {
                code: ErrorCode::BadRequest,
                message: "nope".into(),
            }),
        ),
    ]
}

/// Hand-builds a frame with the documented layout (independent of the
/// crate's own encoder) so structural attacks can carry arbitrary bodies.
fn make_frame(version: u8, kind: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = vec![version, kind];
    payload.extend_from_slice(body);
    let mut frame = Vec::new();
    frame.extend_from_slice(&((payload.len() + 8) as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&checksum(&payload).to_le_bytes());
    frame
}

/// Re-stamps the checksum after a deliberate payload patch, so the decoder
/// sees the patched bytes as "authentic" and must reject them on their own
/// terms (version / kind / structure), not as corruption.
fn restamp(frame: &mut [u8]) {
    let payload_end = frame.len() - 8;
    let sum = checksum(&frame[4..payload_end]);
    frame[payload_end..].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn every_truncation_of_every_request_frame_is_a_typed_error() {
    for (name, frame) in all_request_frames() {
        for cut in 0..frame.len() {
            let err = decode_request(&frame[..cut])
                .expect_err(&format!("{name} truncated to {cut} bytes decoded"));
            assert!(
                matches!(err, ServeError::Truncated { .. }),
                "{name}[..{cut}]: expected Truncated, got {err:?}"
            );
        }
    }
}

#[test]
fn every_truncation_of_every_response_frame_is_a_typed_error() {
    for (name, frame) in all_response_frames() {
        for cut in 0..frame.len() {
            let err = decode_response(&frame[..cut])
                .expect_err(&format!("{name} truncated to {cut} bytes decoded"));
            assert!(
                matches!(err, ServeError::Truncated { .. }),
                "{name}[..{cut}]: expected Truncated, got {err:?}"
            );
        }
    }
}

/// Flips every bit of every byte of every frame. Positions inside the
/// payload or the checksum must fail as `ChecksumMismatch` — the checksum
/// gate runs before any interpretation. Positions inside the length prefix
/// re-segment the frame and must fail as a framing error.
#[test]
fn every_bit_flip_of_every_frame_is_a_typed_error() {
    let mut all = all_request_frames();
    all.extend(all_response_frames());
    for (name, frame) in all {
        let decode: fn(&[u8]) -> Result<(), ServeError> = if frame[5] < 128 {
            |b| decode_request(b).map(|_| ())
        } else {
            |b| decode_response(b).map(|_| ())
        };
        for pos in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[pos] ^= 1 << bit;
                let err = decode(&bad).expect_err(&format!(
                    "{name} with bit {bit} of byte {pos} flipped decoded"
                ));
                if pos >= 4 {
                    assert!(
                        matches!(err, ServeError::ChecksumMismatch),
                        "{name} byte {pos} bit {bit}: expected ChecksumMismatch, got {err:?}"
                    );
                } else {
                    assert!(
                        matches!(
                            err,
                            ServeError::Truncated { .. }
                                | ServeError::Malformed { .. }
                                | ServeError::FrameTooLarge { .. }
                        ),
                        "{name} byte {pos} bit {bit}: expected a framing error, got {err:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn trailing_bytes_after_a_valid_frame_are_malformed() {
    for (name, mut frame) in all_request_frames() {
        frame.push(0);
        let err = decode_request(&frame).expect_err(name);
        assert!(
            matches!(err, ServeError::Malformed { .. }),
            "{name}: got {err:?}"
        );
    }
}

/// Every possible kind byte, authentically checksummed over an empty body:
/// known kinds with the wrong body shape fail as `Truncated`, kinds from
/// the other direction (request vs response) and unassigned kinds fail as
/// `UnknownKind`. No byte value panics.
#[test]
fn every_kind_byte_is_classified() {
    for kind in 0u8..=255 {
        let frame = make_frame(PROTOCOL_VERSION, kind, &[]);
        match decode_request(&frame) {
            Ok(req) => assert!(
                (kind == 0 && req == Request::Ping) || (kind == 3 && req == Request::ListIndexes),
                "request kind {kind} decoded unexpectedly to {req:?}"
            ),
            Err(ServeError::Truncated { .. }) => {
                assert!([1, 2].contains(&kind), "kind {kind} gave Truncated")
            }
            Err(ServeError::UnknownKind { kind: k }) => assert_eq!(k, kind),
            Err(other) => panic!("request kind {kind}: unexpected {other:?}"),
        }
        match decode_response(&frame) {
            Ok(resp) => assert!(
                kind == 128 && resp == Response::Pong,
                "response kind {kind} decoded unexpectedly to {resp:?}"
            ),
            Err(ServeError::Truncated { .. }) => {
                assert!((129..=132).contains(&kind), "kind {kind} gave Truncated")
            }
            Err(ServeError::UnknownKind { kind: k }) => assert_eq!(k, kind),
            Err(other) => panic!("response kind {kind}: unexpected {other:?}"),
        }
    }
}

#[test]
fn every_foreign_version_byte_is_rejected_after_restamping() {
    for version in (0u8..=255).filter(|&v| v != PROTOCOL_VERSION) {
        let mut frame = encode_request(&Request::Ping);
        frame[4] = version;
        restamp(&mut frame);
        let err = decode_request(&frame).unwrap_err();
        assert!(
            matches!(err, ServeError::UnsupportedVersion { found } if found == version),
            "version {version}: got {err:?}"
        );
    }
}

#[test]
fn structurally_invalid_bodies_are_malformed_not_panics() {
    // A query whose declared coordinate count disagrees with its bytes.
    let mut body = Vec::new();
    body.extend_from_slice(&2u16.to_le_bytes());
    body.extend_from_slice(b"ix");
    body.extend_from_slice(&8u32.to_le_bytes()); // ef
    body.extend_from_slice(&3u32.to_le_bytes()); // k
    body.extend_from_slice(&5u32.to_le_bytes()); // declares 5 coords...
    body.extend_from_slice(&1.0f64.to_le_bytes()); // ...carries 1
    let err = decode_request(&make_frame(PROTOCOL_VERSION, 1, &body)).unwrap_err();
    assert!(matches!(err, ServeError::Malformed { .. }), "got {err:?}");

    // A non-UTF-8 index name.
    let mut body = Vec::new();
    body.extend_from_slice(&2u16.to_le_bytes());
    body.extend_from_slice(&[0xFF, 0xFE]);
    let err = decode_request(&make_frame(PROTOCOL_VERSION, 2, &body)).unwrap_err();
    assert!(matches!(err, ServeError::Malformed { .. }), "got {err:?}");

    // An index list whose count cannot fit in its bytes.
    let mut body = Vec::new();
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = decode_response(&make_frame(PROTOCOL_VERSION, 131, &body)).unwrap_err();
    assert!(matches!(err, ServeError::Malformed { .. }), "got {err:?}");

    // An error frame carrying an unassigned error code.
    let mut body = Vec::new();
    body.extend_from_slice(&999u16.to_le_bytes());
    body.extend_from_slice(&0u16.to_le_bytes());
    let err = decode_response(&make_frame(PROTOCOL_VERSION, 132, &body)).unwrap_err();
    assert!(matches!(err, ServeError::Malformed { .. }), "got {err:?}");
}

// ---------------------------------------------------------------------------
// Live-server discipline: errors cost an error frame, not the connection.
// ---------------------------------------------------------------------------

fn serving_fixture() -> (Server, Arc<IndexRegistry>) {
    let registry = Arc::new(IndexRegistry::new());
    registry
        .register("main", common::build_engine(120, 1), 0)
        .unwrap();
    let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), ServeConfig::default())
        .expect("binding an ephemeral port");
    (server, registry)
}

#[test]
fn corrupt_frames_get_error_frames_and_the_connection_survives() {
    let (server, _registry) = serving_fixture();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A checksum-corrupt frame.
    let mut bad = encode_request(&Request::Ping);
    let last = bad.len() - 1;
    bad[last] ^= 0xFF;
    match client.call_raw(&bad).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::ChecksumMismatch),
        other => panic!("expected an error frame, got {other:?}"),
    }

    // An unassigned kind, authentically checksummed.
    match client
        .call_raw(&make_frame(PROTOCOL_VERSION, 77, &[]))
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownKind),
        other => panic!("expected an error frame, got {other:?}"),
    }

    // A foreign protocol version.
    let mut future = encode_request(&Request::Ping);
    future[4] = 2;
    restamp(&mut future);
    match client.call_raw(&future).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
        other => panic!("expected an error frame, got {other:?}"),
    }

    // After three poison frames, the same connection still serves.
    client.ping().unwrap();
    let reply = client.query("main", &[3.0, 4.0], 16, 3).unwrap();
    assert_eq!(reply.results.len(), 3);
}

#[test]
fn semantic_errors_are_typed_remote_errors_and_the_connection_survives() {
    let (server, _registry) = serving_fixture();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let err = client.query("nope", &[1.0, 2.0], 8, 2).unwrap_err();
    assert!(
        matches!(&err, ServeError::Remote { code: ErrorCode::UnknownIndex, message } if message.contains("nope")),
        "got {err:?}"
    );

    let err = client.query("main", &[1.0, 2.0, 3.0], 8, 2).unwrap_err();
    assert!(
        matches!(
            err,
            ServeError::Remote {
                code: ErrorCode::DimMismatch,
                ..
            }
        ),
        "got {err:?}"
    );

    let err = client.query("main", &[1.0, 2.0], 0, 2).unwrap_err();
    assert!(
        matches!(
            err,
            ServeError::Remote {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "got {err:?}"
    );

    let err = client.query("main", &[f64::NAN, 2.0], 8, 2).unwrap_err();
    assert!(
        matches!(
            err,
            ServeError::Remote {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "got {err:?}"
    );

    let err = client.info("ghost").unwrap_err();
    assert!(
        matches!(
            err,
            ServeError::Remote {
                code: ErrorCode::UnknownIndex,
                ..
            }
        ),
        "got {err:?}"
    );

    // The connection served five rejections and still works.
    client.ping().unwrap();
}

#[test]
fn oversized_length_prefix_gets_a_final_error_frame_then_close() {
    let (server, _registry) = serving_fixture();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Just a length prefix declaring more than MAX_FRAME_LEN. The server
    // cannot resync past a length it refuses, so it answers and hangs up.
    let prefix = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    match client.call_raw(&prefix).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::FrameTooLarge),
        other => panic!("expected an error frame, got {other:?}"),
    }
    let err = client.ping().unwrap_err();
    assert!(
        matches!(err, ServeError::ConnectionClosed | ServeError::Io(_)),
        "expected the connection closed, got {err:?}"
    );
}

#[test]
fn below_minimum_length_prefix_gets_a_final_error_frame_then_close() {
    let (server, _registry) = serving_fixture();
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.call_raw(&5u32.to_le_bytes()).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected an error frame, got {other:?}"),
    }
    let err = client.ping().unwrap_err();
    assert!(
        matches!(err, ServeError::ConnectionClosed | ServeError::Io(_)),
        "expected the connection closed, got {err:?}"
    );
}
