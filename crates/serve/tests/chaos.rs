//! Fault-injection suite for the serving layer (requires the `failpoints`
//! cargo feature; CI's chaos job runs it with `--test-threads=1`).
//!
//! The failure contract under test, site by site:
//!
//! * every injected fault yields a **typed error or a clean retry** —
//!   never a panic, never a hung caller, never a wrong or partial answer
//!   (successful replies are still bit-identical to direct engine runs);
//! * a failed or torn hot-swap **always leaves the old generation
//!   serving**, verified through the epoch every reply carries;
//! * shutdown **drains every accepted request** even while faults fire.
//!
//! `faults_cover_every_registered_serve_site` enumerates
//! `pg_serve::sites::ALL` with an exhaustive match (the snapshot-I/O
//! sites are enumerated the same way by `pg_store`'s own chaos suite), so
//! adding a failpoint without a chaos scenario fails this suite.

mod common;

use std::io::ErrorKind;
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::Duration;

use pg_fault::{configure, reset, FaultAction, FaultConfig};
use pg_metric::FlatRow;
use pg_serve::batcher::{Batcher, Pending};
use pg_serve::client::{Client, RetryPolicy, RetryingClient};
use pg_serve::error::{ErrorCode, ServeError};
use pg_serve::registry::IndexRegistry;
use pg_serve::server::{ServeConfig, Server};
use pg_serve::sites;

const ENTRY: u32 = 0;
const EF: u32 = 16;
const K: u32 = 4;

/// The pg_fault registry is process-global; every test serializes on this
/// lock and resets the registry at entry and exit.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    reset();
    guard
}

/// One query's expected results as `(id, f64 bits)` pairs.
type BitRows = Vec<Vec<(u32, u64)>>;

/// Bit-exact expected results for the standard query set on `engine`.
fn direct_bits(
    engine: &pg_core::QueryEngine<FlatRow, pg_metric::Euclidean>,
    queries: &[Vec<f64>],
) -> BitRows {
    let flat = common::flat_queries(queries);
    let starts = vec![ENTRY; flat.len()];
    engine
        .batch_beam_detailed(&starts, &flat, EF as usize, K as usize)
        .outcomes
        .iter()
        .map(|o| common::results_bits(&o.results))
        .collect()
}

fn serve_engine() -> (Server, Vec<Vec<f64>>, BitRows) {
    let engine = common::build_engine(200, 3);
    let queries = common::queries(12, 41);
    let bits = direct_bits(&engine, &queries);
    let registry = Arc::new(IndexRegistry::new());
    registry.register("main", engine, ENTRY).unwrap();
    let server = Server::bind("127.0.0.1:0", registry, ServeConfig::default()).unwrap();
    (server, queries, bits)
}

/// Every registered serve-side failpoint site has a scenario: inject a
/// fault, assert a typed (and correctly classified) error, assert the
/// server as a whole keeps working, and assert a clean retry succeeds.
#[test]
fn faults_cover_every_registered_serve_site() {
    let _g = serial();
    assert!(!sites::ALL.is_empty());
    for &site in sites::ALL {
        reset();
        // A fresh server per site: no half-dead connection from a previous
        // scenario can swallow a Times(1) fault.
        let (server, queries, bits) = serve_engine();
        let addr = server.local_addr();
        let q = &queries[0];

        // Exhaustive over the registered sites: a new failpoint without a
        // scenario here fails the suite.
        match site {
            sites::CONN_READ | sites::CONN_WRITE => {
                configure(
                    site,
                    FaultConfig::times(FaultAction::Fail(ErrorKind::ConnectionReset), 1),
                );
                let mut victim = Client::connect(addr).expect("victim connect");
                // The injected transport fault disconnects this client —
                // as a typed, retryable error, never a hang or a panic.
                let err = victim.ping().expect_err("injected transport fault");
                assert!(
                    matches!(
                        err,
                        ServeError::Io(_)
                            | ServeError::ConnectionClosed
                            | ServeError::Truncated { .. }
                    ),
                    "typed transport error expected at {site}, got {err:?}"
                );
                assert!(err.is_retryable(), "{site}: transport faults are transient");
                // The "clean retry" half of the contract: a new connection
                // (the fault budget is spent) serves correct answers.
                let mut retry = Client::connect(addr).expect("retry connect");
                let reply = retry.query("main", q, EF, K).expect("retry succeeds");
                assert_eq!(common::results_bits(&reply.results), bits[0]);
            }
            sites::BATCH_QUEUE => {
                configure(
                    site,
                    FaultConfig::times(FaultAction::Fail(ErrorKind::Other), 1),
                );
                let mut client = Client::connect(addr).expect("client connect");
                // A fired queue fault is shedding: an Overloaded error
                // frame, not a dropped connection.
                let err = client.query("main", q, EF, K).expect_err("shed");
                match &err {
                    ServeError::Remote { code, .. } => assert_eq!(*code, ErrorCode::Overloaded),
                    other => panic!("expected a Remote Overloaded frame, got {other:?}"),
                }
                assert!(err.is_retryable(), "shedding is transient by definition");
                // Same connection, fault spent: the retry succeeds.
                let reply = client.query("main", q, EF, K).expect("retry on same conn");
                assert_eq!(common::results_bits(&reply.results), bits[0]);
            }
            sites::ENGINE_DISPATCH => {
                configure(
                    site,
                    FaultConfig::times(FaultAction::Fail(ErrorKind::Other), 1),
                );
                let mut client = Client::connect(addr).expect("client connect");
                let err = client.query("main", q, EF, K).expect_err("dispatch fault");
                match &err {
                    ServeError::Remote { code, .. } => assert_eq!(*code, ErrorCode::Internal),
                    other => panic!("expected a Remote Internal frame, got {other:?}"),
                }
                assert!(err.is_retryable());
                let reply = client.query("main", q, EF, K).expect("retry on same conn");
                assert_eq!(common::results_bits(&reply.results), bits[0]);
            }
            other => panic!("failpoint site {other} has no chaos scenario — add one"),
        }
        assert!(pg_fault::fired(site) >= 1, "{site} never fired");
    }
    reset();
}

/// A panicking worker costs exactly its own request a typed error: the
/// connection survives, neighbors before and after are answered
/// bit-identically, and this holds on both the batched and unbatched
/// paths.
#[test]
fn worker_panic_is_contained_per_request() {
    let _g = serial();
    for batching in [true, false] {
        reset();
        let engine = common::build_engine(200, 3);
        let queries = common::queries(10, 41);
        let bits = direct_bits(&engine, &queries);
        let registry = Arc::new(IndexRegistry::new());
        registry.register("main", engine, ENTRY).unwrap();
        let config = ServeConfig {
            batching,
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", registry, config).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        // One sequential connection dispatches one engine call per query,
        // so Nth(5) panics exactly the fifth query — deterministically.
        configure(
            sites::ENGINE_DISPATCH,
            FaultConfig::nth(FaultAction::Panic, 5),
        );
        for (i, q) in queries.iter().enumerate() {
            let result = client.query("main", q, EF, K);
            if i == 4 {
                match result {
                    Err(ServeError::Remote { code, .. }) => {
                        assert_eq!(code, ErrorCode::Internal, "batching={batching}")
                    }
                    other => panic!(
                        "query {i} (batching={batching}): expected a contained panic as a Remote Internal frame, got {other:?}"
                    ),
                }
            } else {
                let reply = result.unwrap_or_else(|e| {
                    panic!("query {i} (batching={batching}) must survive the panic: {e}")
                });
                assert_eq!(
                    common::results_bits(&reply.results),
                    bits[i],
                    "query {i} (batching={batching}): wrong answer after a contained panic"
                );
            }
        }
        assert_eq!(pg_fault::fired(sites::ENGINE_DISPATCH), 1);
    }
    reset();
}

/// Shutdown with work still queued and a panic fault firing mid-drain:
/// every accepted request still gets exactly one reply — the panicked
/// group a typed error, everyone else a correct answer.
#[test]
fn shutdown_drains_every_request_despite_a_panicking_worker() {
    let _g = serial();
    let engine = common::build_engine(120, 5);
    let registry = IndexRegistry::new();
    registry.register("m", engine, ENTRY).unwrap();
    let serving = registry.get("m").unwrap();

    // max_batch = 1: requests dispatch one by one in queue order, so the
    // Nth(7) panic deterministically hits the seventh request.
    let batcher = Batcher::start(1, 1024);
    configure(
        sites::ENGINE_DISPATCH,
        FaultConfig::nth(FaultAction::Panic, 7),
    );
    let mut receivers = Vec::new();
    let mut group = Vec::new();
    for i in 0..30 {
        let (tx, rx) = mpsc::channel();
        group.push(Pending {
            index: Arc::clone(&serving),
            query: FlatRow::from(vec![i as f64, 1.0]),
            ef: EF,
            k: K,
            reply: tx,
        });
        receivers.push(rx);
    }
    batcher.submit_many(group).unwrap();
    drop(batcher); // shutdown: must drain all 30 first

    let mut panicked = Vec::new();
    for (i, rx) in receivers.into_iter().enumerate() {
        let reply = rx
            .recv()
            .unwrap_or_else(|_| panic!("request {i} was dropped at shutdown"));
        match reply {
            Ok(r) => assert_eq!(r.results.len(), K as usize, "request {i}"),
            Err(ServeError::WorkerPanicked) => panicked.push(i),
            Err(other) => panic!("request {i}: unexpected error {other:?}"),
        }
    }
    assert_eq!(
        panicked,
        vec![6],
        "exactly the seventh request pays for the panic"
    );
    reset();
}

/// Hot-swap under injected store faults: a swap whose snapshot load fails
/// returns a typed error and the old generation keeps serving — proven by
/// the epoch on every reply — and the same swap succeeds once the fault
/// clears.
#[test]
fn failed_swap_keeps_the_old_generation_serving() {
    let _g = serial();
    let engine_a = common::build_engine(200, 1);
    let engine_b = common::build_engine(200, 2);
    let queries = common::queries(12, 77);
    let bits_a = direct_bits(&engine_a, &queries);
    let bits_b = direct_bits(&engine_b, &queries);
    assert_ne!(bits_a, bits_b, "the snapshots must disagree somewhere");

    let path_a = common::temp("chaos_swap_a");
    let path_b = common::temp("chaos_swap_b");
    engine_a.save_with(&path_a, ENTRY, None).unwrap();
    engine_b.save_with(&path_b, ENTRY, None).unwrap();

    let registry = Arc::new(IndexRegistry::new());
    let epoch_a = registry.register_from_path("main", &path_a).unwrap();
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&registry), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let assert_serving = |client: &mut Client, bits: &[Vec<(u32, u64)>], epoch: u64, ctx: &str| {
        for (i, q) in queries.iter().enumerate() {
            let reply = client.query("main", q, EF, K).expect("query must succeed");
            assert_eq!(reply.epoch, epoch, "{ctx}: query {i} epoch");
            assert_eq!(
                common::results_bits(&reply.results),
                bits[i],
                "{ctx}: query {i} answer"
            );
        }
    };
    assert_serving(&mut client, &bits_a, epoch_a, "before any swap");

    // Swap attempts whose snapshot *read* fails: typed error, old
    // generation untouched.
    configure(
        pg_store::sites::LOAD_READ,
        FaultConfig::times(FaultAction::Fail(ErrorKind::Other), 2),
    );
    for attempt in 0..2 {
        let err = registry
            .swap_from_path("main", &path_b)
            .expect_err("injected load fault must fail the swap");
        assert!(
            matches!(err, ServeError::Snapshot(_)),
            "attempt {attempt}: typed snapshot error expected, got {err:?}"
        );
        assert_serving(&mut client, &bits_a, epoch_a, "after a failed swap");
    }

    // A torn save can't even produce a file for the swap to read: the
    // save fails atomically, and serving never wavers.
    let path_torn = common::temp("chaos_swap_torn");
    let _ = std::fs::remove_file(&path_torn);
    configure(
        pg_store::sites::SAVE_WRITE,
        FaultConfig::times(FaultAction::ShortWrite(64), 1),
    );
    engine_b
        .save_with(&path_torn, ENTRY, None)
        .expect_err("torn save must fail");
    let err = registry
        .swap_from_path("main", &path_torn)
        .expect_err("no complete file can exist to swap to");
    assert!(matches!(err, ServeError::Snapshot(_)));
    assert_serving(
        &mut client,
        &bits_a,
        epoch_a,
        "after a torn-save swap attempt",
    );

    // Faults spent: the same swap now succeeds and the epoch advances.
    let epoch_b = registry
        .swap_from_path("main", &path_b)
        .expect("clean swap succeeds");
    assert!(epoch_b > epoch_a, "epochs are strictly increasing");
    assert_serving(&mut client, &bits_b, epoch_b, "after the clean swap");

    reset();
    for p in [path_a, path_b, path_torn] {
        let _ = std::fs::remove_file(&p);
    }
}

/// An injected stall delays a dispatch but never corrupts it: the reply
/// arrives complete and bit-identical.
#[test]
fn stalls_delay_but_never_corrupt() {
    let _g = serial();
    let (server, queries, bits) = serve_engine();
    let mut client = Client::connect(server.local_addr()).unwrap();
    configure(
        sites::ENGINE_DISPATCH,
        FaultConfig::times(FaultAction::Stall(30), 2),
    );
    for (i, q) in queries.iter().take(4).enumerate() {
        let reply = client.query("main", q, EF, K).expect("stalled, not broken");
        assert_eq!(common::results_bits(&reply.results), bits[i], "query {i}");
    }
    assert_eq!(pg_fault::fired(sites::ENGINE_DISPATCH), 2);
    reset();
}

/// The retrying client turns injected shedding and transport faults into
/// eventual success, and its retry counter proves the loop actually ran.
#[test]
fn retrying_client_rides_out_shedding_and_disconnects() {
    let _g = serial();
    let policy = RetryPolicy {
        max_retries: 5,
        backoff_start: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
    };

    // Shedding: the first two attempts come back Overloaded, the third
    // succeeds — same connection throughout (shedding is not a disconnect).
    let (server, queries, bits) = serve_engine();
    let mut client = RetryingClient::connect(server.local_addr(), policy).unwrap();
    configure(
        sites::BATCH_QUEUE,
        FaultConfig::times(FaultAction::Fail(ErrorKind::Other), 2),
    );
    let reply = client
        .query("main", &queries[0], EF, K)
        .expect("retries must ride out shedding");
    assert_eq!(common::results_bits(&reply.results), bits[0]);
    assert_eq!(client.retries(), 2, "exactly the two shed attempts retried");
    drop(server);

    // Transport fault: the injected read fault kills the connection; the
    // retry loop redials and succeeds.
    reset();
    let (server, queries, bits) = serve_engine();
    let mut client = RetryingClient::connect(server.local_addr(), policy).unwrap();
    configure(
        sites::CONN_READ,
        FaultConfig::times(FaultAction::Fail(ErrorKind::ConnectionReset), 1),
    );
    let reply = client
        .query("main", &queries[0], EF, K)
        .expect("reconnect-and-retry must succeed");
    assert_eq!(common::results_bits(&reply.results), bits[0]);
    assert!(
        (1..=policy.max_retries as u64).contains(&client.retries()),
        "the disconnect must have cost at least one retry, got {}",
        client.retries()
    );
    reset();
}
