//! Hardening suite (tier-1, no fault injection needed): the two
//! backpressure mechanisms the server applies to misbehaving or excessive
//! load, driven purely through real sockets.
//!
//! * **Load shedding** — a full (here: zero-capacity) batcher queue
//!   refuses queries with an `Overloaded` error frame on a connection
//!   that stays open, and non-query requests keep working.
//! * **Slow-peer disconnect** — a peer that stops reading responses is
//!   disconnected once a response write blocks past
//!   [`ServeConfig::write_timeout`], freeing its handler thread; the
//!   server keeps serving everyone else.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pg_serve::client::Client;
use pg_serve::error::{ErrorCode, ServeError};
use pg_serve::protocol::{encode_request, Request};
use pg_serve::registry::IndexRegistry;
use pg_serve::server::{ServeConfig, Server};

const ENTRY: u32 = 0;
const EF: u32 = 16;
const K: u32 = 4;

fn bind(config: ServeConfig) -> Server {
    let registry = Arc::new(IndexRegistry::new());
    registry
        .register("main", common::build_engine(160, 3), ENTRY)
        .unwrap();
    Server::bind("127.0.0.1:0", registry, config).unwrap()
}

/// `max_queue: 0` is deterministic lame-duck mode: every batched query is
/// shed with an `Overloaded` error frame — a typed, retryable refusal on a
/// connection that keeps serving — while pings, listings, and the
/// unbatched path are unaffected.
#[test]
fn zero_capacity_queue_sheds_queries_with_overloaded_frames() {
    let server = bind(ServeConfig {
        max_queue: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    let q = &common::queries(1, 7)[0];

    for round in 0..5 {
        let err = client
            .query("main", q, EF, K)
            .expect_err("a zero-capacity queue must shed");
        match &err {
            ServeError::Remote { code, .. } => {
                assert_eq!(*code, ErrorCode::Overloaded, "round {round}")
            }
            other => panic!("round {round}: expected an Overloaded frame, got {other:?}"),
        }
        assert!(err.is_retryable(), "shedding is a transient condition");
        // Shedding costs an error frame, never the connection: the same
        // client keeps talking.
        client.ping().expect("connection must survive shedding");
    }
    assert!(!client.list().unwrap().is_empty());
    let stats = server.stats();
    assert_eq!(stats.shed, 5, "every refused query is counted");
    assert_eq!(stats.requests, 0, "shed queries never reach a dispatch");

    // The unbatched path has no queue and must ignore `max_queue`.
    let direct = bind(ServeConfig {
        batching: false,
        max_queue: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(direct.local_addr()).unwrap();
    let reply = client
        .query("main", q, EF, K)
        .expect("the unbatched path has no queue to overflow");
    assert_eq!(reply.results.len(), K as usize);
}

/// A peer that pipelines requests but never reads responses eventually
/// blocks the server's response write; the write timeout then disconnects
/// the slow peer instead of pinning its handler thread forever, and the
/// server keeps serving new connections.
#[test]
fn slow_reader_is_disconnected_by_the_write_timeout() {
    let server = bind(ServeConfig {
        write_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });

    // A raw slow peer: write queries as fast as possible, read nothing.
    // Queries specifically, because a reply (k results plus counters) is
    // several times larger than its request: the server must produce more
    // response bytes than the request backlog it consumes, so its send
    // path is guaranteed to fill — and its response write to block — while
    // this peer refuses to read.
    let mut slow = TcpStream::connect(server.local_addr()).unwrap();
    slow.set_nodelay(true).unwrap();
    slow.set_write_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    // k = n: every reply carries all 160 results (~2 KB) for a ~60-byte
    // request — a >30x amplification, so the send path must fill (and the
    // response write block) after only a few thousand queries, long before
    // the request backlog runs out.
    let query = encode_request(&Request::Query {
        index: "main".into(),
        ef: 200,
        k: 160,
        coords: vec![1.5, 2.5],
    });
    // A chunk of pipelined query frames (`encode_request` emits complete
    // frames, length prefix included), so kernel buffers fill in few
    // syscalls.
    let chunk: Vec<u8> = query.repeat(256);
    // Backpressure must reach this writer: once the server's response
    // write blocks (peer-receive plus server-send buffers full), the
    // server stops reading, so its receive buffer and our send buffer fill
    // too and this write times out. The cap only bounds a broken test.
    let mut wrote_chunks = 0u32;
    let stalled = loop {
        match slow.write_all(&chunk) {
            Ok(()) => wrote_chunks += 1,
            Err(_) => break true,
        }
        if wrote_chunks > 1 << 14 {
            break false; // hundreds of MB written and no backpressure: broken.
        }
    };
    assert!(stalled, "backpressure never reached the slow peer");

    // While the slow peer is stalled, everyone else is still served.
    let mut healthy = Client::connect(server.local_addr()).unwrap();
    let q = &common::queries(1, 7)[0];
    let reply = healthy.query("main", q, EF, K).expect("healthy peer");
    assert_eq!(reply.results.len(), K as usize);

    // Keep refusing to read for several write-timeout periods: the
    // server's blocked response write cannot make progress (nothing drains
    // the buffers), so the timeout must fire and disconnect the slow peer.
    // Reading here instead would rescue the connection — un-blocking the
    // write inside every timeout window is exactly what a *healthy* peer
    // does.
    // Budget: filling a few MB of kernel buffers with amplified replies,
    // plus the 200 ms timeout itself, plus scheduler slack.
    std::thread::sleep(Duration::from_millis(3000));

    // Now drain: buffered replies (if the close was a clean FIN), then EOF
    // — or an immediate reset, since the server hung up with unread
    // requests still in its receive buffer. If the server never hung up,
    // this loop keeps yielding replies until the deadline fails the test.
    slow.set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut buf = vec![0u8; 64 * 1024];
    let disconnected = loop {
        if Instant::now() > deadline {
            break false;
        }
        match slow.read(&mut buf) {
            Ok(0) => break true, // clean EOF
            Ok(_) => {}          // draining buffered replies
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Server gone quiet but not yet closed; keep waiting.
            }
            Err(_) => break true, // reset: the server hung up mid-buffer
        }
    };
    assert!(disconnected, "the slow peer was never disconnected");

    // The freed server is fully functional afterwards.
    let reply = healthy.query("main", q, EF, K).expect("after disconnect");
    assert_eq!(reply.results.len(), K as usize);
}
