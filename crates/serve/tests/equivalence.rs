//! Serving-equivalence suite: responses that crossed the wire — single
//! and micro-batched — are **bit-identical** to a direct
//! `QueryEngine::batch_beam_detailed` run over the same snapshot, across
//! engine thread counts 1, 2, and the machine's parallelism. This is the
//! serving layer's core claim: the network and the batcher add transport
//! and scheduling, never a different answer.

mod common;

use std::sync::mpsc;
use std::sync::Arc;

use pg_core::engine::BatchBeamDetail;
use pg_metric::FlatRow;
use pg_serve::batcher::{Batcher, Pending};
use pg_serve::client::Client;
use pg_serve::registry::IndexRegistry;
use pg_serve::server::{ServeConfig, Server};

const ENTRY: u32 = 3;
const EF: u32 = 16;
const K: u32 = 5;

/// The ground truth: the direct engine run every wire answer must match.
fn direct(engine: &pg_core::QueryEngine<FlatRow, pg_metric::Euclidean>) -> BatchBeamDetail {
    let queries = common::flat_queries(&common::queries(40, 9));
    let starts = vec![ENTRY; queries.len()];
    engine.batch_beam_detailed(&starts, &queries, EF as usize, K as usize)
}

fn assert_reply_matches(
    reply: &pg_serve::QueryReply,
    expected: &pg_core::BeamOutcome,
    context: &str,
) {
    assert_eq!(
        common::results_bits(&reply.results),
        common::results_bits(&expected.results),
        "{context}: result bits diverged"
    );
    assert_eq!(
        reply.dist_comps, expected.dist_comps,
        "{context}: dist_comps"
    );
    assert_eq!(
        reply.expansions, expected.expansions,
        "{context}: expansions"
    );
}

/// Sequential single-client queries over TCP, against engines pinned to
/// thread counts 1, 2, and the machine default: every response matches the
/// direct run bit for bit (which also proves the thread counts agree with
/// each other).
#[test]
fn tcp_responses_match_the_direct_engine_at_every_thread_count() {
    let machine = std::thread::available_parallelism().map_or(4, |n| n.get());
    for threads in [1, 2, machine] {
        let engine = common::build_engine(240, 5).with_threads(threads);
        let expected = direct(&engine);

        let registry = Arc::new(IndexRegistry::new());
        registry.register("main", engine, ENTRY).unwrap();
        let server = Server::bind("127.0.0.1:0", registry, ServeConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        for (i, q) in common::queries(40, 9).iter().enumerate() {
            let reply = client.query("main", q, EF, K).unwrap();
            assert_reply_matches(
                &reply,
                &expected.outcomes[i],
                &format!("threads {threads}, query {i}"),
            );
            assert_eq!(reply.epoch, 1);
        }
    }
}

/// Concurrent clients hammering the batched server: answers stay
/// bit-identical to the direct run no matter how the dispatcher groups
/// them, and the batcher's counters account for every request.
#[test]
fn concurrent_coalesced_responses_match_the_direct_engine() {
    let engine = common::build_engine(240, 5);
    let expected = Arc::new(direct(&engine));
    let registry = Arc::new(IndexRegistry::new());
    registry.register("main", engine, ENTRY).unwrap();
    let server = Server::bind("127.0.0.1:0", registry, ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let queries = Arc::new(common::queries(40, 9));
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 3;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..ROUNDS {
                    for (i, q) in queries.iter().enumerate() {
                        let reply = client.query("main", q, EF, K).unwrap();
                        assert_reply_matches(
                            &reply,
                            &expected.outcomes[i],
                            &format!("client {c}, round {round}, query {i}"),
                        );
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked");
    }

    let stats = server.stats();
    assert_eq!(stats.requests, (CLIENTS * ROUNDS * queries.len()) as u64);
    assert!(stats.batches >= 1 && stats.batches <= stats.requests);
    assert!(stats.max_batch >= 1);
}

/// The deterministic coalescing proof: `submit_many` lands a group in the
/// queue under one lock, so the dispatcher must answer it as **one**
/// engine batch — and those coalesced answers match per-query direct runs
/// bit for bit.
#[test]
fn a_guaranteed_coalesced_batch_answers_like_single_queries() {
    let engine = common::build_engine(240, 5);
    let expected = direct(&engine);
    let registry = IndexRegistry::new();
    registry.register("main", engine, ENTRY).unwrap();
    let serving = registry.get("main").unwrap();

    let batcher = Batcher::start(256, 1024);
    let queries = common::flat_queries(&common::queries(40, 9));
    let mut receivers = Vec::new();
    let mut group = Vec::new();
    for q in &queries {
        let (tx, rx) = mpsc::channel();
        group.push(Pending {
            index: Arc::clone(&serving),
            query: q.clone(),
            ef: EF,
            k: K,
            reply: tx,
        });
        receivers.push(rx);
    }
    batcher.submit_many(group).unwrap();
    for (i, rx) in receivers.into_iter().enumerate() {
        let reply = rx.recv().expect("dispatcher dropped a reply").unwrap();
        assert_reply_matches(
            &reply,
            &expected.outcomes[i],
            &format!("coalesced query {i}"),
        );
    }

    let stats = batcher.stats();
    assert_eq!(stats.requests, queries.len() as u64);
    assert_eq!(stats.batches, 1, "the group must run as one dispatch");
    assert_eq!(stats.coalesced_batches, 1);
    assert_eq!(stats.max_batch, queries.len() as u64);
}

/// Batched and unbatched servers produce identical responses for the same
/// requests — batching is a scheduling decision, not a semantic one.
#[test]
fn batched_and_unbatched_servers_agree() {
    let engine = common::build_engine(240, 5);
    let queries = common::queries(40, 9);
    let mut replies = Vec::new();
    for batching in [true, false] {
        let registry = Arc::new(IndexRegistry::new());
        registry.register("main", engine.clone(), ENTRY).unwrap();
        let config = ServeConfig {
            batching,
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", registry, config).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        replies.push(
            queries
                .iter()
                .map(|q| {
                    let r = client.query("main", q, EF, K).unwrap();
                    (common::results_bits(&r.results), r.dist_comps, r.expansions)
                })
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(replies[0], replies[1]);
}
