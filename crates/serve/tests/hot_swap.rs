//! Hot-swap under load: clients hammer the server while the registry
//! swaps between two snapshots many times. The contract being pinned:
//!
//! * **zero dropped requests** — no connection errors, no error frames,
//!   every query answered;
//! * **no mixed answers** — every response is bit-identical to a direct
//!   engine run on exactly one of the two snapshots, identified by the
//!   epoch the response carries.

mod common;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pg_serve::client::Client;
use pg_serve::registry::IndexRegistry;
use pg_serve::server::{ServeConfig, Server};

const ENTRY: u32 = 0;
const EF: u32 = 12;
const K: u32 = 4;
const SWAPS: usize = 14;
const CLIENTS: usize = 4;

/// Per-epoch ground truth: bit-exact expected results for every query.
type Expected = HashMap<u64, Vec<Vec<(u32, u64)>>>;

#[test]
fn swapping_snapshots_under_load_drops_nothing_and_mixes_nothing() {
    // Two genuinely different snapshots over the same dimensionality.
    let engine_a = common::build_engine(200, 1);
    let engine_b = common::build_engine(200, 2);
    let queries = common::queries(24, 77);
    let flat = common::flat_queries(&queries);
    let starts = vec![ENTRY; flat.len()];
    let answers_a = engine_a.batch_beam_detailed(&starts, &flat, EF as usize, K as usize);
    let answers_b = engine_b.batch_beam_detailed(&starts, &flat, EF as usize, K as usize);
    let bits_a: Vec<Vec<(u32, u64)>> = answers_a
        .outcomes
        .iter()
        .map(|o| common::results_bits(&o.results))
        .collect();
    let bits_b: Vec<Vec<(u32, u64)>> = answers_b
        .outcomes
        .iter()
        .map(|o| common::results_bits(&o.results))
        .collect();
    assert_ne!(
        bits_a, bits_b,
        "the two snapshots must disagree somewhere, or the test proves nothing"
    );

    // Save snapshot B to disk so half the swaps exercise the full
    // load-validate-swap path (the other half swap in-memory engines).
    let path_b = common::temp("hotswap_b");
    engine_b.save_with(&path_b, ENTRY, None).unwrap();

    let registry = Arc::new(IndexRegistry::new());
    let epoch_a0 = registry.register("main", engine_a.clone(), ENTRY).unwrap();
    let expected: Arc<Mutex<Expected>> = Arc::new(Mutex::new(HashMap::new()));
    expected.lock().unwrap().insert(epoch_a0, bits_a.clone());

    let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), ServeConfig::default())
        .expect("binding an ephemeral port");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    // Closed-loop clients: query as fast as possible, verify each answer
    // against the ground truth of the epoch that answered it.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let queries = queries.clone();
            let expected = Arc::clone(&expected);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> u64 {
                let mut client = Client::connect(addr).expect("client connect");
                let mut served = 0u64;
                let mut epochs_seen = std::collections::HashSet::new();
                while !stop.load(Ordering::Relaxed) {
                    for (i, q) in queries.iter().enumerate() {
                        let reply = client
                            .query("main", q, EF, K)
                            .unwrap_or_else(|e| panic!("client {c} dropped a request: {e}"));
                        let table = expected.lock().unwrap();
                        let per_epoch = table.get(&reply.epoch).unwrap_or_else(|| {
                            panic!("client {c} saw unregistered epoch {}", reply.epoch)
                        });
                        assert_eq!(
                            common::results_bits(&reply.results),
                            per_epoch[i],
                            "client {c}: answer matches neither snapshot for its epoch"
                        );
                        epochs_seen.insert(reply.epoch);
                        served += 1;
                    }
                }
                assert!(
                    epochs_seen.len() >= 2,
                    "client {c} never observed a swap (epochs: {epochs_seen:?})"
                );
                served
            })
        })
        .collect();

    // Swap under load, alternating between the in-memory engine path and
    // the from-disk snapshot path. The expected-answers table is extended
    // *before* each swap so no client can see an epoch before its ground
    // truth is registered.
    std::thread::sleep(Duration::from_millis(50));
    let mut last_epoch = epoch_a0;
    for swap in 0..SWAPS {
        let to_b = swap % 2 == 0;
        // Register the ground truth *before* the swap: epochs come from
        // one atomic counter and only this thread mints them, so the next
        // swap's epoch is exactly `last + 1` — and no client can ever be
        // answered by an epoch the table does not yet hold.
        let next = last_epoch + 1;
        expected
            .lock()
            .unwrap()
            .insert(next, if to_b { bits_b.clone() } else { bits_a.clone() });
        let epoch = if to_b {
            registry
                .swap_from_path("main", &path_b)
                .expect("swap from path")
        } else {
            registry
                .swap("main", engine_a.clone(), ENTRY)
                .expect("swap in memory")
        };
        assert_eq!(epoch, next, "only this thread mints epochs");
        last_epoch = epoch;
        std::thread::sleep(Duration::from_millis(40));
    }
    stop.store(true, Ordering::Relaxed);

    let mut total = 0;
    for w in workers {
        total += w.join().expect("a client thread failed");
    }
    std::fs::remove_file(&path_b).unwrap();
    assert!(
        total > 0,
        "the load generator served nothing; the test proved nothing"
    );

    // Final state: the last swap (odd count ⇒ engine A side when SWAPS is
    // even) is what new clients see, at the newest epoch.
    let mut fresh = Client::connect(addr).unwrap();
    let info = fresh.info("main").unwrap();
    assert_eq!(info.epoch, (SWAPS + 1) as u64);
    assert_eq!(info.n, 200);
}

/// The load test above leans on epoch arithmetic (`next = last + 1`);
/// this pins the underlying property: epochs are strictly increasing
/// across every registration and swap, on every cell, because they all
/// draw from one registry-level counter.
#[test]
fn epochs_are_strictly_increasing_across_mixed_registrations_and_swaps() {
    let registry = IndexRegistry::new();
    let e1 = registry
        .register("a", common::build_engine(80, 3), 0)
        .unwrap();
    let e2 = registry
        .register("b", common::build_engine(80, 4), 0)
        .unwrap();
    let e3 = registry.swap("a", common::build_engine(80, 5), 0).unwrap();
    let e4 = registry.swap("b", common::build_engine(80, 6), 0).unwrap();
    assert!(e1 < e2 && e2 < e3 && e3 < e4);
    assert_eq!(registry.get("a").unwrap().epoch(), e3);
    assert_eq!(registry.get("b").unwrap().epoch(), e4);
}

/// A failed swap (missing or corrupt file) must leave the serving
/// generation untouched — load-then-swap, never swap-then-load.
#[test]
fn a_failed_swap_leaves_the_old_snapshot_serving() {
    let registry = Arc::new(IndexRegistry::new());
    registry
        .register("main", common::build_engine(100, 7), 0)
        .unwrap();
    let before = registry.get("main").unwrap();

    let err = registry
        .swap_from_path("main", "/definitely/not/a/real/snapshot.pgix")
        .unwrap_err();
    assert!(
        matches!(err, pg_serve::ServeError::Snapshot(_)),
        "got {err:?}"
    );

    // A corrupt file: valid snapshot, one byte flipped.
    let path = common::temp("failed_swap");
    common::build_engine(100, 8).save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let err = registry.swap_from_path("main", &path).unwrap_err();
    std::fs::remove_file(&path).unwrap();
    assert!(
        matches!(err, pg_serve::ServeError::Snapshot(_)),
        "got {err:?}"
    );

    let after = registry.get("main").unwrap();
    assert!(
        Arc::ptr_eq(&before, &after),
        "the serving generation changed"
    );
    assert_eq!(after.epoch(), before.epoch());
}
