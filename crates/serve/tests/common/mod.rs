//! Shared fixtures for the serving integration tests.
// Each integration-test binary compiles this module separately and uses a
// different subset of the helpers.
#![allow(dead_code)]

use pg_core::engine::QueryEngine;
use pg_core::GNet;
use pg_metric::{Euclidean, FlatPoints, FlatRow};

/// Builds a small deterministic 2-D index. Different seeds give different
/// point sets (hence different graphs and different answers) — which is
/// what the hot-swap test uses to tell two snapshots apart.
pub fn build_engine(n: usize, seed: u64) -> QueryEngine<FlatRow, Euclidean> {
    let points = FlatPoints::from_fn(n, 2, |i, out| {
        let x = ((i as u64).wrapping_mul(seed.wrapping_add(13)) % 101) as f64;
        let y = ((i as u64).wrapping_mul(7).wrapping_add(seed) % 23) as f64;
        out.extend([x, y]);
    });
    let data = points.into_dataset(Euclidean);
    let pg = GNet::build(&data, 1.0);
    QueryEngine::new(pg.graph, data)
}

/// Deterministic query points spread over the same range as the data.
pub fn queries(m: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..m)
        .map(|i| {
            let i = i as u64;
            vec![
                (i.wrapping_mul(31).wrapping_add(seed) % 101) as f64 + 0.5,
                (i.wrapping_mul(11).wrapping_add(seed * 3) % 23) as f64 + 0.25,
            ]
        })
        .collect()
}

/// The queries as `FlatRow`s, for direct engine calls.
pub fn flat_queries(qs: &[Vec<f64>]) -> Vec<FlatRow> {
    qs.iter().map(|q| FlatRow::from(q.clone())).collect()
}

/// A unique temp path per test, cleaned up by the caller.
pub fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pg_serve_test_{}_{name}.pgix", std::process::id()))
}

/// Bit-exact equality for result lists: ids and the exact f64 bits, so a
/// "close enough" float can never mask a divergence between the wire path
/// and the direct engine path.
pub fn results_bits(results: &[(u32, f64)]) -> Vec<(u32, u64)> {
    results.iter().map(|&(id, d)| (id, d.to_bits())).collect()
}
