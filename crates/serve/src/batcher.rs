//! Micro-batching: coalescing concurrent single queries into one
//! `batch_beam` dispatch.
//!
//! Every connection thread that receives a query enqueues a [`Pending`]
//! and blocks on its private reply channel. A single dispatcher thread
//! drains the queue — everything that accumulated while the previous batch
//! ran, up to `max_batch` — groups the drained requests by
//! `(index generation, ef, k)`, and runs **one**
//! [`batch_beam_detailed`](pg_core::AnyEngine::batch_beam_detailed) call
//! per group. Under concurrent load the queue naturally holds several
//! requests by the time the dispatcher returns, so per-dispatch overhead
//! (thread-pool entry, engine resolution) amortizes across the batch; this
//! is the classic closed-loop coalescing effect, measured by `exp_serve`.
//!
//! Two properties make coalescing safe:
//!
//! * **Answers cannot change.** `batch_beam` runs each query independently
//!   — outcome `i` is exactly `beam_search(graph, data, starts[i],
//!   &queries[i], ef, k)` — so a query answered in a batch of 40 returns
//!   bit-identical results to the same query answered alone (pinned by
//!   `tests/equivalence.rs`).
//! * **Hot-swap atomicity is preserved.** The serving generation is
//!   resolved at *enqueue* time and carried in the [`Pending`]: a swap that
//!   lands while a request waits in the queue does not retarget it, so
//!   every answer is attributable to exactly one snapshot epoch.
//!
//! Two robustness properties ride on top (see ARCHITECTURE.md § "Failure
//! model"):
//!
//! * **The queue is bounded.** Admission past `max_queue` waiting requests
//!   is refused with [`ServeError::Overloaded`] *before* the request costs
//!   anything — load shedding instead of unbounded memory growth and
//!   unbounded latency under overload.
//! * **Panics are contained.** Engine dispatch runs under
//!   `catch_unwind`: a panicking worker costs its own batch group a typed
//!   [`ServeError::WorkerPanicked`] reply, while the dispatcher thread,
//!   the other groups, and everything still queued proceed normally —
//!   shutdown still drains every accepted request.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use pg_metric::FlatRow;

use crate::error::ServeError;
use crate::protocol::QueryReply;
use crate::registry::ServingIndex;
use crate::sites;

/// One enqueued query: the generation that will answer it (resolved at
/// enqueue time), the query itself, and the channel the caller blocks on.
pub struct Pending {
    /// The snapshot generation this query is pinned to.
    pub index: Arc<ServingIndex>,
    /// The query point.
    pub query: FlatRow,
    /// Beam width.
    pub ef: u32,
    /// Result count.
    pub k: u32,
    /// Where the dispatcher sends the answer.
    pub reply: mpsc::Sender<Result<QueryReply, ServeError>>,
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending")
            .field("epoch", &self.index.epoch())
            .field("ef", &self.ef)
            .field("k", &self.k)
            .finish_non_exhaustive()
    }
}

/// Answers one query directly on its pinned generation — the unbatched
/// serving path, and the per-request body the dispatcher replicates per
/// batch group. Keeping it as the single shared implementation is what
/// makes batched and unbatched responses structurally identical.
pub fn run_single(index: &ServingIndex, query: FlatRow, ef: u32, k: u32) -> QueryReply {
    let starts = [index.entry()];
    let queries = [query];
    let detail = index
        .engine()
        .batch_beam_detailed(&starts, &queries, ef as usize, k as usize);
    let outcome = detail.outcomes.into_iter().next().expect("one query in");
    QueryReply {
        epoch: index.epoch(),
        dist_comps: outcome.dist_comps,
        expansions: outcome.expansions,
        results: outcome.results,
    }
}

/// [`run_single`] with panic containment: an engine panic (or an injected
/// `serve.engine.dispatch` fault) becomes a typed error instead of a dead
/// connection thread. The unbatched serving path goes through here, so
/// both paths honor the same never-panic contract the dispatcher does.
pub fn run_protected(
    index: &ServingIndex,
    query: FlatRow,
    ef: u32,
    k: u32,
) -> Result<QueryReply, ServeError> {
    match catch_unwind(AssertUnwindSafe(|| {
        crate::failpoint(sites::ENGINE_DISPATCH)?;
        Ok(run_single(index, query, ef, k))
    })) {
        Ok(result) => result,
        Err(_) => Err(ServeError::WorkerPanicked),
    }
}

/// Re-creates an error per batch-group member (a [`ServeError`] holding an
/// `io::Error` is not `Clone`). Only the variants the dispatch path can
/// produce need faithful copies.
fn replicate(e: &ServeError) -> ServeError {
    match e {
        ServeError::Io(io) => ServeError::Io(std::io::Error::new(io.kind(), io.to_string())),
        ServeError::WorkerPanicked => ServeError::WorkerPanicked,
        ServeError::Overloaded => ServeError::Overloaded,
        ServeError::ShuttingDown => ServeError::ShuttingDown,
        other => ServeError::Io(std::io::Error::other(other.to_string())),
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    requests: AtomicU64,
    batches: AtomicU64,
    coalesced_batches: AtomicU64,
    max_batch: AtomicU64,
    shed: AtomicU64,
}

/// A point-in-time snapshot of the dispatcher's counters — how `exp_serve`
/// and the equivalence tests assert that coalescing actually happened
/// (rather than every query riding alone in a batch of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatcherStats {
    /// Queries answered through the queue.
    pub requests: u64,
    /// `batch_beam` dispatches issued.
    pub batches: u64,
    /// Dispatches that coalesced more than one query.
    pub coalesced_batches: u64,
    /// Largest single dispatch.
    pub max_batch: u64,
    /// Requests refused with [`ServeError::Overloaded`] because the queue
    /// was at capacity (load shedding; never counted in `requests`).
    pub shed: u64,
}

#[derive(Debug)]
struct Shared {
    queue: Mutex<Vec<Pending>>,
    available: Condvar,
    shutdown: AtomicBool,
    stats: StatsInner,
    max_queue: usize,
}

/// The dispatcher: one worker thread draining the shared queue. Dropping
/// the batcher shuts the worker down after it has answered everything
/// still queued — shutdown never drops an accepted request.
#[derive(Debug)]
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Starts the dispatcher thread. `max_batch` caps how many queued
    /// requests one dispatch may coalesce (bounding per-batch latency);
    /// `max_queue` caps how many requests may wait in the queue at once —
    /// a submission that would exceed it is refused with
    /// [`ServeError::Overloaded`] instead of queueing without bound
    /// (load shedding). `max_queue == 0` sheds *everything*: lame-duck
    /// mode, useful for drains and for deterministic overload tests.
    pub fn start(max_batch: usize, max_queue: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        let shared = Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: StatsInner::default(),
            max_queue,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("pg-serve-batcher".into())
            .spawn(move || dispatch_loop(&worker_shared, max_batch))
            .expect("spawning the dispatcher thread");
        Batcher {
            shared,
            worker: Some(worker),
        }
    }

    /// Enqueues a query and wakes the dispatcher. Fails with
    /// [`ServeError::ShuttingDown`] once shutdown has begun and with
    /// [`ServeError::Overloaded`] when the queue is at capacity — shed
    /// requests are refused *before* queueing, so they cost the server
    /// nothing and are always safe to retry.
    pub fn submit(&self, pending: Pending) -> Result<(), ServeError> {
        queue_failpoint()?;
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        if queue.len() >= self.shared.max_queue {
            self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded);
        }
        queue.push(pending);
        drop(queue);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Enqueues several queries under one lock acquisition, then wakes the
    /// dispatcher once. Because the dispatcher only drains while holding
    /// the same lock, everything submitted here lands in the queue
    /// together — so the group is **guaranteed** to coalesce (in chunks of
    /// at most `max_batch`), which makes batching effects testable without
    /// racing the dispatcher.
    /// Admission is all-or-nothing: a group that would push the queue past
    /// capacity is refused whole with [`ServeError::Overloaded`] (partial
    /// admission would silently break the coalescing guarantee).
    pub fn submit_many(&self, pendings: Vec<Pending>) -> Result<(), ServeError> {
        queue_failpoint()?;
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        if queue.len().saturating_add(pendings.len()) > self.shared.max_queue {
            self.shared
                .stats
                .shed
                .fetch_add(pendings.len() as u64, Ordering::Relaxed);
            return Err(ServeError::Overloaded);
        }
        queue.extend(pendings);
        drop(queue);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Enqueues a query and blocks until its answer arrives — the
    /// convenience wrapper connection handlers use.
    pub fn run(
        &self,
        index: Arc<ServingIndex>,
        query: FlatRow,
        ef: u32,
        k: u32,
    ) -> Result<QueryReply, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.submit(Pending {
            index,
            query,
            ef,
            k,
            reply: tx,
        })?;
        match rx.recv() {
            Ok(result) => result,
            // The dispatcher dropped the sender without replying. With
            // panic containment in `run_batch` every drained request gets
            // an answer, so this is a should-not-happen backstop, kept as
            // a typed error rather than a panic.
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// Snapshot of the coalescing counters.
    pub fn stats(&self) -> BatcherStats {
        let s = &self.shared.stats;
        BatcherStats {
            requests: s.requests.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            coalesced_batches: s.coalesced_batches.load(Ordering::Relaxed),
            max_batch: s.max_batch.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn dispatch_loop(shared: &Shared, max_batch: usize) {
    loop {
        let drained: Vec<Pending> = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
            let take = queue.len().min(max_batch);
            queue.drain(..take).collect()
        };
        record_batch(&shared.stats, drained.len());
        run_batch(drained);
    }
}

fn record_batch(stats: &StatsInner, size: usize) {
    stats.requests.fetch_add(size as u64, Ordering::Relaxed);
    stats.batches.fetch_add(1, Ordering::Relaxed);
    if size > 1 {
        stats.coalesced_batches.fetch_add(1, Ordering::Relaxed);
    }
    stats.max_batch.fetch_max(size as u64, Ordering::Relaxed);
}

/// Groups a drained batch by `(generation, ef, k)` and issues one engine
/// dispatch per group, then routes each answer back to its requester.
fn run_batch(drained: Vec<Pending>) {
    // Group while preserving arrival order within each group. The key is
    // the generation's pointer identity: two requests pinned to the same
    // Arc<ServingIndex> share an engine, an entry point, and an epoch.
    let mut groups: Vec<(usize, u32, u32, Vec<Pending>)> = Vec::new();
    for p in drained {
        let key = Arc::as_ptr(&p.index) as usize;
        match groups
            .iter_mut()
            .find(|(ptr, ef, k, _)| *ptr == key && *ef == p.ef && *k == p.k)
        {
            Some((_, _, _, members)) => members.push(p),
            None => groups.push((key, p.ef, p.k, vec![p])),
        }
    }
    for (_, ef, k, members) in groups {
        let index = Arc::clone(&members[0].index);
        // Panic containment: an engine panic (or injected dispatch fault)
        // must cost this group a typed error, never the dispatcher thread
        // — a dead dispatcher would hang every queued and future caller.
        let dispatched = match catch_unwind(AssertUnwindSafe(|| {
            crate::failpoint(sites::ENGINE_DISPATCH)?;
            let starts = vec![index.entry(); members.len()];
            let queries: Vec<FlatRow> = members.iter().map(|p| p.query.clone()).collect();
            Ok(index
                .engine()
                .batch_beam_detailed(&starts, &queries, ef as usize, k as usize))
        })) {
            Ok(result) => result,
            Err(_) => Err(ServeError::WorkerPanicked),
        };
        match dispatched {
            Ok(detail) => {
                for (pending, outcome) in members.into_iter().zip(detail.outcomes) {
                    // A send failure means the requester hung up (connection
                    // died while waiting); the answer is simply discarded.
                    let _ = pending.reply.send(Ok(QueryReply {
                        epoch: index.epoch(),
                        dist_comps: outcome.dist_comps,
                        expansions: outcome.expansions,
                        results: outcome.results,
                    }));
                }
            }
            Err(err) => {
                for pending in members {
                    let _ = pending.reply.send(Err(replicate(&err)));
                }
            }
        }
    }
}

/// The queue-admission failpoint: a fired `serve.batcher.queue` fault is
/// treated as "queue at capacity" and shed. Compiled to a no-op without
/// the `failpoints` feature.
#[cfg(feature = "failpoints")]
fn queue_failpoint() -> Result<(), ServeError> {
    if pg_fault::hit(sites::BATCH_QUEUE).is_some() {
        return Err(ServeError::Overloaded);
    }
    Ok(())
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
fn queue_failpoint() -> Result<(), ServeError> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::IndexRegistry;
    use pg_core::engine::QueryEngine;
    use pg_core::GNet;
    use pg_metric::{Euclidean, FlatPoints};

    fn serving() -> Arc<ServingIndex> {
        let mut points = FlatPoints::new(2);
        for i in 0..40 {
            points.push(&[i as f64, (i % 7) as f64]);
        }
        let data = points.into_dataset(Euclidean);
        let pg = GNet::build(&data, 1.0);
        let engine = QueryEngine::new(pg.graph, data);
        let registry = IndexRegistry::new();
        registry.register("m", engine, 0).unwrap();
        registry.get("m").unwrap()
    }

    fn pending(
        index: &Arc<ServingIndex>,
        x: f64,
    ) -> (Pending, mpsc::Receiver<Result<QueryReply, ServeError>>) {
        let (tx, rx) = mpsc::channel();
        (
            Pending {
                index: Arc::clone(index),
                query: FlatRow::from(vec![x, 1.0]),
                ef: 8,
                k: 2,
                reply: tx,
            },
            rx,
        )
    }

    /// A thread that panics while holding the queue mutex poisons it; the
    /// `unwrap_or_else(|e| e.into_inner())` recovery on every lock site
    /// must keep both submission and dispatch alive afterwards.
    #[test]
    fn poisoned_queue_mutex_recovers() {
        let batcher = Batcher::start(4, 64);
        let index = serving();
        let shared = Arc::clone(&batcher.shared);
        let poisoner = std::thread::spawn(move || {
            let _guard = shared.queue.lock().unwrap();
            panic!("poison the queue mutex on purpose");
        });
        assert!(poisoner.join().is_err(), "poisoner must panic");
        let reply = batcher
            .run(Arc::clone(&index), FlatRow::from(vec![3.0, 1.0]), 8, 2)
            .expect("a poisoned queue mutex must not break serving");
        assert_eq!(reply.results.len(), 2);
        let reply2 = batcher
            .run(index, FlatRow::from(vec![17.0, 2.0]), 8, 2)
            .expect("and it stays recovered");
        assert_eq!(reply2.results.len(), 2);
    }

    /// Dropping the batcher with work still queued must answer everything
    /// first — shutdown never drops an accepted request.
    #[test]
    fn shutdown_drains_every_queued_request() {
        let batcher = Batcher::start(1, 1024);
        let index = serving();
        let mut receivers = Vec::new();
        let mut group = Vec::new();
        for i in 0..50 {
            let (p, rx) = pending(&index, i as f64);
            group.push(p);
            receivers.push(rx);
        }
        batcher.submit_many(group).unwrap();
        drop(batcher);
        for (i, rx) in receivers.into_iter().enumerate() {
            let reply = rx
                .recv()
                .unwrap_or_else(|_| panic!("request {i} was dropped at shutdown"));
            assert!(reply.is_ok(), "request {i} must succeed, got {reply:?}");
        }
    }

    /// `max_queue == 0` is lame-duck mode: every submission is shed with
    /// `Overloaded` before costing anything, and the shed counter says so.
    #[test]
    fn zero_capacity_queue_sheds_deterministically() {
        let batcher = Batcher::start(4, 0);
        let index = serving();
        let (p, _rx) = pending(&index, 1.0);
        assert!(matches!(batcher.submit(p), Err(ServeError::Overloaded)));
        let (p1, _rx1) = pending(&index, 2.0);
        let (p2, _rx2) = pending(&index, 3.0);
        assert!(matches!(
            batcher.submit_many(vec![p1, p2]),
            Err(ServeError::Overloaded)
        ));
        let stats = batcher.stats();
        assert_eq!(stats.shed, 3);
        assert_eq!(stats.requests, 0, "shed requests never count as served");
    }
}
