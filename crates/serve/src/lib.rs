//! Online serving for proximity-graph indexes: a dependency-free TCP
//! server with micro-batched queries, snapshot hot-swap, and multi-index
//! tenancy.
//!
//! The offline half of this workspace builds indexes (`pg_core`) and
//! persists them (`pg_store`); this crate is the online half that answers
//! queries over the network. Everything is `std`-only —
//! [`std::net::TcpListener`], threads, channels — in keeping with the
//! workspace's no-external-dependencies rule.
//!
//! # The pieces
//!
//! * [`protocol`] — versioned, length-prefixed, FNV-checksummed binary
//!   frames (the byte-level spec lives in `ARCHITECTURE.md` § "Serving
//!   protocol"). Decoding is total: malformed bytes produce a typed
//!   [`ServeError`], never a panic.
//! * [`registry`] — named serving cells with atomic `Arc` hot-swap: a new
//!   snapshot replaces an old one under live traffic with zero dropped
//!   requests, and every response carries the epoch of the generation that
//!   answered it.
//! * [`batcher`] — micro-batching: concurrent single queries coalesce into
//!   one [`batch_beam`](pg_core::AnyEngine::batch_beam) dispatch,
//!   amortizing per-dispatch overhead without changing any answer.
//! * [`server`] / [`client`] — the blocking TCP endpoints. A request that
//!   fails — malformed frame, unknown index, wrong dimensionality — costs
//!   its sender an error frame, not the connection.
//!
//! Serving answers are **bit-identical** to a direct
//! [`QueryEngine::batch_beam`](pg_core::QueryEngine::batch_beam) run over
//! the same snapshot (pinned by `tests/equivalence.rs`), so every
//! determinism guarantee from the engine layer — identical results at any
//! thread count, sequential-equivalent outcomes — extends to the wire.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//!
//! use pg_core::engine::QueryEngine;
//! use pg_core::GNet;
//! use pg_metric::{Euclidean, FlatPoints};
//! use pg_serve::client::Client;
//! use pg_serve::registry::IndexRegistry;
//! use pg_serve::server::{ServeConfig, Server};
//!
//! // Offline: build an index.
//! let mut points = FlatPoints::new(2);
//! for i in 0..60 {
//!     points.push(&[i as f64, (i % 5) as f64]);
//! }
//! let data = points.into_dataset(Euclidean);
//! let pg = GNet::build(&data, 1.0);
//! let engine = QueryEngine::new(pg.graph, data);
//!
//! // Online: register it and serve.
//! let registry = Arc::new(IndexRegistry::new());
//! registry.register("main", engine, 0).unwrap();
//! let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), ServeConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.ping().unwrap();
//! let reply = client.query("main", &[17.3, 2.2], 16, 3).unwrap();
//! assert_eq!(reply.results.len(), 3);
//! assert_eq!(reply.epoch, 1);
//! assert_eq!(client.list().unwrap(), vec!["main".to_string()]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batcher;
pub mod client;
pub mod error;
pub mod protocol;
pub mod registry;
pub mod server;

/// Failpoint site names instrumented in this crate (see `pg_fault`).
///
/// The hooks behind them are compiled in only with the `failpoints` cargo
/// feature; the names themselves are always available so chaos suites can
/// enumerate every site (`sites::ALL`) and assert the failure contract at
/// each one. `pg_store::sites` lists the snapshot-I/O sites the same
/// feature turns on underneath this crate.
pub mod sites {
    /// Reading a request frame from an accepted connection.
    pub const CONN_READ: &str = "serve.conn.read";
    /// Writing a response frame to an accepted connection.
    pub const CONN_WRITE: &str = "serve.conn.write";
    /// Admitting a request into the batcher queue; a fired fault here is
    /// treated as "queue full" and shed with
    /// [`ServeError::Overloaded`](crate::error::ServeError::Overloaded).
    pub const BATCH_QUEUE: &str = "serve.batcher.queue";
    /// Handing a query (or batch group) to the engine. Runs inside the
    /// panic-containment guard, so a `Panic` fault here exercises
    /// `WorkerPanicked` instead of killing the dispatcher.
    pub const ENGINE_DISPATCH: &str = "serve.engine.dispatch";
    /// Every failpoint site this crate instruments.
    pub const ALL: &[&str] = &[CONN_READ, CONN_WRITE, BATCH_QUEUE, ENGINE_DISPATCH];
}

/// Asks `pg_fault` whether an injected fault should fire at `site`; any
/// fired fault becomes a [`ServeError::Io`](error::ServeError::Io) here.
/// Compiled to a no-op without the `failpoints` feature.
#[cfg(feature = "failpoints")]
pub(crate) fn failpoint(site: &str) -> Result<(), error::ServeError> {
    match pg_fault::hit(site) {
        None => Ok(()),
        Some(fault) => Err(error::ServeError::Io(fault.into_io_error(site))),
    }
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub(crate) fn failpoint(_site: &str) -> Result<(), error::ServeError> {
    Ok(())
}

pub use batcher::{Batcher, BatcherStats, Pending};
pub use client::{Client, RetryPolicy, RetryingClient};
pub use error::{ErrorCode, ServeError};
pub use protocol::{IndexInfo, QueryReply, Request, Response, PROTOCOL_VERSION};
pub use registry::{IndexRegistry, ServingIndex};
pub use server::{ServeConfig, Server};
