//! Multi-index tenancy and snapshot hot-swap.
//!
//! A server routes each query to a named index. The registry maps names to
//! *serving cells*; a cell holds the current [`ServingIndex`] — an
//! [`AnyEngine`] plus its routing entry point, stamped with an **epoch** —
//! behind an atomically swappable [`Arc`].
//!
//! # The hot-swap contract
//!
//! Replacing a snapshot under live traffic must drop zero requests and mix
//! zero answers. Both follow from `Arc` semantics:
//!
//! * A request resolves its cell **once** (at enqueue time) and holds an
//!   `Arc<ServingIndex>` until its response is written. A concurrent
//!   [`IndexRegistry::swap`] replaces the cell's `Arc` for *future*
//!   resolutions; in-flight requests keep the old engine alive and finish
//!   on it. No request ever observes a half-replaced index.
//! * Every generation carries a registry-unique, strictly increasing
//!   epoch, and every query response reports the epoch that answered it —
//!   so a client (or the hot-swap test in `tests/hot_swap.rs`) can
//!   attribute each answer to exactly one snapshot generation.
//!
//! The old engine is freed when the last in-flight `Arc` drops — the same
//! read-copy-update shape the kernel uses, built from two `std` types.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use pg_core::AnyEngine;
use pg_store::MetricTag;

use crate::error::ServeError;

/// One immutable snapshot generation of one index: the engine, the entry
/// point queries start from, and the epoch stamp. Shared as
/// `Arc<ServingIndex>` between the registry and every request in flight.
#[derive(Debug)]
pub struct ServingIndex {
    engine: AnyEngine,
    entry: u32,
    epoch: u64,
}

impl ServingIndex {
    /// The engine that answers queries for this generation.
    pub fn engine(&self) -> &AnyEngine {
        &self.engine
    }

    /// The routing start vertex every query uses.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// This generation's registry-unique epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// Always false (snapshots of empty indexes do not exist).
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// Point dimensionality queries must match.
    pub fn dims(&self) -> usize {
        self.engine.dims()
    }

    /// The metric tag of the engine.
    pub fn metric(&self) -> MetricTag {
        self.engine.metric()
    }
}

/// RwLock poisoning carries no meaning here — every critical section is a
/// pointer clone or replace that cannot leave partial state — so a
/// poisoned lock is simply recovered. This keeps one panicking connection
/// thread from wedging the whole registry.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// The swappable slot one index name resolves to.
#[derive(Debug)]
struct ServingCell {
    current: RwLock<Arc<ServingIndex>>,
}

impl ServingCell {
    fn get(&self) -> Arc<ServingIndex> {
        Arc::clone(&read_lock(&self.current))
    }

    fn swap(&self, next: Arc<ServingIndex>) {
        *write_lock(&self.current) = next;
    }
}

/// The name → serving-cell map a [`Server`](crate::server::Server) routes
/// against, plus the epoch counter all generations draw from.
///
/// ```
/// use pg_core::engine::QueryEngine;
/// use pg_core::GNet;
/// use pg_metric::{Euclidean, FlatPoints};
/// use pg_serve::registry::IndexRegistry;
///
/// let mut points = FlatPoints::new(2);
/// for i in 0..40 {
///     points.push(&[i as f64, (i % 5) as f64]);
/// }
/// let data = points.into_dataset(Euclidean);
/// let pg = GNet::build(&data, 1.0);
///
/// let registry = IndexRegistry::new();
/// registry.register("main", QueryEngine::new(pg.graph, data), 0).unwrap();
/// let index = registry.get("main").unwrap();
/// assert_eq!(index.len(), 40);
/// assert_eq!(index.epoch(), 1);
/// assert_eq!(registry.names(), vec!["main".to_string()]);
/// ```
#[derive(Debug, Default)]
pub struct IndexRegistry {
    cells: RwLock<HashMap<String, Arc<ServingCell>>>,
    epochs: AtomicU64,
}

impl IndexRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn next_epoch(&self) -> u64 {
        self.epochs.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn make_index(&self, engine: AnyEngine, entry: u32) -> Result<Arc<ServingIndex>, ServeError> {
        if entry as usize >= engine.len() {
            return Err(ServeError::BadRequest {
                reason: format!(
                    "entry point {entry} out of range (index holds {} points)",
                    engine.len()
                ),
            });
        }
        Ok(Arc::new(ServingIndex {
            engine,
            entry,
            epoch: self.next_epoch(),
        }))
    }

    /// Registers (or replaces) the index under `name`, serving from
    /// `entry`. Returns the new generation's epoch.
    pub fn register(
        &self,
        name: impl Into<String>,
        engine: impl Into<AnyEngine>,
        entry: u32,
    ) -> Result<u64, ServeError> {
        let index = self.make_index(engine.into(), entry)?;
        let epoch = index.epoch;
        let mut cells = write_lock(&self.cells);
        match cells.entry(name.into()) {
            std::collections::hash_map::Entry::Occupied(slot) => slot.get().swap(index),
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Arc::new(ServingCell {
                    current: RwLock::new(index),
                }));
            }
        }
        Ok(epoch)
    }

    /// Loads a snapshot file and registers it under `name`, serving from
    /// the entry point recorded in the file's metadata.
    pub fn register_from_path(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<u64, ServeError> {
        let (engine, meta) = AnyEngine::load(path)?;
        self.register(name, engine, meta.entry_point)
    }

    /// Hot-swaps the index under `name` to a new engine. Fails with
    /// [`ServeError::UnknownIndex`] if the name was never registered —
    /// swapping is an update, not an insert, so a typo cannot silently
    /// create a tenant. Returns the new generation's epoch.
    pub fn swap(
        &self,
        name: &str,
        engine: impl Into<AnyEngine>,
        entry: u32,
    ) -> Result<u64, ServeError> {
        let cell = {
            let cells = read_lock(&self.cells);
            cells
                .get(name)
                .cloned()
                .ok_or_else(|| ServeError::UnknownIndex { name: name.into() })?
        };
        let index = self.make_index(engine.into(), entry)?;
        let epoch = index.epoch;
        cell.swap(index);
        Ok(epoch)
    }

    /// Loads a snapshot file and hot-swaps it in under `name`, serving
    /// from the entry point recorded in the file. The load happens
    /// entirely **before** the swap: a corrupt or missing file returns a
    /// typed error and leaves the serving generation untouched.
    pub fn swap_from_path(&self, name: &str, path: impl AsRef<Path>) -> Result<u64, ServeError> {
        let (engine, meta) = AnyEngine::load(path)?;
        self.swap(name, engine, meta.entry_point)
    }

    /// Resolves a name to its current generation. The returned `Arc` stays
    /// valid (and keeps its engine alive) across any number of concurrent
    /// swaps.
    pub fn get(&self, name: &str) -> Option<Arc<ServingIndex>> {
        read_lock(&self.cells).get(name).map(|cell| cell.get())
    }

    /// The registered index names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = read_lock(&self.cells).keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered indexes.
    pub fn len(&self) -> usize {
        read_lock(&self.cells).len()
    }

    /// Whether the registry holds no indexes.
    pub fn is_empty(&self) -> bool {
        read_lock(&self.cells).is_empty()
    }
}
