//! The wire protocol: versioned, length-prefixed, checksummed frames.
//!
//! One frame is one request or one response. Everything is
//! **little-endian**, and the layout is fixed:
//!
//! ```text
//! offset  size          field
//! 0       4             frame_len: u32   — bytes that follow this field
//! 4       frame_len-8   payload          — version: u8, kind: u8, body
//! 4+len-8 8             checksum: u64    — FNV-1a 64 of the payload
//! ```
//!
//! The checksum is [`pg_store::checksum`] — the same FNV-1a 64 every
//! on-disk format in this workspace uses, so one implementation of the
//! hash validates snapshots, ground-truth caches, and network frames
//! alike. The checksum is verified **before** the version or kind byte is
//! interpreted, mirroring `pg_store`'s section gates: corrupt bytes fail
//! as corruption, not as whatever structure they happen to resemble.
//!
//! Frame kinds `0..=127` are requests, `128..=255` are responses (see
//! [`Request`] and [`Response`] for the per-kind body layouts, documented
//! field by field in `ARCHITECTURE.md` § "Serving protocol"). Decoding is
//! **total**: any byte sequence either parses completely or returns a
//! typed [`ServeError`] — no panic, no partial value — pinned by the
//! exhaustive truncation/byte-flip suite in `tests/corruption.rs`.
//!
//! ```
//! use pg_serve::protocol::{decode_request, encode_request, Request};
//!
//! let req = Request::Query {
//!     index: "main".into(),
//!     ef: 32,
//!     k: 10,
//!     coords: vec![1.0, 2.5],
//! };
//! let frame = encode_request(&req);
//! assert_eq!(decode_request(&frame).unwrap(), req);
//! ```

use std::io::{Read, Write};

use pg_store::checksum;

use crate::error::{malformed, ErrorCode, ServeError};

/// The protocol version this crate speaks. Readers accept exactly the
/// versions they know and reject anything else with
/// [`ServeError::UnsupportedVersion`] — a new layout means a version bump,
/// never a silent reinterpretation (the `pg_store` versioning rule).
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on the declared `frame_len` (16 MiB). A peer announcing
/// more is answered with [`ServeError::FrameTooLarge`] and the connection
/// closes: past a refused length there is no way to resync the stream.
pub const MAX_FRAME_LEN: u32 = 1 << 24;

/// The smallest legal `frame_len`: a version byte, a kind byte, and the
/// 8-byte checksum.
pub const MIN_FRAME_LEN: u32 = 2 + 8;

/// Bytes of the `frame_len` prefix itself.
pub const LEN_PREFIX: usize = 4;

// Frame kinds. Requests are 0..=127, responses 128..=255; codes are frozen
// forever (new message types append new codes).
const KIND_PING: u8 = 0;
const KIND_QUERY: u8 = 1;
const KIND_INFO: u8 = 2;
const KIND_LIST: u8 = 3;
const KIND_PONG: u8 = 128;
const KIND_QUERY_OK: u8 = 129;
const KIND_INFO_OK: u8 = 130;
const KIND_LIST_OK: u8 = 131;
const KIND_ERROR: u8 = 132;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; the server answers [`Response::Pong`].
    /// Body: empty.
    Ping,
    /// A single `k`-NN query against the named index.
    /// Body: `index` string, `ef: u32`, `k: u32`, `dims: u32`,
    /// `dims × f64` coordinates.
    Query {
        /// The tenant index to route to.
        index: String,
        /// Beam width (see `pg_core::beam_search`).
        ef: u32,
        /// Number of neighbors to return.
        k: u32,
        /// The query point.
        coords: Vec<f64>,
    },
    /// Metadata about the named index (answered with [`Response::Info`]).
    /// Body: `index` string.
    Info {
        /// The tenant index to describe.
        index: String,
    },
    /// The sorted list of registered index names.
    /// Body: empty.
    ListIndexes,
}

/// The payload of a successful query response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// The snapshot generation that answered (see
    /// `pg_serve::registry::IndexRegistry`): strictly increasing per
    /// hot-swap, so a client — or the hot-swap test — can attribute every
    /// answer to exactly one snapshot.
    pub epoch: u64,
    /// Distance computations this query cost.
    pub dist_comps: u64,
    /// Vertices whose neighbor list was scanned.
    pub expansions: u64,
    /// `(id, dist)` pairs, ascending by distance with ties by id — exactly
    /// the order `QueryEngine::batch_beam` returns.
    pub results: Vec<(u32, f64)>,
}

/// The payload of an index-info response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexInfo {
    /// Current snapshot generation.
    pub epoch: u64,
    /// Number of indexed points.
    pub n: u64,
    /// Point dimensionality.
    pub dims: u32,
    /// The `pg_store::MetricTag` code of the index's metric.
    pub metric_code: u32,
    /// The routing entry point queries start from.
    pub entry_point: u32,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`]. Body: empty.
    Pong,
    /// Answer to [`Request::Query`]. Body: `epoch: u64`,
    /// `dist_comps: u64`, `expansions: u64`, `count: u32`,
    /// `count × (id: u32, dist: f64)`.
    Query(QueryReply),
    /// Answer to [`Request::Info`]. Body: `epoch: u64`, `n: u64`,
    /// `dims: u32`, `metric_code: u32`, `entry_point: u32`.
    Info(IndexInfo),
    /// Answer to [`Request::ListIndexes`]. Body: `count: u32`, then
    /// `count` strings.
    IndexList(Vec<String>),
    /// The request failed. Body: `code: u16` ([`ErrorCode`]), message
    /// string. The connection stays open unless the error is a framing
    /// failure the stream cannot recover from.
    Error {
        /// The typed failure class.
        code: ErrorCode,
        /// The server's rendering of its local error.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Primitive encoders / decoders
// ---------------------------------------------------------------------------

fn push_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string field too long");
    push_u16(buf, s.len() as u16);
    buf.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, len: usize, context: &'static str) -> Result<&'a [u8], ServeError> {
        if self.bytes.len() - self.pos < len {
            return Err(ServeError::Truncated { context });
        }
        // pg-lint: allow(no-panic-path, length-checked above: pos + len <= bytes.len())
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(
            // pg-lint: allow(no-panic-path, take(2) returns exactly 2 bytes; try_into cannot fail)
            self.take(2, context)?.try_into().unwrap(),
        ))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(
            // pg-lint: allow(no-panic-path, take(4) returns exactly 4 bytes; try_into cannot fail)
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(
            // pg-lint: allow(no-panic-path, take(8) returns exactly 8 bytes; try_into cannot fail)
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, ServeError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    fn string(&mut self, context: &'static str) -> Result<String, ServeError> {
        let len = self.u16(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed(format!("{context} is not UTF-8")))
    }

    fn finish(&self, what: &'static str) -> Result<(), ServeError> {
        if self.pos != self.bytes.len() {
            return Err(malformed(format!(
                "{} trailing bytes after {what}",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

/// Wraps `kind` + `body` in a complete frame: length prefix, version and
/// kind bytes, payload checksum.
fn encode_frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let payload_len = 2 + body.len();
    let frame_len = (payload_len + 8) as u32;
    debug_assert!(frame_len <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
    let mut out = Vec::with_capacity(LEN_PREFIX + frame_len as usize);
    push_u32(&mut out, frame_len);
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    out.extend_from_slice(body);
    // pg-lint: allow(no-panic-path, out was just built with exactly LEN_PREFIX + payload_len + … bytes)
    let sum = checksum(&out[LEN_PREFIX..LEN_PREFIX + payload_len]);
    push_u64(&mut out, sum);
    out
}

/// Splits one complete frame into its kind byte and body slice, verifying
/// the length bounds, the checksum (before anything else is interpreted),
/// and the version byte. `frame` must be exactly one frame — trailing
/// bytes are an error, so a corrupted length prefix cannot silently
/// re-segment the stream.
fn decode_frame(frame: &[u8]) -> Result<(u8, &[u8]), ServeError> {
    let mut cur = Cursor::new(frame);
    let frame_len = cur.u32("frame length")?;
    if frame_len < MIN_FRAME_LEN {
        return Err(malformed(format!(
            "declared frame length {frame_len} is below the {MIN_FRAME_LEN}-byte minimum"
        )));
    }
    if frame_len > MAX_FRAME_LEN {
        return Err(ServeError::FrameTooLarge {
            len: frame_len as u64,
        });
    }
    let rest = cur.take(frame_len as usize, "frame payload")?;
    cur.finish("the frame")?;
    let (payload, stored) = rest.split_at(rest.len() - 8);
    // pg-lint: allow(no-panic-path, split_at(len - 8) makes stored exactly 8 bytes)
    let stored = u64::from_le_bytes(stored.try_into().unwrap());
    if checksum(payload) != stored {
        return Err(ServeError::ChecksumMismatch);
    }
    // pg-lint: allow(no-panic-path, payload.len() >= MIN_FRAME_LEN - 8 >= 2, checked above)
    let version = payload[0];
    if version != PROTOCOL_VERSION {
        return Err(ServeError::UnsupportedVersion { found: version });
    }
    // pg-lint: allow(no-panic-path, payload.len() >= 2 per the MIN_FRAME_LEN bound above)
    Ok((payload[1], &payload[2..]))
}

/// Writes a pre-encoded frame to a sink in one call.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> std::io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Reads exactly one frame from a blocking stream: the 4-byte length
/// prefix, then the declared remainder. A clean EOF **at** a frame
/// boundary is [`ServeError::ConnectionClosed`]; EOF mid-frame is
/// [`ServeError::Truncated`]. Length bounds are enforced before the body
/// is read, so a hostile prefix cannot force a 4 GiB allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ServeError> {
    let mut prefix = [0u8; LEN_PREFIX];
    let mut filled = 0;
    while filled < prefix.len() {
        // pg-lint: allow(no-panic-path, filled < prefix.len() is the loop condition)
        match r.read(&mut prefix[filled..])? {
            0 if filled == 0 => return Err(ServeError::ConnectionClosed),
            0 => {
                return Err(ServeError::Truncated {
                    context: "frame length",
                })
            }
            got => filled += got,
        }
    }
    let frame_len = u32::from_le_bytes(prefix);
    if frame_len < MIN_FRAME_LEN {
        return Err(malformed(format!(
            "declared frame length {frame_len} is below the {MIN_FRAME_LEN}-byte minimum"
        )));
    }
    if frame_len > MAX_FRAME_LEN {
        return Err(ServeError::FrameTooLarge {
            len: frame_len as u64,
        });
    }
    let mut frame = vec![0u8; LEN_PREFIX + frame_len as usize];
    // pg-lint: allow(no-panic-path, frame was just allocated with LEN_PREFIX + frame_len bytes)
    frame[..LEN_PREFIX].copy_from_slice(&prefix);
    // pg-lint: allow(no-panic-path, same allocation bound as the line above)
    r.read_exact(&mut frame[LEN_PREFIX..])
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => ServeError::Truncated {
                context: "frame payload",
            },
            _ => ServeError::Io(e),
        })?;
    Ok(frame)
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Encodes a request as one complete frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Ping => encode_frame(KIND_PING, &[]),
        Request::Query {
            index,
            ef,
            k,
            coords,
        } => {
            let mut body = Vec::with_capacity(2 + index.len() + 12 + 8 * coords.len());
            push_str(&mut body, index);
            push_u32(&mut body, *ef);
            push_u32(&mut body, *k);
            push_u32(&mut body, coords.len() as u32);
            for &c in coords {
                push_f64(&mut body, c);
            }
            encode_frame(KIND_QUERY, &body)
        }
        Request::Info { index } => {
            let mut body = Vec::with_capacity(2 + index.len());
            push_str(&mut body, index);
            encode_frame(KIND_INFO, &body)
        }
        Request::ListIndexes => encode_frame(KIND_LIST, &[]),
    }
}

/// Decodes one complete request frame. Total: every input either parses or
/// returns a typed [`ServeError`]; response kinds are
/// [`ServeError::UnknownKind`] here (and vice versa), so a confused peer
/// fails loudly instead of cross-interpreting.
pub fn decode_request(frame: &[u8]) -> Result<Request, ServeError> {
    let (kind, body) = decode_frame(frame)?;
    let mut cur = Cursor::new(body);
    let req = match kind {
        KIND_PING => Request::Ping,
        KIND_QUERY => {
            let index = cur.string("index name")?;
            let ef = cur.u32("ef")?;
            let k = cur.u32("k")?;
            let dims = cur.u32("query dims")? as usize;
            // Exact-size check before allocating: the remaining bytes must
            // be exactly the declared coordinates.
            if cur.bytes.len() - cur.pos != 8 * dims {
                return Err(malformed(format!(
                    "query declares {dims} coordinates but carries {} payload bytes",
                    cur.bytes.len() - cur.pos
                )));
            }
            let mut coords = Vec::with_capacity(dims);
            for _ in 0..dims {
                coords.push(cur.f64("query coordinate")?);
            }
            Request::Query {
                index,
                ef,
                k,
                coords,
            }
        }
        KIND_INFO => Request::Info {
            index: cur.string("index name")?,
        },
        KIND_LIST => Request::ListIndexes,
        other => return Err(ServeError::UnknownKind { kind: other }),
    };
    cur.finish("the request body")?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Encodes a response as one complete frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Pong => encode_frame(KIND_PONG, &[]),
        Response::Query(reply) => {
            let mut body = Vec::with_capacity(28 + 12 * reply.results.len());
            push_u64(&mut body, reply.epoch);
            push_u64(&mut body, reply.dist_comps);
            push_u64(&mut body, reply.expansions);
            push_u32(&mut body, reply.results.len() as u32);
            for &(id, dist) in &reply.results {
                push_u32(&mut body, id);
                push_f64(&mut body, dist);
            }
            encode_frame(KIND_QUERY_OK, &body)
        }
        Response::Info(info) => {
            let mut body = Vec::with_capacity(28);
            push_u64(&mut body, info.epoch);
            push_u64(&mut body, info.n);
            push_u32(&mut body, info.dims);
            push_u32(&mut body, info.metric_code);
            push_u32(&mut body, info.entry_point);
            encode_frame(KIND_INFO_OK, &body)
        }
        Response::IndexList(names) => {
            let mut body = Vec::with_capacity(4 + names.iter().map(|n| 2 + n.len()).sum::<usize>());
            push_u32(&mut body, names.len() as u32);
            for n in names {
                push_str(&mut body, n);
            }
            encode_frame(KIND_LIST_OK, &body)
        }
        Response::Error { code, message } => {
            let mut body = Vec::with_capacity(4 + message.len());
            push_u16(&mut body, code.code());
            push_str(&mut body, message);
            encode_frame(KIND_ERROR, &body)
        }
    }
}

/// Decodes one complete response frame (total, like [`decode_request`]).
pub fn decode_response(frame: &[u8]) -> Result<Response, ServeError> {
    let (kind, body) = decode_frame(frame)?;
    let mut cur = Cursor::new(body);
    let resp = match kind {
        KIND_PONG => Response::Pong,
        KIND_QUERY_OK => {
            let epoch = cur.u64("epoch")?;
            let dist_comps = cur.u64("dist comps")?;
            let expansions = cur.u64("expansions")?;
            let count = cur.u32("result count")? as usize;
            if cur.bytes.len() - cur.pos != 12 * count {
                return Err(malformed(format!(
                    "query reply declares {count} results but carries {} payload bytes",
                    cur.bytes.len() - cur.pos
                )));
            }
            let mut results = Vec::with_capacity(count);
            for _ in 0..count {
                let id = cur.u32("result id")?;
                let dist = cur.f64("result distance")?;
                results.push((id, dist));
            }
            Response::Query(QueryReply {
                epoch,
                dist_comps,
                expansions,
                results,
            })
        }
        KIND_INFO_OK => Response::Info(IndexInfo {
            epoch: cur.u64("epoch")?,
            n: cur.u64("n")?,
            dims: cur.u32("dims")?,
            metric_code: cur.u32("metric code")?,
            entry_point: cur.u32("entry point")?,
        }),
        KIND_LIST_OK => {
            let count = cur.u32("index count")? as usize;
            // Each name needs at least its 2-byte length; bound before
            // allocating.
            if count > (cur.bytes.len() - cur.pos) / 2 {
                return Err(malformed(format!(
                    "index list declares {count} names but carries {} payload bytes",
                    cur.bytes.len() - cur.pos
                )));
            }
            let mut names = Vec::with_capacity(count);
            for _ in 0..count {
                names.push(cur.string("index name")?);
            }
            Response::IndexList(names)
        }
        KIND_ERROR => {
            let raw = cur.u16("error code")?;
            let code = ErrorCode::from_code(raw)
                .ok_or_else(|| malformed(format!("unknown error code {raw}")))?;
            let message = cur.string("error message")?;
            Response::Error { code, message }
        }
        other => return Err(ServeError::UnknownKind { kind: other }),
    };
    cur.finish("the response body")?;
    Ok(resp)
}

/// The error frame a server sends for a local failure.
pub fn error_response(err: &ServeError) -> Response {
    Response::Error {
        code: ErrorCode::for_error(err),
        message: err.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout_is_as_documented() {
        let frame = encode_frame(KIND_PING, &[]);
        // len prefix + version + kind + checksum.
        assert_eq!(frame.len(), 4 + 2 + 8);
        assert_eq!(u32::from_le_bytes(frame[..4].try_into().unwrap()), 10);
        assert_eq!(frame[4], PROTOCOL_VERSION);
        assert_eq!(frame[5], KIND_PING);
        let sum = u64::from_le_bytes(frame[6..14].try_into().unwrap());
        assert_eq!(sum, checksum(&frame[4..6]));
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Ping,
            Request::Query {
                index: "main".into(),
                ef: 64,
                k: 10,
                coords: vec![0.5, -3.25, 1e300],
            },
            Request::Info {
                index: "tenant-a".into(),
            },
            Request::ListIndexes,
        ];
        for req in reqs {
            let frame = encode_request(&req);
            assert_eq!(decode_request(&frame).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::Pong,
            Response::Query(QueryReply {
                epoch: 7,
                dist_comps: 123,
                expansions: 17,
                results: vec![(3, 0.25), (9, 1.5)],
            }),
            Response::Info(IndexInfo {
                epoch: 2,
                n: 4000,
                dims: 8,
                metric_code: 0,
                entry_point: 17,
            }),
            Response::IndexList(vec!["a".into(), "b".into()]),
            Response::Error {
                code: ErrorCode::UnknownIndex,
                message: "unknown index \"x\"".into(),
            },
        ];
        for resp in resps {
            let frame = encode_response(&resp);
            assert_eq!(decode_response(&frame).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn stream_roundtrip_of_consecutive_frames() {
        let mut buf = Vec::new();
        let a = encode_request(&Request::Ping);
        let b = encode_request(&Request::Info { index: "m".into() });
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), a);
        assert_eq!(read_frame(&mut r).unwrap(), b);
        assert!(matches!(
            read_frame(&mut r),
            Err(ServeError::ConnectionClosed)
        ));
    }

    #[test]
    fn oversized_declared_length_is_refused_before_reading_the_body() {
        let mut bytes = Vec::new();
        push_u32(&mut bytes, MAX_FRAME_LEN + 1);
        // No body at all: the bound check must fire first.
        let mut r = &bytes[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(ServeError::FrameTooLarge { .. })
        ));
        assert!(matches!(
            decode_frame(&bytes),
            Err(ServeError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn cross_decoding_request_and_response_kinds_fails_loudly() {
        let req = encode_request(&Request::Ping);
        assert!(matches!(
            decode_response(&req),
            Err(ServeError::UnknownKind { kind: KIND_PING })
        ));
        let resp = encode_response(&Response::Pong);
        assert!(matches!(
            decode_request(&resp),
            Err(ServeError::UnknownKind { kind: KIND_PONG })
        ));
    }

    #[test]
    fn version_is_checked_after_the_checksum() {
        // Patch the version byte and re-stamp the checksum: the decoder
        // must now reject on version, proving corrupt bytes fail as
        // corruption and only authentic version bumps as version errors.
        let mut frame = encode_request(&Request::Ping);
        frame[4] = 9;
        let payload_end = frame.len() - 8;
        let sum = checksum(&frame[4..payload_end]);
        frame[payload_end..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_request(&frame),
            Err(ServeError::UnsupportedVersion { found: 9 })
        ));
    }
}
