//! The typed failure surface of the serving layer.
//!
//! Everything that can go wrong between two `pg_serve` endpoints — a
//! malformed frame, a corrupt payload, an unknown index name, a query with
//! the wrong dimensionality — is a [`ServeError`] variant. The protocol
//! layer **never panics on untrusted bytes** (the same discipline as
//! `pg_store::SnapshotError`), and the server maps every error onto a wire
//! [`ErrorCode`] so clients get the variant back, not a dropped connection.

use std::fmt;

use pg_store::SnapshotError;

/// Every way serving can fail. Decoding untrusted bytes produces only the
/// frame-level variants (`Truncated`, `ChecksumMismatch`,
/// `UnsupportedVersion`, `UnknownKind`, `FrameTooLarge`, `Malformed`);
/// request handling adds the semantic ones (`UnknownIndex`, `DimMismatch`,
/// `BadRequest`); `Remote` is how a client surfaces an error frame the
/// server sent back.
#[derive(Debug)]
pub enum ServeError {
    /// Underlying socket or file I/O failed.
    Io(std::io::Error),
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    ConnectionClosed,
    /// The bytes ended before a complete structure could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A frame's stored checksum does not match its payload.
    ChecksumMismatch,
    /// The frame's protocol version is not one this endpoint speaks.
    UnsupportedVersion {
        /// The version found in the frame.
        found: u8,
    },
    /// The frame kind byte names no known request or response.
    UnknownKind {
        /// The unknown kind byte.
        kind: u8,
    },
    /// The declared frame length exceeds [`MAX_FRAME_LEN`]. The connection
    /// cannot resync past a length it refuses to read, so the server
    /// answers with an error frame and closes.
    ///
    /// [`MAX_FRAME_LEN`]: crate::protocol::MAX_FRAME_LEN
    FrameTooLarge {
        /// The declared length.
        len: u64,
    },
    /// The bytes parse at the frame level but violate the payload's
    /// structure (bad lengths, non-UTF-8 names, trailing bytes, …).
    Malformed {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A request named an index the registry does not hold.
    UnknownIndex {
        /// The name the request carried.
        name: String,
    },
    /// A query's coordinate count does not match the index.
    DimMismatch {
        /// The index's dimensionality.
        expected: u32,
        /// The query's coordinate count.
        found: u32,
    },
    /// A structurally valid request with unusable contents (`k` or `ef` of
    /// zero, non-finite coordinates, …).
    BadRequest {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// Loading or validating a snapshot during registration or hot-swap
    /// failed.
    Snapshot(SnapshotError),
    /// The server answered with an error frame; `code` is the wire
    /// [`ErrorCode`] and `message` the server's rendering of its local
    /// [`ServeError`].
    Remote {
        /// The error code from the wire.
        code: ErrorCode,
        /// The server-side error message.
        message: String,
    },
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The batcher queue is full and the request was shed instead of
    /// queued. Overload is transient by definition: the request was
    /// refused *before* any work happened, so retrying after a backoff is
    /// always safe.
    Overloaded,
    /// The worker executing the request panicked. The panic was contained
    /// (queued neighbors still get answers, the dispatcher survives), but
    /// this request produced no result.
    WorkerPanicked,
}

impl ServeError {
    /// Whether a client may safely retry the operation that produced this
    /// error.
    ///
    /// Retryable errors are the *transient* ones — transport trouble
    /// (`Io`, `ConnectionClosed`, `Truncated`), refusal before work
    /// happened (`Overloaded`, `ShuttingDown`), a contained worker panic,
    /// and `Remote` frames whose [`ErrorCode`] says the same
    /// ([`ErrorCode::is_retryable`]). Everything else is deterministic —
    /// a malformed frame or an unknown index fails identically on every
    /// attempt, so retrying only wastes work.
    ///
    /// Queries are read-only, which is what makes "retry on transport
    /// failure" safe: an ambiguous outcome (the request may or may not
    /// have executed) cannot double-apply anything.
    pub fn is_retryable(&self) -> bool {
        match self {
            ServeError::Io(_)
            | ServeError::ConnectionClosed
            | ServeError::Truncated { .. }
            | ServeError::ShuttingDown
            | ServeError::Overloaded
            | ServeError::WorkerPanicked => true,
            ServeError::Remote { code, .. } => code.is_retryable(),
            _ => false,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::ConnectionClosed => write!(f, "connection closed by peer"),
            ServeError::Truncated { context } => {
                write!(f, "frame truncated while reading {context}")
            }
            ServeError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            ServeError::UnsupportedVersion { found } => {
                write!(f, "unsupported protocol version {found}")
            }
            ServeError::UnknownKind { kind } => write!(f, "unknown frame kind {kind}"),
            ServeError::FrameTooLarge { len } => {
                write!(f, "declared frame length {len} exceeds the frame limit")
            }
            ServeError::Malformed { reason } => write!(f, "malformed frame: {reason}"),
            ServeError::UnknownIndex { name } => write!(f, "unknown index {name:?}"),
            ServeError::DimMismatch { expected, found } => write!(
                f,
                "query has {found} coordinates, index stores {expected}-dimensional points"
            ),
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Overloaded => {
                write!(f, "server overloaded: request shed before queueing")
            }
            ServeError::WorkerPanicked => {
                write!(f, "worker panicked while executing the request")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

/// Helper for the protocol decoders.
pub(crate) fn malformed(reason: impl Into<String>) -> ServeError {
    ServeError::Malformed {
        reason: reason.into(),
    }
}

/// The stable error codes an error frame carries (`u16` on the wire; codes
/// are frozen forever, new failure modes append new codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Frame-level structural violation ([`ServeError::Malformed`] or
    /// [`ServeError::Truncated`]).
    Malformed,
    /// [`ServeError::ChecksumMismatch`].
    ChecksumMismatch,
    /// [`ServeError::UnsupportedVersion`].
    UnsupportedVersion,
    /// [`ServeError::UnknownKind`].
    UnknownKind,
    /// [`ServeError::FrameTooLarge`].
    FrameTooLarge,
    /// [`ServeError::UnknownIndex`].
    UnknownIndex,
    /// [`ServeError::DimMismatch`].
    DimMismatch,
    /// [`ServeError::BadRequest`].
    BadRequest,
    /// [`ServeError::ShuttingDown`].
    ShuttingDown,
    /// Anything else the server hit while handling the request (I/O,
    /// snapshot trouble during an admin operation, …).
    Internal,
    /// [`ServeError::Overloaded`] — the request was shed before queueing.
    /// Appended in wire revision 2 of the error table; older clients see
    /// an unknown code and treat it as fatal, which is safe (they just
    /// don't retry).
    Overloaded,
}

impl ErrorCode {
    /// The on-wire `u16` code.
    pub fn code(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::ChecksumMismatch => 2,
            ErrorCode::UnsupportedVersion => 3,
            ErrorCode::UnknownKind => 4,
            ErrorCode::FrameTooLarge => 5,
            ErrorCode::UnknownIndex => 6,
            ErrorCode::DimMismatch => 7,
            ErrorCode::BadRequest => 8,
            ErrorCode::ShuttingDown => 9,
            ErrorCode::Internal => 10,
            ErrorCode::Overloaded => 11,
        }
    }

    /// Decodes an on-wire code, `None` for unknown codes.
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::ChecksumMismatch,
            3 => ErrorCode::UnsupportedVersion,
            4 => ErrorCode::UnknownKind,
            5 => ErrorCode::FrameTooLarge,
            6 => ErrorCode::UnknownIndex,
            7 => ErrorCode::DimMismatch,
            8 => ErrorCode::BadRequest,
            9 => ErrorCode::ShuttingDown,
            10 => ErrorCode::Internal,
            11 => ErrorCode::Overloaded,
            _ => return None,
        })
    }

    /// Whether a client may safely retry after receiving this code in an
    /// error frame — the wire-level half of [`ServeError::is_retryable`].
    /// `Overloaded` and `ShuttingDown` are refusals before any work;
    /// `Internal` covers transient server-side trouble (a contained
    /// worker panic, an I/O hiccup) on a read-only request.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded | ErrorCode::ShuttingDown | ErrorCode::Internal
        )
    }

    /// The code a server reports for a given local error.
    pub fn for_error(err: &ServeError) -> Self {
        match err {
            ServeError::Truncated { .. } | ServeError::Malformed { .. } => ErrorCode::Malformed,
            ServeError::ChecksumMismatch => ErrorCode::ChecksumMismatch,
            ServeError::UnsupportedVersion { .. } => ErrorCode::UnsupportedVersion,
            ServeError::UnknownKind { .. } => ErrorCode::UnknownKind,
            ServeError::FrameTooLarge { .. } => ErrorCode::FrameTooLarge,
            ServeError::UnknownIndex { .. } => ErrorCode::UnknownIndex,
            ServeError::DimMismatch { .. } => ErrorCode::DimMismatch,
            ServeError::BadRequest { .. } => ErrorCode::BadRequest,
            ServeError::ShuttingDown => ErrorCode::ShuttingDown,
            ServeError::Overloaded => ErrorCode::Overloaded,
            // WorkerPanicked, Io, Snapshot, …: server-side trouble the
            // wire summarizes as Internal.
            _ => ErrorCode::Internal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_roundtrip_and_are_stable() {
        let all = [
            (ErrorCode::Malformed, 1),
            (ErrorCode::ChecksumMismatch, 2),
            (ErrorCode::UnsupportedVersion, 3),
            (ErrorCode::UnknownKind, 4),
            (ErrorCode::FrameTooLarge, 5),
            (ErrorCode::UnknownIndex, 6),
            (ErrorCode::DimMismatch, 7),
            (ErrorCode::BadRequest, 8),
            (ErrorCode::ShuttingDown, 9),
            (ErrorCode::Internal, 10),
            (ErrorCode::Overloaded, 11),
        ];
        for (code, wire) in all {
            assert_eq!(code.code(), wire);
            assert_eq!(ErrorCode::from_code(wire), Some(code));
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(12), None);
    }

    #[test]
    fn retryability_separates_transient_from_deterministic() {
        // Transient: refusal before work, transport trouble, contained
        // panics.
        for e in [
            ServeError::Overloaded,
            ServeError::ShuttingDown,
            ServeError::WorkerPanicked,
            ServeError::ConnectionClosed,
            ServeError::Io(std::io::Error::other("x")),
            ServeError::Truncated { context: "frame" },
            ServeError::Remote {
                code: ErrorCode::Overloaded,
                message: String::new(),
            },
            ServeError::Remote {
                code: ErrorCode::Internal,
                message: String::new(),
            },
        ] {
            assert!(e.is_retryable(), "{e} should be retryable");
        }
        // Deterministic: the same request fails the same way forever.
        for e in [
            ServeError::ChecksumMismatch,
            ServeError::UnknownIndex { name: "x".into() },
            ServeError::DimMismatch {
                expected: 2,
                found: 3,
            },
            ServeError::BadRequest {
                reason: "k=0".into(),
            },
            ServeError::Remote {
                code: ErrorCode::BadRequest,
                message: String::new(),
            },
        ] {
            assert!(!e.is_retryable(), "{e} should be fatal");
        }
    }

    #[test]
    fn overloaded_maps_to_its_appended_wire_code() {
        assert_eq!(
            ErrorCode::for_error(&ServeError::Overloaded),
            ErrorCode::Overloaded
        );
        assert_eq!(
            ErrorCode::for_error(&ServeError::WorkerPanicked),
            ErrorCode::Internal
        );
        assert_eq!(ErrorCode::Overloaded.code(), 11);
    }

    #[test]
    fn every_error_maps_to_a_code() {
        assert_eq!(
            ErrorCode::for_error(&ServeError::ChecksumMismatch),
            ErrorCode::ChecksumMismatch
        );
        assert_eq!(
            ErrorCode::for_error(&ServeError::UnknownIndex { name: "x".into() }),
            ErrorCode::UnknownIndex
        );
        assert_eq!(
            ErrorCode::for_error(&ServeError::DimMismatch {
                expected: 2,
                found: 3
            }),
            ErrorCode::DimMismatch
        );
        assert_eq!(
            ErrorCode::for_error(&ServeError::Io(std::io::Error::other("x"))),
            ErrorCode::Internal
        );
    }

    #[test]
    fn display_is_informative() {
        let e = ServeError::DimMismatch {
            expected: 8,
            found: 3,
        };
        assert!(e.to_string().contains('8'));
        assert!(e.to_string().contains('3'));
        let e = ServeError::UnknownIndex {
            name: "tenant-a".into(),
        };
        assert!(e.to_string().contains("tenant-a"));
    }
}
