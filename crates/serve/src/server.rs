//! The TCP server: accept loop, connection threads, request handling.
//!
//! One thread accepts connections; each connection gets its own handler
//! thread that reads frames, dispatches requests, and writes responses.
//! Query execution is shared: with batching on (the default), handler
//! threads enqueue into the [`Batcher`] and concurrent queries coalesce
//! into micro-batches; with batching off, each handler calls the engine
//! directly. Both paths produce structurally identical responses.
//!
//! # Error discipline
//!
//! A malformed request must cost its sender an error frame, not the
//! connection, and never the server. Recoverable failures — a checksum
//! mismatch, an unknown kind, a bad payload, an unknown index — are
//! answered with [`Response::Error`] and the connection keeps serving
//! (pinned by `tests/corruption.rs`). Only two conditions close a
//! connection: the peer going away, and a declared frame length over
//! [`MAX_FRAME_LEN`] — past a refused
//! length the stream cannot be resynchronized, so the server sends a final
//! error frame and hangs up. Handler threads never panic on input; a
//! handler that did panic would take down one connection, not the process.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pg_metric::FlatRow;

use crate::batcher::{run_protected, Batcher, BatcherStats};
use crate::error::ServeError;
use crate::protocol::{
    decode_request, encode_response, error_response, write_frame, IndexInfo, Request, Response,
    LEN_PREFIX, MAX_FRAME_LEN, MIN_FRAME_LEN,
};
use crate::registry::IndexRegistry;
use crate::sites;

/// How long a blocked read waits before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Route queries through the micro-batcher (default) or run each one
    /// directly on its connection thread. `exp_serve` measures the two
    /// against each other; correctness is identical either way.
    pub batching: bool,
    /// Largest number of queued queries one dispatch may coalesce.
    pub max_batch: usize,
    /// Largest number of queries that may wait in the batcher queue at
    /// once (default 1024). A request that would exceed it is refused
    /// with an `Overloaded` error frame instead of queueing without bound
    /// — load shedding keeps latency and memory bounded under overload.
    /// `0` sheds every batched query (lame-duck mode). Ignored when
    /// `batching` is off: the unbatched path has no queue, its natural
    /// bound is one in-flight query per connection.
    pub max_queue: usize,
    /// How long a response write may block before the peer is declared
    /// slow and disconnected (default 5 s). A peer that stops reading
    /// otherwise pins a connection thread (and its kernel send buffer)
    /// forever. `Duration::ZERO` disables the timeout.
    pub write_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batching: true,
            max_batch: 256,
            max_queue: 1024,
            write_timeout: Duration::from_secs(5),
        }
    }
}

#[derive(Debug)]
struct ServerShared {
    registry: Arc<IndexRegistry>,
    batcher: Option<Batcher>,
    shutdown: AtomicBool,
    write_timeout: Duration,
}

/// A running server: an accept thread plus one handler thread per live
/// connection. Dropping the server (or calling [`Server::shutdown`]) stops
/// accepting, unblocks every handler, and joins all threads.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`Server::local_addr`]) and starts serving the registry's indexes.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<IndexRegistry>,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Non-blocking accept so the loop can observe shutdown without a
        // wake-up connection.
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ServerShared {
            registry,
            batcher: config
                .batching
                .then(|| Batcher::start(config.max_batch, config.max_queue)),
            shutdown: AtomicBool::new(false),
            write_timeout: config.write_timeout,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("pg-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server {
            addr: local,
            shared,
            accept: Some(accept),
        })
    }

    /// The address the server is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server routes against — hot-swaps through it take
    /// effect on live traffic immediately.
    pub fn registry(&self) -> &Arc<IndexRegistry> {
        &self.shared.registry
    }

    /// Coalescing counters (all zero when batching is off).
    pub fn stats(&self) -> BatcherStats {
        self.shared
            .batcher
            .as_ref()
            .map(Batcher::stats)
            .unwrap_or_default()
    }

    /// Stops accepting, drains in-flight work, and joins every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("pg-serve-conn".into())
                    .spawn(move || handle_connection(stream, &conn_shared))
                {
                    handlers.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            // Transient accept errors (e.g. a connection reset before
            // accept) don't stop the server.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
        handlers.retain(|h| !h.is_finished());
    }
    // Handler threads observe the flag at their next read poll.
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Reads one frame, polling the shutdown flag between timeouts.
/// Returns `ShuttingDown` when the server is stopping, `ConnectionClosed`
/// on clean EOF at a frame boundary, and `Truncated` on EOF mid-frame.
fn read_frame_polling(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> Result<Vec<u8>, ServeError> {
    crate::failpoint(sites::CONN_READ)?;
    let mut frame = vec![0u8; LEN_PREFIX];
    let mut filled = 0usize;
    loop {
        // Once the length prefix is in, resize for the declared remainder.
        if filled == LEN_PREFIX {
            let frame_len = u32::from_le_bytes(frame[..LEN_PREFIX].try_into().unwrap());
            if frame_len < MIN_FRAME_LEN {
                return Err(ServeError::Malformed {
                    reason: format!(
                        "declared frame length {frame_len} is below the {MIN_FRAME_LEN}-byte minimum"
                    ),
                });
            }
            if frame_len > MAX_FRAME_LEN {
                return Err(ServeError::FrameTooLarge {
                    len: frame_len as u64,
                });
            }
            frame.resize(LEN_PREFIX + frame_len as usize, 0);
        }
        if filled == frame.len() {
            return Ok(frame);
        }
        match stream.read(&mut frame[filled..]) {
            Ok(0) if filled == 0 => return Err(ServeError::ConnectionClosed),
            Ok(0) => {
                return Err(ServeError::Truncated {
                    context: "frame payload",
                })
            }
            Ok(got) => filled += got,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Err(ServeError::ShuttingDown);
                }
            }
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    // A peer that stops reading must not pin this thread forever: once the
    // kernel send buffer fills, a write blocks until the timeout, then the
    // slow peer is disconnected (`write_response` fails, the loop returns).
    if shared.write_timeout != Duration::ZERO
        && stream
            .set_write_timeout(Some(shared.write_timeout))
            .is_err()
    {
        return;
    }
    loop {
        let response = match read_frame_polling(&mut stream, &shared.shutdown) {
            Ok(frame) => match decode_request(&frame) {
                Ok(request) => handle_request(request, shared),
                // A complete frame that fails decoding is answerable: the
                // length prefix kept the stream in sync.
                Err(err) => error_response(&err),
            },
            // Clean close, mid-frame death, or a socket error: nothing
            // useful can be written back.
            Err(ServeError::ConnectionClosed)
            | Err(ServeError::Truncated { .. })
            | Err(ServeError::Io(_)) => return,
            // Shutdown, an over-limit length, or a length below the
            // minimum: the stream cannot be resynced (or the server is
            // stopping), so send a best-effort final error frame and close.
            Err(err) => {
                let _ = write_response(&mut stream, &error_response(&err));
                return;
            }
        };
        if write_response(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Writes one response frame, with the `serve.conn.write` failpoint ahead
/// of the socket write. Any failure — injected, a real socket error, or a
/// write timeout on a slow peer — disconnects.
fn write_response(stream: &mut TcpStream, response: &Response) -> Result<(), ServeError> {
    crate::failpoint(sites::CONN_WRITE)?;
    write_frame(stream, &encode_response(response))?;
    Ok(())
}

fn handle_request(request: Request, shared: &Arc<ServerShared>) -> Response {
    match try_handle(request, shared) {
        Ok(response) => response,
        Err(err) => error_response(&err),
    }
}

fn try_handle(request: Request, shared: &Arc<ServerShared>) -> Result<Response, ServeError> {
    match request {
        Request::Ping => Ok(Response::Pong),
        Request::ListIndexes => Ok(Response::IndexList(shared.registry.names())),
        Request::Info { index } => {
            let serving = shared
                .registry
                .get(&index)
                .ok_or(ServeError::UnknownIndex { name: index })?;
            Ok(Response::Info(IndexInfo {
                epoch: serving.epoch(),
                n: serving.len() as u64,
                dims: serving.dims() as u32,
                metric_code: serving.metric().code(),
                entry_point: serving.entry(),
            }))
        }
        Request::Query {
            index,
            ef,
            k,
            coords,
        } => {
            if k == 0 || ef == 0 {
                return Err(ServeError::BadRequest {
                    reason: format!("ef and k must be at least 1 (got ef = {ef}, k = {k})"),
                });
            }
            if let Some(bad) = coords.iter().find(|c| !c.is_finite()) {
                return Err(ServeError::BadRequest {
                    reason: format!("query coordinates must be finite (got {bad})"),
                });
            }
            let serving = shared
                .registry
                .get(&index)
                .ok_or(ServeError::UnknownIndex { name: index })?;
            if coords.len() != serving.dims() {
                return Err(ServeError::DimMismatch {
                    expected: serving.dims() as u32,
                    found: coords.len() as u32,
                });
            }
            let query = FlatRow::from(coords);
            let reply = match &shared.batcher {
                Some(batcher) => batcher.run(serving, query, ef, k)?,
                None => run_protected(&serving, query, ef, k)?,
            };
            Ok(Response::Query(reply))
        }
    }
}
