//! A blocking client for the serving protocol.
//!
//! One [`Client`] wraps one TCP connection and speaks strict
//! request/response: encode a frame, write it, read exactly one frame
//! back. Error frames from the server come back as
//! [`ServeError::Remote`] with the wire [`ErrorCode`](crate::error::ErrorCode)
//! and the server's message — the connection stays usable afterwards
//! (unless the error was a framing failure the server had to close on).

use std::net::{TcpStream, ToSocketAddrs};

use crate::error::{malformed, ServeError};
use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, IndexInfo, QueryReply, Request,
    Response,
};

/// A connected client. Not thread-safe by design — one connection carries
/// one request at a time; open more clients for concurrency (that is what
/// makes the server's micro-batching observable in the first place).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a serving endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends a pre-encoded frame and decodes the response frame — the raw
    /// escape hatch the corruption tests use to put arbitrary bytes on the
    /// wire and observe the server's typed reaction.
    pub fn call_raw(&mut self, frame: &[u8]) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, frame)?;
        let reply = read_frame(&mut self.stream)?;
        decode_response(&reply)
    }

    /// Sends one request and returns the server's response, mapping error
    /// frames to [`ServeError::Remote`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        match self.call_raw(&encode_request(request))? {
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            response => Ok(response),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Runs one `k`-NN query against the named index.
    pub fn query(
        &mut self,
        index: &str,
        coords: &[f64],
        ef: u32,
        k: u32,
    ) -> Result<QueryReply, ServeError> {
        let request = Request::Query {
            index: index.into(),
            ef,
            k,
            coords: coords.to_vec(),
        };
        match self.call(&request)? {
            Response::Query(reply) => Ok(reply),
            other => Err(unexpected("QueryOk", &other)),
        }
    }

    /// Fetches metadata for the named index.
    pub fn info(&mut self, index: &str) -> Result<IndexInfo, ServeError> {
        let request = Request::Info {
            index: index.into(),
        };
        match self.call(&request)? {
            Response::Info(info) => Ok(info),
            other => Err(unexpected("InfoOk", &other)),
        }
    }

    /// Lists the registered index names (sorted).
    pub fn list(&mut self) -> Result<Vec<String>, ServeError> {
        match self.call(&Request::ListIndexes)? {
            Response::IndexList(names) => Ok(names),
            other => Err(unexpected("IndexList", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServeError {
    malformed(format!("expected a {wanted} response, got {got:?}"))
}
