//! A blocking client for the serving protocol.
//!
//! One [`Client`] wraps one TCP connection and speaks strict
//! request/response: encode a frame, write it, read exactly one frame
//! back. Error frames from the server come back as
//! [`ServeError::Remote`] with the wire [`ErrorCode`](crate::error::ErrorCode)
//! and the server's message — the connection stays usable afterwards
//! (unless the error was a framing failure the server had to close on).
//!
//! [`RetryingClient`] wraps the same operations in a typed retry loop:
//! errors classified transient by [`ServeError::is_retryable`] (transport
//! failures, `Overloaded` shedding, a contained worker panic) are retried
//! up to [`RetryPolicy::max_retries`] times with a deterministic capped
//! exponential backoff, reconnecting when the transport itself failed;
//! deterministic errors (bad request, unknown index) surface immediately.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::error::{malformed, ServeError};
use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, IndexInfo, QueryReply, Request,
    Response,
};

/// A connected client. Not thread-safe by design — one connection carries
/// one request at a time; open more clients for concurrency (that is what
/// makes the server's micro-batching observable in the first place).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a serving endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends a pre-encoded frame and decodes the response frame — the raw
    /// escape hatch the corruption tests use to put arbitrary bytes on the
    /// wire and observe the server's typed reaction.
    pub fn call_raw(&mut self, frame: &[u8]) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, frame)?;
        let reply = read_frame(&mut self.stream)?;
        decode_response(&reply)
    }

    /// Sends one request and returns the server's response, mapping error
    /// frames to [`ServeError::Remote`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        match self.call_raw(&encode_request(request))? {
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            response => Ok(response),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Runs one `k`-NN query against the named index.
    pub fn query(
        &mut self,
        index: &str,
        coords: &[f64],
        ef: u32,
        k: u32,
    ) -> Result<QueryReply, ServeError> {
        let request = Request::Query {
            index: index.into(),
            ef,
            k,
            coords: coords.to_vec(),
        };
        match self.call(&request)? {
            Response::Query(reply) => Ok(reply),
            other => Err(unexpected("QueryOk", &other)),
        }
    }

    /// Fetches metadata for the named index.
    pub fn info(&mut self, index: &str) -> Result<IndexInfo, ServeError> {
        let request = Request::Info {
            index: index.into(),
        };
        match self.call(&request)? {
            Response::Info(info) => Ok(info),
            other => Err(unexpected("InfoOk", &other)),
        }
    }

    /// Lists the registered index names (sorted).
    pub fn list(&mut self) -> Result<Vec<String>, ServeError> {
        match self.call(&Request::ListIndexes)? {
            Response::IndexList(names) => Ok(names),
            other => Err(unexpected("IndexList", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServeError {
    malformed(format!("expected a {wanted} response, got {got:?}"))
}

/// A deterministic retry schedule: how many retries, and a capped
/// exponential backoff between attempts. No jitter by design — the
/// workspace's reproducibility discipline extends to failure handling,
/// and the cap plays the role jitter usually does (bounding synchronized
/// retry bursts) at the scale served here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts
    /// total).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff_start: Duration,
    /// Upper bound the doubling never exceeds.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_start: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based):
    /// `min(backoff_start · 2^attempt, backoff_cap)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doubled = self.backoff_start.saturating_mul(1u32 << attempt.min(16));
        doubled.min(self.backoff_cap)
    }
}

/// A [`Client`] wrapped in the [`RetryPolicy`] loop, reconnecting as
/// needed.
///
/// Retrying is safe because every serving operation is a read-only query:
/// an ambiguous outcome (the connection died after the request may have
/// executed) cannot double-apply anything, so transport failures simply
/// retry. Errors that are deterministic — malformed requests, unknown
/// indexes, dimension mismatches — fail fast on the first attempt.
///
/// The connection is lazy: nothing is dialed until the first operation,
/// and a transport-level failure drops the connection so the next attempt
/// redials (the server may have restarted, or this connection may be the
/// one a slow-writer disconnect severed).
#[derive(Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    conn: Option<Client>,
    retries: u64,
}

impl RetryingClient {
    /// Creates a retrying client for `addr` (resolved once, here). No
    /// connection is made until the first operation.
    pub fn connect(addr: impl ToSocketAddrs, policy: RetryPolicy) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        Ok(RetryingClient {
            addr,
            policy,
            conn: None,
            retries: 0,
        })
    }

    /// Total retries performed over this client's lifetime (attempts
    /// beyond the first, across all operations) — how tests and
    /// `exp_serve` observe that recovery actually exercised the loop.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The retry loop shared by every operation.
    fn with_retry<T>(
        &mut self,
        op: impl Fn(&mut Client) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let mut attempt = 0u32;
        loop {
            let result = match self.conn.as_mut() {
                Some(client) => op(client),
                None => match Client::connect(self.addr) {
                    Ok(mut client) => {
                        let result = op(&mut client);
                        self.conn = Some(client);
                        result
                    }
                    Err(e) => Err(ServeError::Io(e)),
                },
            };
            match result {
                Ok(value) => return Ok(value),
                Err(err) if err.is_retryable() && attempt < self.policy.max_retries => {
                    if transport_failed(&err) {
                        // The stream may hold half a frame; redial rather
                        // than resync.
                        self.conn = None;
                    }
                    std::thread::sleep(self.policy.backoff(attempt));
                    attempt += 1;
                    self.retries += 1;
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// [`Client::ping`] with retries.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.with_retry(|c| c.ping())
    }

    /// [`Client::query`] with retries.
    pub fn query(
        &mut self,
        index: &str,
        coords: &[f64],
        ef: u32,
        k: u32,
    ) -> Result<QueryReply, ServeError> {
        self.with_retry(|c| c.query(index, coords, ef, k))
    }

    /// [`Client::info`] with retries.
    pub fn info(&mut self, index: &str) -> Result<IndexInfo, ServeError> {
        self.with_retry(|c| c.info(index))
    }

    /// [`Client::list`] with retries.
    pub fn list(&mut self) -> Result<Vec<String>, ServeError> {
        self.with_retry(|c| c.list())
    }
}

/// Whether the error means the *connection* (not the request) is suspect,
/// so the retry should redial instead of reusing the stream.
fn transport_failed(err: &ServeError) -> bool {
    matches!(
        err,
        ServeError::Io(_) | ServeError::ConnectionClosed | ServeError::Truncated { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let policy = RetryPolicy {
            max_retries: 10,
            backoff_start: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(70),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(10));
        assert_eq!(policy.backoff(1), Duration::from_millis(20));
        assert_eq!(policy.backoff(2), Duration::from_millis(40));
        assert_eq!(policy.backoff(3), Duration::from_millis(70));
        assert_eq!(policy.backoff(30), Duration::from_millis(70), "cap holds");
    }

    #[test]
    fn fatal_errors_do_not_retry_and_connect_is_lazy() {
        // Nothing listens on this port-0-adjacent address; connect() must
        // still succeed because dialing is deferred to the first call.
        let mut client =
            RetryingClient::connect("127.0.0.1:1", RetryPolicy::default()).expect("lazy connect");
        assert_eq!(client.retries(), 0);
        // Exhausting retries against a dead endpoint counts each attempt.
        let err = client.ping().expect_err("nothing is listening");
        assert!(err.is_retryable(), "refused connections are transient");
        assert_eq!(client.retries(), RetryPolicy::default().max_retries as u64);
    }
}
