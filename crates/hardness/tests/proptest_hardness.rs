//! Property tests for the hard instances: metric axioms at random
//! parameters, the exact distance formulas of Sections 3–4, and the
//! adversary's win condition.

use pg_core::Graph;
use pg_hardness::{BlockInstance, Leaf, TreeInstance, TreeMetric};
use pg_metric::metric::axioms;
use pg_metric::Metric;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_metric_axioms(h in 2u32..16, a in 0u64..65536, b in 0u64..65536, c in 0u64..65536) {
        let m = TreeMetric { h };
        let mask = (1u64 << h) - 1;
        let (a, b, c) = (Leaf(a & mask), Leaf(b & mask), Leaf(c & mask));
        prop_assert!(axioms::zero_self(&m, &a));
        prop_assert!(axioms::symmetric(&m, &a, &b));
        prop_assert!(axioms::triangle(&m, &a, &b, &c));
    }

    #[test]
    fn tree_metric_is_an_ultrametric(h in 2u32..16, a in 0u64..65536, b in 0u64..65536, c in 0u64..65536) {
        // Stronger than the triangle inequality: D(a,b) <= max(D(a,c), D(b,c)).
        let m = TreeMetric { h };
        let mask = (1u64 << h) - 1;
        let (a, b, c) = (Leaf(a & mask), Leaf(b & mask), Leaf(c & mask));
        prop_assert!(m.dist(&a, &b) <= m.dist(&a, &c).max(m.dist(&b, &c)) + 1e-9);
    }

    #[test]
    fn tree_distances_are_powers_of_two(h in 2u32..16, a in 0u64..65536, b in 0u64..65536) {
        let m = TreeMetric { h };
        let mask = (1u64 << h) - 1;
        let d = m.dist(&Leaf(a & mask), &Leaf(b & mask));
        if d > 0.0 {
            prop_assert!(d.log2().fract().abs() < 1e-12, "distance {d} not a power of two");
            prop_assert!(d >= 2.0 && d <= (2.0f64).powi(h as i32));
        }
    }

    #[test]
    fn block_instance_shape(s in 2u32..5, d in 1u32..4, t in 1u32..4) {
        prop_assume!((s as u64).pow(d) * t as u64 <= 300);
        let inst = BlockInstance::new(s, d, t);
        prop_assert_eq!(inst.n() as u64, (s as u64).pow(d) * t as u64);
        // Every intra-block distance < s; every inter-block distance >= s+1.
        let ds = inst.data_dataset();
        for i in 0..inst.n() {
            for j in 0..inst.n() {
                if i == j { continue; }
                let dd = ds.dist(i, j);
                if inst.block_of(i) == inst.block_of(j) {
                    prop_assert!(dd <= (s - 1) as f64);
                } else {
                    prop_assert!(dd >= (s + 1) as f64);
                }
            }
        }
    }

    #[test]
    fn adversary_wins_on_random_missing_edge(
        sel in 0usize..10_000,
    ) {
        let inst = BlockInstance::new(2, 2, 3);
        let edges: Vec<(u32, u32)> = inst.required_edges().collect();
        let (p1, p2) = edges[sel % edges.len()];
        let broken = Graph::complete(inst.n()).without_edge(p1, p2);
        let viol = inst.adversary_violation(&broken, p1, p2);
        prop_assert!(viol.is_some());
        prop_assert_eq!(viol.unwrap().point, p1);
    }

    #[test]
    fn tree_adversary_wins_on_random_missing_edge(sel in 0usize..10_000) {
        let inst = TreeInstance::new(8, 32);
        let edges: Vec<(u32, u32)> = inst.required_edges().collect();
        let (v1, v2) = edges[sel % edges.len()];
        let broken = Graph::complete(inst.len()).without_edge(v1, v2);
        prop_assert!(inst.adversary_violation(&broken, v1, v2).is_some());
    }

    #[test]
    fn aspect_ratio_is_o_of_n(s in 2u32..5, t in 1u32..6) {
        // Section 4: the aspect ratio of P is less than 2st = O(n).
        let inst = BlockInstance::new(s, 2, t);
        prop_assert!(inst.aspect_ratio() < 2.0 * s as f64 * t as f64);
    }
}
