//! Hard instances for the lower bounds of Theorem 1.2, executable.
//!
//! * [`tree`] — Section 3 / Figure 1: a weighted complete binary tree whose
//!   leaves form a metric space of doubling dimension 1; the point set
//!   `P = P1 ∪ P2` forces any 2-PG to contain all of `P1 × P2`, i.e.
//!   `Ω(n log Δ)` edges, **regardless of query time**.
//! * [`block`] — Section 4 / Figure 2: `t` translated blocks of the integer
//!   grid `(Z_s)^d` under `L_∞`, plus an adversarial query point `q` whose
//!   distances (the family `D = {D_{p*}}`, Eq. 16) are finalized only after
//!   the graph is built; any `(1 + 1/(2s))`-PG must contain every ordered
//!   intra-block pair, i.e. `Ω(s^d · n)` edges.
//!
//! Both modules provide *verifiers* that turn the paper's proofs into
//! executable checks: give them a graph that is missing a required edge and
//! they exhibit the navigability violation the proof predicts.
//!
//! Where this crate sits in the workspace is mapped in `ARCHITECTURE.md`
//! at the repository root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod block;
pub mod tree;

pub use block::{AdversarialMetric, BPoint, BlockInstance, LInfInt};
pub use tree::{Leaf, TreeInstance, TreeMetric};
