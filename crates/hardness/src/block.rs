//! The Section 4 hard instance (Figure 2): translated integer blocks under
//! `L_∞` with an adversarially defined query point, forcing `Ω(s^d · n)`
//! edges in any `(1 + 1/(2s))`-PG.
//!
//! The data set is `P = ⋃_{w ∈ W} M_w` where `M = (Z_s)^d` and `W` places
//! `t` copies along the first axis at multiples of `2s` (Eq. 14–15). The
//! ambient space contains one extra *non-Euclidean* point `q`; its distance
//! function `D_{p*}` (one per possible choice of `p* ∈ P`, Eq. 16) is:
//!
//! * `D(p_1, p_2) = L_∞(p_1, p_2)` for data points;
//! * `D(p, q) = L_∞(p, w*)` when `p` is outside `p*`'s block;
//! * `D(p, q) = s` when `p` is in `p*`'s block, `p != p*`;
//! * `D(p*, q) = s - 1`.
//!
//! The adversary ("Alice") inspects the finished graph; if any ordered
//! intra-block pair `(p_1, p_2)` is missing, she sets `p* = p_2`, making
//! `p_1` a stuck point for query `q` — so every `(1+ε)`-PG with
//! `ε = 1/(2s)` contains all `s^d (s^d - 1) t` such pairs.

use pg_core::navigability::{check_navigable, Violation};
use pg_core::Graph;
use pg_metric::{Dataset, Metric};

/// `L_∞` on integer coordinate vectors (the data-to-data metric the
/// construction algorithm is allowed to see).
#[derive(Debug, Clone, Copy, Default)]
pub struct LInfInt;

impl Metric<Vec<i64>> for LInfInt {
    #[inline]
    fn dist(&self, a: &Vec<i64>, b: &Vec<i64>) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).unsigned_abs())
            .max()
            .unwrap_or(0) as f64
    }
}

/// A point of the extended space `M = P ∪ {q}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BPoint {
    /// A data point (integer coordinates).
    Data(Vec<i64>),
    /// The adversarial non-Euclidean query point `q`.
    Query,
}

/// The metric `D_{p*}` of Eq. (16), for one committed choice of `p*`.
///
/// Satisfies all metric axioms (Lemma 4.1, checked by property tests) and
/// has doubling dimension at most `log(1 + 2^d)`.
#[derive(Debug, Clone)]
pub struct AdversarialMetric {
    s: i64,
    p_star: Vec<i64>,
    /// The block anchor `w*` of `p*`'s block.
    w_star: Vec<i64>,
}

impl AdversarialMetric {
    /// Creates `D_{p*}`. `w_star` is derived from `p_star` (its first
    /// coordinate rounded down to a multiple of `2s`, zeros elsewhere).
    pub fn new(s: i64, p_star: Vec<i64>) -> Self {
        assert!(s >= 2);
        let mut w_star = vec![0i64; p_star.len()];
        w_star[0] = (p_star[0] / (2 * s)) * (2 * s);
        AdversarialMetric { s, p_star, w_star }
    }

    fn same_block_as_star(&self, p: &[i64]) -> bool {
        p[0] / (2 * self.s) == self.p_star[0] / (2 * self.s)
    }
}

impl Metric<BPoint> for AdversarialMetric {
    fn dist(&self, a: &BPoint, b: &BPoint) -> f64 {
        match (a, b) {
            (BPoint::Data(p1), BPoint::Data(p2)) => LInfInt.dist(p1, p2),
            (BPoint::Query, BPoint::Query) => 0.0,
            (BPoint::Data(p), BPoint::Query) | (BPoint::Query, BPoint::Data(p)) => {
                if !self.same_block_as_star(p) {
                    LInfInt.dist(p, &self.w_star)
                } else if p == &self.p_star {
                    (self.s - 1) as f64
                } else {
                    self.s as f64
                }
            }
        }
    }
}

/// The Section 4 hard instance with parameters `s >= 2`, `d >= 1`, `t >= 1`.
#[derive(Debug, Clone)]
pub struct BlockInstance {
    /// Grid side `s` (the lower bound holds for `ε = 1/(2s)`).
    pub s: u32,
    /// Grid dimension `d`.
    pub d: u32,
    /// Number of translated blocks `t`.
    pub t: u32,
    /// All `n = s^d * t` data points, block-major order.
    pub points: Vec<Vec<i64>>,
}

impl BlockInstance {
    /// Builds the instance `P = ⋃_w M_w`.
    pub fn new(s: u32, d: u32, t: u32) -> Self {
        assert!(s >= 2, "need s >= 2");
        assert!(d >= 1, "need d >= 1");
        assert!(t >= 1, "need t >= 1");
        let block_size = (s as u64).pow(d);
        assert!(
            block_size * t as u64 <= 1_000_000,
            "instance too large: s^d * t = {}",
            block_size * t as u64
        );
        let mut points = Vec::with_capacity((block_size * t as u64) as usize);
        for w in 0..t as i64 {
            let shift = w * 2 * s as i64;
            // Enumerate (Z_s)^d lexicographically.
            let mut coords = vec![0i64; d as usize];
            loop {
                let mut p = coords.clone();
                p[0] += shift;
                points.push(p);
                let mut carry = true;
                for c in coords.iter_mut() {
                    if carry {
                        *c += 1;
                        if *c == s as i64 {
                            *c = 0;
                        } else {
                            carry = false;
                        }
                    }
                }
                if carry {
                    break;
                }
            }
        }
        BlockInstance { s, d, t, points }
    }

    /// Number of data points `n = s^d * t`.
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// The `ε` for which the lower bound is stated: `1/(2s)`.
    pub fn epsilon(&self) -> f64 {
        1.0 / (2.0 * self.s as f64)
    }

    /// Block index of data point `idx`.
    pub fn block_of(&self, idx: usize) -> usize {
        (self.points[idx][0] / (2 * self.s as i64)) as usize
    }

    /// The dataset under the data-visible metric `L_∞` — all a construction
    /// algorithm is permitted to evaluate.
    pub fn data_dataset(&self) -> Dataset<Vec<i64>, LInfInt> {
        Dataset::new(self.points.clone(), LInfInt)
    }

    /// The extended dataset under `D_{p*}` for a committed `p*` (dataset
    /// id). Point ids are unchanged; the query point `q` is
    /// [`BPoint::Query`], passed separately to the navigability checker.
    pub fn adversarial_dataset(&self, p_star: usize) -> Dataset<BPoint, AdversarialMetric> {
        let metric = AdversarialMetric::new(self.s as i64, self.points[p_star].clone());
        let pts = self.points.iter().cloned().map(BPoint::Data).collect();
        Dataset::new(pts, metric)
    }

    /// Number of edges every `(1 + 1/(2s))`-PG must contain:
    /// `s^d (s^d - 1) t = Ω(s^d · n)`.
    pub fn required_edge_count(&self) -> u64 {
        let b = (self.s as u64).pow(self.d);
        b * (b - 1) * self.t as u64
    }

    /// All required (ordered, intra-block) edges as dataset-id pairs.
    pub fn required_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let b = (self.s as usize).pow(self.d);
        let t = self.t as usize;
        (0..t).flat_map(move |blk| {
            let base = blk * b;
            (0..b).flat_map(move |i| {
                (0..b)
                    .filter(move |&j| j != i)
                    .map(move |j| ((base + i) as u32, (base + j) as u32))
            })
        })
    }

    /// First missing intra-block edge, if any.
    pub fn find_missing_required_edge(&self, graph: &Graph) -> Option<(u32, u32)> {
        self.required_edges().find(|&(a, b)| !graph.has_edge(a, b))
    }

    /// Executes Alice's move: given that `graph` misses the intra-block edge
    /// `(p1, p2)`, commits `p* = p2` and returns the navigability violation
    /// at `p1` for query `q` that the proof of Section 4 predicts.
    pub fn adversary_violation(&self, graph: &Graph, p1: u32, p2: u32) -> Option<Violation> {
        assert_eq!(
            self.block_of(p1 as usize),
            self.block_of(p2 as usize),
            "adversary needs an intra-block pair"
        );
        let data = self.adversarial_dataset(p2 as usize);
        check_navigable(graph, &data, &[BPoint::Query], self.epsilon()).err()
    }

    /// Exact aspect ratio of `P` under `L_∞`: diameter `2s(t-1) + s - 1`,
    /// minimum distance 1. `O(n)` as the paper notes.
    pub fn aspect_ratio(&self) -> f64 {
        (2 * self.s as i64 * (self.t as i64 - 1) + self.s as i64 - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::metric::axioms;

    #[test]
    fn instance_shape() {
        let inst = BlockInstance::new(3, 2, 4);
        assert_eq!(inst.n(), 9 * 4);
        assert_eq!(inst.required_edge_count(), (9 * 8 * 4) as u64);
        assert_eq!(inst.epsilon(), 1.0 / 6.0);
        // Block anchors at multiples of 2s = 6 on the first axis.
        assert_eq!(inst.block_of(0), 0);
        assert_eq!(inst.block_of(9), 1);
        assert_eq!(inst.block_of(35), 3);
    }

    #[test]
    fn inter_block_gap_is_at_least_s_plus_one() {
        let inst = BlockInstance::new(3, 2, 3);
        let ds = inst.data_dataset();
        for i in 0..inst.n() {
            for j in 0..inst.n() {
                if i != j && inst.block_of(i) != inst.block_of(j) {
                    assert!(ds.dist(i, j) >= (inst.s + 1) as f64);
                }
            }
        }
    }

    #[test]
    fn aspect_ratio_matches_formula() {
        let inst = BlockInstance::new(2, 2, 3);
        let ds = inst.data_dataset();
        let (dmin, dmax) = ds.min_max_interpoint();
        assert_eq!(dmin, 1.0);
        assert_eq!(dmax, inst.aspect_ratio());
    }

    #[test]
    fn adversarial_metric_axioms_hold_for_every_p_star() {
        // Lemma 4.1 (triangle inequality etc.), executed.
        let inst = BlockInstance::new(2, 2, 2);
        for p_star in 0..inst.n() {
            let ds = inst.adversarial_dataset(p_star);
            let mut pts: Vec<BPoint> = ds.points().to_vec();
            pts.push(BPoint::Query);
            axioms::check_all(ds.metric(), &pts).unwrap();
        }
    }

    #[test]
    fn query_distances_follow_equation_16() {
        let inst = BlockInstance::new(3, 1, 2); // blocks {0,1,2} and {6,7,8}
        let ds = inst.adversarial_dataset(4); // p* = 7 (block 1)
        let q = BPoint::Query;
        // p* itself: s - 1 = 2.
        assert_eq!(ds.metric().dist(&BPoint::Data(vec![7]), &q), 2.0);
        // Same block, not p*: s = 3.
        assert_eq!(ds.metric().dist(&BPoint::Data(vec![6]), &q), 3.0);
        assert_eq!(ds.metric().dist(&BPoint::Data(vec![8]), &q), 3.0);
        // Other block: L_inf to w* = (6): 6, 5, 4.
        assert_eq!(ds.metric().dist(&BPoint::Data(vec![0]), &q), 6.0);
        assert_eq!(ds.metric().dist(&BPoint::Data(vec![2]), &q), 4.0);
    }

    #[test]
    fn complete_graph_survives_alice() {
        let inst = BlockInstance::new(2, 2, 2);
        let g = Graph::complete(inst.n());
        assert_eq!(inst.find_missing_required_edge(&g), None);
        // And it is navigable under every D_{p*}.
        for p_star in 0..inst.n() {
            let ds = inst.adversarial_dataset(p_star);
            check_navigable(&g, &ds, &[BPoint::Query], inst.epsilon()).unwrap();
        }
    }

    #[test]
    fn removing_any_intra_block_edge_lets_alice_win() {
        // The executable heart of Theorem 1.2(2).
        let inst = BlockInstance::new(2, 2, 2);
        let g = Graph::complete(inst.n());
        for (p1, p2) in inst.required_edges() {
            let broken = g.without_edge(p1, p2);
            let viol = inst
                .adversary_violation(&broken, p1, p2)
                .expect("Alice must find a violation");
            assert_eq!(viol.point, p1, "the stuck point must be p1");
        }
    }

    #[test]
    fn removing_an_inter_block_edge_is_harmless() {
        let inst = BlockInstance::new(2, 2, 2);
        // Points 0 (block 0) and 4 (block 1): not a required pair.
        assert_ne!(inst.block_of(0), inst.block_of(4));
        let g = Graph::complete(inst.n()).without_edge(0, 4);
        for p_star in 0..inst.n() {
            let ds = inst.adversarial_dataset(p_star);
            check_navigable(&g, &ds, &[BPoint::Query], inst.epsilon()).unwrap();
        }
    }

    #[test]
    fn t_equals_one_forces_the_complete_digraph() {
        // Section 1.3's observation: with t = 1 and s^d = n, every ordered
        // pair is forced — Ω(n²), "essentially the worst possible".
        let inst = BlockInstance::new(4, 2, 1); // n = 16 = s^d
        assert_eq!(inst.n(), 16);
        assert_eq!(inst.required_edge_count(), 16 * 15);
        // The only graph containing all required edges IS the complete graph.
        let g = Graph::complete(inst.n());
        assert_eq!(inst.find_missing_required_edge(&g), None);
    }

    #[test]
    fn doubling_dimension_is_bounded() {
        // Lemma 4.1: λ <= log(1 + 2^d).
        let inst = BlockInstance::new(3, 2, 3);
        let ds = inst.adversarial_dataset(0);
        let est = pg_metric::doubling::greedy_cover_log2(&ds, 60, 11);
        let bound = (1.0 + (2.0f64).powi(inst.d as i32)).log2();
        // Greedy covering is within a factor ~2 of optimal; allow slack 1.
        assert!(
            est <= 2.0 * bound + 1.0,
            "doubling estimate {est} vs bound {bound}"
        );
    }
}
