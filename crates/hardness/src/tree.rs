//! The Section 3 hard instance (Figure 1): a tree metric of doubling
//! dimension 1 on which any 2-PG needs `Ω(n log Δ)` edges.
//!
//! The metric space: leaves of a complete binary tree `T` with `2Δ = 2^h`
//! leaves; the edge from a parent at level `ℓ` weighs `2^{ℓ-1}` (weight 1
//! onto leaves), so the distance between distinct leaves with lowest common
//! ancestor at level `ℓ` is exactly `2^ℓ`.
//!
//! The hard point set:
//!
//! * `P1` — all `n` leaves under `u_{log n}`, the level-`log n` node on the
//!   leftmost root-to-leaf path (leaf indices `0..n`);
//! * `P2` — for each level `i ∈ (h/2, h]`, one leaf in `T_i`, the right
//!   subtree of the level-`i` node on the leftmost path (we take its
//!   leftmost leaf, index `2^{i-1}`).
//!
//! Any 2-navigable graph must contain the edge `(v1, v2)` for every
//! `(v1, v2) ∈ P1 × P2`: with query `q = v2`, every other out-neighbor of
//! `v1` is at distance `>= D(v1, q)` from `q` (the LCA case analysis of
//! Section 3), so `v1` would be stuck. That is `n * ceil(h/2) = Ω(n log Δ)`
//! edges.

use pg_core::navigability::{check_navigable, Violation};
use pg_core::Graph;
use pg_metric::{Dataset, Metric};

/// A leaf of the complete binary tree, identified by its index
/// `0 .. 2^h - 1` in left-to-right order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Leaf(pub u64);

/// The tree metric: `D(a, b) = 2^{level of LCA(a, b)}`, which for leaf
/// indices is `2^{1 + msb(a XOR b)}`.
#[derive(Debug, Clone, Copy)]
pub struct TreeMetric {
    /// Height of the tree: `2^h` leaves, root at level `h`.
    pub h: u32,
}

impl Metric<Leaf> for TreeMetric {
    #[inline]
    fn dist(&self, a: &Leaf, b: &Leaf) -> f64 {
        if a.0 == b.0 {
            return 0.0;
        }
        debug_assert!(a.0 < (1u64 << self.h) && b.0 < (1u64 << self.h));
        let msb = 63 - (a.0 ^ b.0).leading_zeros();
        (2.0f64).powi(msb as i32 + 1)
    }
}

/// The Section 3 hard instance.
#[derive(Debug, Clone)]
pub struct TreeInstance {
    /// `n`: number of `P1` points (a power of two, `>= 2`).
    pub n: u64,
    /// Aspect-ratio parameter: the tree has `2Δ` leaves.
    pub delta: u64,
    /// `h = log2(2Δ)`.
    pub h: u32,
    /// The metric.
    pub metric: TreeMetric,
    /// `P1`: leaves `0..n` (all leaves under `u_{log n}`).
    pub p1: Vec<Leaf>,
    /// `P2`: one leaf in each right subtree `T_i`, `i ∈ (h/2, h]`.
    pub p2: Vec<Leaf>,
}

impl TreeInstance {
    /// Builds the instance. Requirements from Theorem 1.2(1): `n` and `Δ`
    /// powers of two, `n >= 2`, and `n^2 <= 2Δ <= 2^n`.
    pub fn new(n: u64, delta: u64) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "n must be a power of two >= 2"
        );
        assert!(delta.is_power_of_two(), "Δ must be a power of two");
        let two_delta = 2 * delta;
        assert!(
            n * n <= two_delta,
            "need n^2 <= 2Δ (got n = {n}, 2Δ = {two_delta})"
        );
        assert!(
            n >= 64 || two_delta <= 1u64 << n.min(63),
            "need 2Δ <= 2^n (got n = {n}, 2Δ = {two_delta})"
        );
        let h = two_delta.trailing_zeros(); // log2(2Δ)
        assert!((2..63).contains(&h), "h = log2(2Δ) must be in [2, 63)");

        let p1: Vec<Leaf> = (0..n).map(Leaf).collect();
        // Levels i in (h/2, h]: i from floor(h/2)+1 to h. Leftmost leaf of
        // T_i (right subtree of the level-i node on the leftmost path) has
        // index 2^{i-1}.
        let p2: Vec<Leaf> = ((h / 2 + 1)..=h).map(|i| Leaf(1u64 << (i - 1))).collect();
        // Disjointness: log n <= h/2 means every P2 index is >= 2^{h/2} > n-1.
        debug_assert!(p2.iter().all(|l| l.0 >= n));

        TreeInstance {
            n,
            delta,
            h,
            metric: TreeMetric { h },
            p1,
            p2,
        }
    }

    /// Total number of points `|P| = |P1| + |P2|` (between `n` and `3n/2`).
    pub fn len(&self) -> usize {
        self.p1.len() + self.p2.len()
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The dataset `P = P1 ∪ P2`, with `P1` occupying ids `0..n` and `P2`
    /// ids `n..n+|P2|`.
    pub fn dataset(&self) -> Dataset<Leaf, TreeMetric> {
        let mut pts = self.p1.clone();
        pts.extend_from_slice(&self.p2);
        Dataset::new(pts, self.metric)
    }

    /// Number of edges every 2-PG must contain: `|P1| * |P2|`.
    pub fn required_edge_count(&self) -> u64 {
        self.n * self.p2.len() as u64
    }

    /// The required edges as dataset-id pairs `(v1, v2) ∈ P1 × P2`.
    pub fn required_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let n = self.n as u32;
        let m = self.p2.len() as u32;
        (0..n).flat_map(move |a| (0..m).map(move |b| (a, n + b)))
    }

    /// The exact aspect ratio of `P` (equals `Δ`: diameter `2Δ`, minimum
    /// distance 2).
    pub fn aspect_ratio(&self) -> f64 {
        self.delta as f64
    }

    /// Checks that `graph` (over [`TreeInstance::dataset`] ids) contains
    /// every required edge; returns the first missing pair otherwise.
    pub fn find_missing_required_edge(&self, graph: &Graph) -> Option<(u32, u32)> {
        self.required_edges().find(|&(a, b)| !graph.has_edge(a, b))
    }

    /// Executes the proof of Section 3 on a concrete graph: given a pair
    /// `(v1, v2) ∈ P1 × P2` whose edge is absent from `graph`, returns the
    /// navigability violation (with query `q = v2`) that the proof predicts.
    /// Returns `None` if the graph survives (i.e. the edge was present or
    /// some other route works — the theorem says this cannot happen).
    pub fn adversary_violation(&self, graph: &Graph, v1: u32, v2: u32) -> Option<Violation> {
        assert!(
            (v1 as usize) < self.p1.len() && (v2 as usize) >= self.p1.len(),
            "expected v1 ∈ P1, v2 ∈ P2"
        );
        let data = self.dataset();
        let q = *data.point(v2 as usize);
        check_navigable(graph, &data, &[q], 1.0).err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_core::navigability::{check_pg_exhaustive, Starts};
    use pg_metric::metric::axioms;

    #[test]
    fn metric_distances_match_lca_levels() {
        let m = TreeMetric { h: 4 }; // 16 leaves
        assert_eq!(m.dist(&Leaf(0), &Leaf(1)), 2.0); // LCA level 1
        assert_eq!(m.dist(&Leaf(0), &Leaf(2)), 4.0); // LCA level 2
        assert_eq!(m.dist(&Leaf(0), &Leaf(7)), 8.0); // LCA level 3
        assert_eq!(m.dist(&Leaf(0), &Leaf(15)), 16.0); // root
        assert_eq!(m.dist(&Leaf(5), &Leaf(5)), 0.0);
        assert_eq!(m.dist(&Leaf(6), &Leaf(7)), 2.0);
    }

    #[test]
    fn metric_axioms_hold() {
        let m = TreeMetric { h: 6 };
        let pts: Vec<Leaf> = (0..64).step_by(5).map(Leaf).collect();
        axioms::check_all(&m, &pts).unwrap();
    }

    #[test]
    fn instance_shape_matches_paper() {
        // n = 8, 2Δ = 2^8 = 256 => Δ = 128, h = 8, n^2 = 64 <= 256 <= 2^8.
        let inst = TreeInstance::new(8, 128);
        assert_eq!(inst.h, 8);
        assert_eq!(inst.p1.len(), 8);
        // Levels 5..=8: 4 points.
        assert_eq!(inst.p2.len(), 4);
        assert_eq!(inst.required_edge_count(), 32);
        // |P| between n and 3n/2.
        assert!(inst.len() >= 8 && inst.len() <= 12);
    }

    #[test]
    fn aspect_ratio_is_delta() {
        let inst = TreeInstance::new(4, 8);
        let ds = inst.dataset();
        let (dmin, dmax) = ds.min_max_interpoint();
        assert_eq!(dmin, 2.0);
        assert_eq!(dmax, 2.0 * inst.delta as f64);
        assert_eq!(ds.aspect_ratio_exact(), inst.aspect_ratio());
    }

    #[test]
    fn p1_p2_disjoint_and_distances_are_lca_scales() {
        let inst = TreeInstance::new(8, 128);
        let ds = inst.dataset();
        for (a, b) in inst.required_edges() {
            let d = ds.dist(a as usize, b as usize);
            // v2 in T_i at level i > h/2: distance is 2^i >= 2^{h/2 + 1}.
            assert!(d >= (2.0f64).powi(inst.h as i32 / 2 + 1));
        }
    }

    #[test]
    fn complete_graph_survives_the_adversary() {
        let inst = TreeInstance::new(4, 8);
        let g = Graph::complete(inst.len());
        assert_eq!(inst.find_missing_required_edge(&g), None);
        let ds = inst.dataset();
        let queries: Vec<Leaf> = (0..16).map(Leaf).collect();
        check_pg_exhaustive(&g, &ds, &queries, 1.0, Starts::All).unwrap();
    }

    #[test]
    fn removing_any_required_edge_breaks_navigability() {
        // The executable heart of Theorem 1.2(1).
        let inst = TreeInstance::new(4, 8);
        let g = Graph::complete(inst.len());
        for (v1, v2) in inst.required_edges() {
            let broken = g.without_edge(v1, v2);
            let viol = inst
                .adversary_violation(&broken, v1, v2)
                .expect("proof predicts a violation");
            assert_eq!(viol.point, v1, "the stuck point must be v1");
        }
    }

    #[test]
    fn removing_a_non_required_edge_is_harmless() {
        // Edges inside P1 are not required: the complete graph minus one
        // such edge is still 2-navigable for P2 queries.
        let inst = TreeInstance::new(4, 8);
        let g = Graph::complete(inst.len()).without_edge(0, 1);
        let ds = inst.dataset();
        let queries: Vec<Leaf> = inst.p2.clone();
        check_navigable(&g, &ds, &queries, 1.0).unwrap();
    }

    #[test]
    fn doubling_dimension_is_one() {
        // Appendix C: every ball splits into two half-radius balls.
        let inst = TreeInstance::new(4, 8);
        let ds = inst.dataset();
        let est = pg_metric::doubling::greedy_cover_log2(&ds, 60, 9);
        assert!(est <= 1.0 + 1e-9, "doubling estimate {est} exceeds 1");
    }

    #[test]
    #[should_panic(expected = "n^2 <= 2Δ")]
    fn parameter_constraints_enforced() {
        let _ = TreeInstance::new(32, 64); // n^2 = 1024 > 2Δ = 128
    }
}
