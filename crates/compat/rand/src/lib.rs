//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! an API-compatible replacement for exactly the surface the workspace
//! consumes:
//!
//! * [`rngs::StdRng`] — a small, fast, deterministic generator
//!   (SplitMix64), seedable via [`SeedableRng::seed_from_u64`];
//! * [`RngExt::random_range`] over integer and float ranges and
//!   [`RngExt::random_bool`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism contract: for a fixed seed, every method produces the same
//! sequence on every platform — all workspace experiments rely on this.
//! The streams are *not* the same as the real `rand` crate's; only the API
//! matches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Random number generators.
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 under the hood).
    ///
    /// Statistically solid for simulation workloads, trivially seedable and
    /// platform-independent. Not cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014). One addition, three
            // xor-shift-multiply rounds; passes BigCrush when used as here.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the raw seed once so that consecutive small seeds
            // (0, 1, 2, ...) do not produce correlated first outputs.
            let mut rng = StdRng::from_state(seed ^ 0x5DEE_CE66_D1CE_4E5B);
            let _ = crate::RngCore::next_u64(&mut rng);
            rng
        }
    }
}

/// A source of random 64-bit words; every RNG implements this.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly. Implemented for `Range<T>`
/// (`lo..hi`) over the numeric types the workspace uses.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 per draw at workspace range sizes.
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_float {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = $unit(rng); // in [0, 1)
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl_sample_float!(f64 => unit_f64, f32 => unit_f32);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Sequence-related helpers.
pub mod seq {
    use crate::{RngCore, RngExt};

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle using `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3i32..17);
            assert!((3..17).contains(&x));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.random_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn float_sampling_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..1000).map(|_| rng.random_range(0.0f64..1.0)).collect();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
