//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the property-testing surface the workspace's test suites
//! consume:
//!
//! * range strategies (`0i32..2000`, `-1e4f64..1e4`, ...), tuple strategies,
//!   [`collection::vec`] with exact or ranged sizes;
//! * the [`strategy::Strategy`] combinators `prop_map` and `prop_filter`;
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header) and the
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`] macros;
//! * a deterministic [`test_runner::TestRunner`]: cases are generated from a
//!   seed derived from the test name, so failures reproduce across runs.
//!
//! Shrinking is intentionally **not** implemented — on failure the runner
//! reports the case number and the failing assertion message. Rerunning the
//! test deterministically regenerates the same inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies ([`collection::vec`]).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestCaseError;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Number of elements a [`vec()`] strategy may produce: a fixed size or a
    /// half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Result<Self::Value, TestCaseError> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}
