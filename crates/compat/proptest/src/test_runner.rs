//! Deterministic case runner and the `proptest!` / `prop_assert!` macros.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was filtered out (`prop_filter` / `prop_assume!`); the
    /// runner draws a fresh case without counting this one.
    Reject(&'static str),
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

/// Runner configuration. Only `cases` is supported.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives one property: generates cases until `config.cases` pass,
/// panicking on the first failure.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Build a runner with the given config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Run `case` until `config.cases` successes. The RNG is seeded from
    /// `name` (FNV-1a), so each property sees its own deterministic stream
    /// and failures reproduce exactly on rerun.
    pub fn run<F>(&mut self, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
        let target = self.config.cases as u64;
        // Generous rejection budget: local filters (point-set dedup etc.)
        // reject only a small fraction of draws.
        let max_attempts = target * 20 + 1000;
        let mut passed = 0u64;
        let mut attempts = 0u64;
        let mut last_reject = "";
        while passed < target {
            attempts += 1;
            if attempts > max_attempts {
                panic!(
                    "proptest '{name}': gave up after {attempts} attempts \
                     ({passed}/{target} cases passed; last rejection: {last_reject:?})"
                );
            }
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(reason)) => last_reject = reason,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}': case {} failed: {msg}", passed + 1)
                }
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests. Mirrors real proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0i32..9, 1..5)) {
///         prop_assert!(v.len() < 5);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(stringify!($name), |__pt_rng| {
                $crate::__proptest_bind!(__pt_rng; $($params)*);
                #[allow(unused_mut)]
                let mut __pt_case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __pt_case()
            });
        }
    )*};
}

/// Implementation detail of [`proptest!`]: binds `pat in strategy` params.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::gen_value(&($strat), $rng)?;
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::gen_value(&($strat), $rng)?;
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// `assert!` for property bodies: fails the case instead of panicking
/// directly, so the runner can attribute it to the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {lhs:?}\n right: {rhs:?}",
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        let ctx = format!($($fmt)+);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`: {ctx}\n  left: {lhs:?}\n right: {rhs:?}",
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
}

/// Reject the current case without failing the test; the runner retries
/// with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
