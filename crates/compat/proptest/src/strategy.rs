//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{RngExt, SampleRange};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a deterministic function of the runner's RNG state. Filters reject
/// by returning [`TestCaseError::Reject`], which the runner retries.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value (or a rejection, for filtered strategies).
    fn gen_value(&self, rng: &mut StdRng) -> Result<Self::Value, TestCaseError>;

    /// Transform every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `pred`; the runner retries the case.
    /// `reason` appears in the too-many-rejections panic message.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut StdRng) -> Result<O, TestCaseError> {
        self.inner.gen_value(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut StdRng) -> Result<S::Value, TestCaseError> {
        let v = self.inner.gen_value(rng)?;
        if (self.pred)(&v) {
            Ok(v)
        } else {
            Err(TestCaseError::Reject(self.reason))
        }
    }
}

// Numeric ranges are strategies: `0i32..2000`, `-1e4f64..1e4`, `1u64..=9`.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> Result<$t, TestCaseError> {
                Ok(rng.random_range(self.clone()))
            }
        }
    )*};
    (inclusive $($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> Result<$t, TestCaseError> {
                Ok(rng.random_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);
impl_range_strategy!(inclusive i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Always produces a clone of one value (real proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut StdRng) -> Result<T, TestCaseError> {
        Ok(self.0.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut StdRng) -> Result<Self::Value, TestCaseError> {
                let ($($name,)+) = self;
                Ok(($($name.gen_value(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// Keep the unused-import lint honest: SampleRange is what makes
// `rng.random_range(self.clone())` compile for both range flavors.
#[allow(unused)]
fn _assert_sample_range<T, S: SampleRange<T>>() {}
