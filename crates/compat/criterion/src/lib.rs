//! Offline stand-in for the subset of the `criterion` benchmark harness
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the API the `benches/` targets consume — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//!
//! Behavior:
//!
//! * `cargo bench` runs each benchmark for `sample_size` samples (bounded
//!   by `measurement_time`) after one warm-up sample, and prints the mean
//!   wall-clock time per iteration;
//! * when invoked with `--test` (as `cargo test --benches` does for
//!   `harness = false` targets), each benchmark body runs exactly once so
//!   the target doubles as a smoke test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every `criterion_group!` target function.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A named benchmark within a group; `new("op", param)` renders as
/// `op/param`, matching criterion's display convention.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Benchmark id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to record per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Wall-clock budget per benchmark (default 3 s).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        if self.criterion.test_mode {
            b.once = true;
            f(&mut b);
            println!("test {}/{} ... ok", self.name, id.id);
            return self;
        }
        // One warm-up sample, then measure.
        f(&mut b);
        b = Bencher::default();
        let budget = Instant::now();
        let mut samples = 0;
        while samples < self.sample_size && budget.elapsed() < self.measurement_time {
            f(&mut b);
            samples += 1;
        }
        let mean = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: mean {:?} over {} samples ({} iters)",
            self.name, id.id, mean, samples, b.iters
        );
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (accepted for API compatibility; prints nothing).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    once: bool,
}

impl Bencher {
    /// Time `routine`, accumulating into the enclosing sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let reps: u64 = if self.once {
            1
        } else {
            1.max(self.iters_hint())
        };
        let start = Instant::now();
        for _ in 0..reps {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += reps;
    }

    fn iters_hint(&self) -> u64 {
        // Keep per-sample cost bounded: a single rep per sample. The
        // workspace's routines are all >> 1 µs, so timer resolution is fine.
        1
    }
}

impl Default for Bencher {
    fn default() -> Self {
        Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            once: false,
        }
    }
}

/// Defines a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
