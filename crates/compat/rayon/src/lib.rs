//! Offline stand-in for the slice of `rayon` this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the parallel-execution surface the workspace consumes (see
//! `crates/compat/README.md`): a **scoped, work-stealing-lite pool** rather
//! than rayon's full `ParallelIterator` machinery. Workers pull fixed-size
//! blocks of work from a shared atomic cursor (cheap dynamic load balancing)
//! and results are reassembled in input order, so every helper is
//! **deterministic in its output ordering regardless of thread count** —
//! the property all `batch_*` engine routines and the parallel graph
//! constructions rely on.
//!
//! Surface:
//!
//! * [`par_map`] / [`par_map_indexed`] / [`par_map_range`] — order-preserving
//!   parallel maps (`par_iter().map().collect()` morally);
//! * [`par_chunks`] — parallel map over contiguous chunks, results in chunk
//!   order;
//! * [`scope`] / [`Scope::spawn`] — structured fork/join on borrowed data;
//! * [`current_num_threads`], [`set_default_threads`], [`with_threads`] —
//!   pool sizing, overridable per call site, per process, or via the
//!   `PG_THREADS` environment variable.
//!
//! Thread-count resolution order: [`with_threads`] scope (thread-local) >
//! [`set_default_threads`] (process-global, e.g. a `--threads` flag) >
//! `PG_THREADS` > `std::thread::available_parallelism()`.
//!
//! Unlike the `rand`/`proptest`/`criterion` stand-ins, this API is *not*
//! call-site-compatible with the real crate (rayon's iterator traits cannot
//! be reproduced small); swapping the real rayon back in would mean porting
//! call sites to `par_iter`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0); // 0 = unset

thread_local! {
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) }; // 0 = unset
}

/// Parses a `PG_THREADS`-style value; `None`/empty/non-numeric/zero mean
/// "unset". Split out of [`current_num_threads`] so it is testable without
/// mutating process environment.
fn threads_from_env(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The number of worker threads parallel helpers use, resolved as:
/// [`with_threads`] override, then [`set_default_threads`], then the
/// `PG_THREADS` environment variable, then the machine's available
/// parallelism (at least 1).
pub fn current_num_threads() -> usize {
    let o = THREAD_OVERRIDE.with(Cell::get);
    if o > 0 {
        return o;
    }
    let g = DEFAULT_THREADS.load(Ordering::Relaxed);
    if g > 0 {
        return g;
    }
    if let Some(n) = threads_from_env(std::env::var("PG_THREADS").ok().as_deref()) {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sets the process-wide default thread count (0 restores auto-detection).
/// Typically wired to a `--threads` command-line flag. A [`with_threads`]
/// scope still takes precedence on its thread.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// Runs `f` with the calling thread's pool size pinned to `n` (restored on
/// exit, including on panic). Only affects parallel helpers invoked *on this
/// thread* — the deterministic way for tests to compare thread counts
/// without touching process-global state.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(THREAD_OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// Order-preserving parallel map: semantically
/// `items.iter().map(f).collect()`, computed on [`current_num_threads`]
/// workers. `f` must be pure for the parallel and sequential results to
/// agree (every call site in this workspace satisfies that).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed_with(current_num_threads(), items, |_, t| f(t))
}

/// [`par_map`] with the element index passed to `f`.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_indexed_with(current_num_threads(), items, f)
}

/// [`par_map`] with an explicit worker count.
pub fn par_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed_with(threads, items, |_, t| f(t))
}

/// Order-preserving parallel map over `0..n`: semantically
/// `(0..n).map(f).collect()`. The natural shape for the per-point loops of
/// the graph constructions.
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_range_with(current_num_threads(), n, f)
}

/// [`par_map_range`] with an explicit worker count.
pub fn par_map_range_with<U, F>(threads: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    // Dispatch through the slice path with unit items; the index is the
    // only input.
    let units = vec![(); n];
    par_map_indexed_with(threads, &units, |i, ()| f(i))
}

/// Parallel map over contiguous `chunk_size`-sized chunks (last chunk may be
/// shorter); results are in chunk order, exactly as
/// `items.chunks(chunk_size).map(f).collect()`.
pub fn par_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    assert!(chunk_size >= 1, "chunk size must be at least 1");
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    par_map_indexed_with(current_num_threads(), &chunks, |_, c| f(c))
}

/// [`par_map_indexed`] with an explicit worker count — the primitive every
/// other helper lowers to.
///
/// Work-stealing-lite: the input is cut into blocks of roughly
/// `len / (4 * threads)` items and workers claim blocks from a shared atomic
/// cursor, so an unlucky worker stuck on an expensive block does not serialize
/// the rest. Each block remembers its start offset and the blocks are
/// reassembled in input order, making the output independent of scheduling.
pub fn par_map_indexed_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let block = n.div_ceil(threads * 4).max(1);
    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<(usize, Vec<U>)> = Vec::with_capacity(n.div_ceil(block));
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            handles.push(s.spawn(move || {
                let mut local: Vec<(usize, Vec<U>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(block, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + block).min(n);
                    let results = items[start..end]
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(start + j, t))
                        .collect();
                    local.push((start, results));
                }
                local
            }));
        }
        for h in handles {
            // A panic in `f` propagates to the caller with its original
            // payload, exactly as it would from a plain sequential map.
            match h.join() {
                Ok(local) => parts.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, mut v) in parts {
        out.append(&mut v);
    }
    out
}

/// A structured fork/join scope over borrowed data; see [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope. All spawned
    /// tasks are joined before [`scope`] returns; a task panic propagates.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// Structured concurrency over borrowed data: `scope(|s| s.spawn(...))`
/// joins every spawned task before returning, so tasks may freely borrow
/// from the enclosing stack frame. The shape of `rayon::scope`, backed by
/// `std::thread::scope`.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order_for_every_thread_count() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let machine = std::thread::available_parallelism().map_or(1, |n| n.get());
        for threads in [1, 2, 3, machine, machine + 3] {
            let got = par_map_with(threads, &items, |&x| x * x + 1);
            assert_eq!(got, expect, "ordering broke at {threads} threads");
        }
    }

    #[test]
    fn par_map_indexed_passes_true_indices() {
        let items = vec![10u64; 503];
        let got = par_map_indexed_with(4, &items, |i, &x| i as u64 + x);
        let expect: Vec<u64> = (0..503).map(|i| i + 10).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn par_map_range_matches_sequential_range_map() {
        let expect: Vec<usize> = (0..777).map(|i| i * 3).collect();
        for threads in [1, 2, 5] {
            assert_eq!(par_map_range_with(threads, 777, |i| i * 3), expect);
        }
    }

    #[test]
    fn par_chunks_keeps_chunk_order_and_boundaries() {
        let items: Vec<u32> = (0..100).collect();
        let sums = par_chunks(&items, 7, |c| c.iter().sum::<u32>());
        let expect: Vec<u32> = items.chunks(7).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expect);
        assert_eq!(sums.len(), 100usize.div_ceil(7));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map_with(8, &empty, |&x| x), Vec::<u32>::new());
        assert_eq!(par_map_with(8, &[41u32], |&x| x + 1), vec![42]);
        assert_eq!(par_map_range_with(8, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn scope_joins_all_spawned_tasks_before_returning() {
        let hits = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = current_num_threads();
        let inner = with_threads(3, || {
            // Nested overrides stack.
            let nested = with_threads(2, current_num_threads);
            assert_eq!(nested, 2);
            current_num_threads()
        });
        assert_eq!(inner, 3);
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn with_threads_restores_after_panic() {
        let before = current_num_threads();
        let caught = std::panic::catch_unwind(|| {
            with_threads(7, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn env_parsing_rules() {
        assert_eq!(threads_from_env(None), None);
        assert_eq!(threads_from_env(Some("")), None);
        assert_eq!(threads_from_env(Some("abc")), None);
        assert_eq!(threads_from_env(Some("0")), None);
        assert_eq!(threads_from_env(Some("4")), Some(4));
        assert_eq!(threads_from_env(Some(" 12 ")), Some(12));
    }

    #[test]
    fn worker_panic_propagates_with_original_payload() {
        let items: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            let _ = par_map_with(4, &items, |&x| {
                assert!(x < 60, "planted failure");
                x
            });
        });
        // The payload must survive the join, so diagnostics do not depend
        // on the thread count.
        let payload = caught.expect_err("planted panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("planted failure"), "payload lost: {msg:?}");
    }
}
