//! Shared helpers for the experiment harness: table formatting, log–log
//! slope fitting, and query-cost measurement.
//!
//! Every experiment in DESIGN.md §3 has a binary in `src/bin/` that prints
//! the corresponding paper-shaped table; `benches/` holds the criterion
//! wall-clock micro-benchmarks. Binaries accept `--full` for the larger
//! parameter sweeps recorded in EXPERIMENTS.md.
//!
//! Where this crate sits in the workspace is mapped in `ARCHITECTURE.md`
//! at the repository root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use pg_core::{greedy, Graph, QueryEngine};
use pg_metric::{Dataset, Metric};

/// Ordinary least squares slope of `ln y` against `ln x` — the growth
/// exponent read off a log–log plot. Requires positive samples.
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two samples");
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    let mx = lx.iter().sum::<f64>() / lx.len() as f64;
    let my = ly.iter().sum::<f64>() / ly.len() as f64;
    let cov: f64 = lx
        .iter()
        .zip(ly.iter())
        .map(|(x, y)| (x - mx) * (y - my))
        .sum();
    let var: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

/// Least-squares slope of `y` against `x` (linear scale).
pub fn linear_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let mx = xs.iter().sum::<f64>() / xs.len() as f64;
    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let cov: f64 = xs
        .iter()
        .zip(ys.iter())
        .map(|(x, y)| (x - mx) * (y - my))
        .sum();
    let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

/// The start vertex the measurement helpers assign to query `i` on an
/// `n`-point dataset (a Knuth-hash stride through the vertex set).
pub fn spread_start(i: usize, n: usize) -> u32 {
    ((i * 2654435761) % n) as u32
}

/// Average greedy distance computations and hops over the given queries,
/// cycling through start vertices. Returns `(avg_dists, avg_hops,
/// worst_ratio)` where `worst_ratio` is the worst approximation ratio
/// observed against brute force.
pub fn measure_greedy<P, M: Metric<P>>(
    graph: &Graph,
    data: &Dataset<P, M>,
    queries: &[P],
) -> (f64, f64, f64) {
    let n = data.len();
    let mut comps = 0u64;
    let mut hops = 0usize;
    let mut worst: f64 = 1.0;
    for (i, q) in queries.iter().enumerate() {
        let out = greedy(graph, data, spread_start(i, n), q);
        comps += out.dist_comps;
        hops += out.hops.len();
        let (_, exact) = data.nearest_brute(q);
        if exact > 0.0 {
            worst = worst.max(out.result_dist / exact);
        } else if out.result_dist > 0.0 {
            worst = f64::INFINITY;
        }
    }
    (
        comps as f64 / queries.len() as f64,
        hops as f64 / queries.len() as f64,
        worst,
    )
}

/// [`measure_greedy`] through a [`QueryEngine`] batch: same start-vertex
/// schedule, same `(avg_dists, avg_hops, worst_ratio)` — the engine
/// guarantees per-query outcomes identical to the sequential `greedy`, so
/// the two helpers agree for any thread count (asserted in tests).
pub fn measure_greedy_batch<P: Sync, M: Metric<P> + Sync>(
    engine: &QueryEngine<P, M>,
    queries: &[P],
) -> (f64, f64, f64) {
    let n = engine.data().len();
    let starts: Vec<u32> = (0..queries.len()).map(|i| spread_start(i, n)).collect();
    let batch = engine.batch_greedy(&starts, queries);
    let hops: usize = batch.outcomes.iter().map(|o| o.hops.len()).sum();
    let mut worst: f64 = 1.0;
    for (q, out) in queries.iter().zip(batch.outcomes.iter()) {
        let (_, exact) = engine.data().nearest_brute(q);
        if exact > 0.0 {
            worst = worst.max(out.result_dist / exact);
        } else if out.result_dist > 0.0 {
            worst = f64::INFINITY;
        }
    }
    (
        batch.dist_comps as f64 / queries.len() as f64,
        hops as f64 / queries.len() as f64,
        worst,
    )
}

/// Simple Markdown-ish table printer with right-aligned numeric columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths.iter()) {
                s.push_str(&format!(" {c:>w$} |"));
            }
            s
        };
        println!("{}", line(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        println!("{sep}");
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// True when the binary was invoked with `--full` (bigger sweeps).
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// The value of a `--name VALUE` / `--name=VALUE` flag, if present.
///
/// This is the shared flag-parsing primitive of the experiment binaries:
/// `--threads` goes through it, and the snapshot pair uses it for
/// `--save-index PATH` / `--load-index PATH` (the offline/online split of
/// `exp_t11_build` / `exp_t11_query`).
pub fn value_flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    parse_value_flag(&args, name)
}

/// Flag-parsing core of [`value_flag`], split out for testability. `name`
/// includes the leading dashes (e.g. `"--threads"`). In the space-separated
/// form, a following token that is itself a flag (`--…`) is not consumed as
/// the value — `exp --save-index --full` means the path is missing, not
/// that the index goes to a file named `--full`. Use `--name=--value` if a
/// dash-leading value is really intended.
fn parse_value_flag(args: &[String], name: &str) -> Option<String> {
    let prefix = format!("{name}=");
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

/// The `--threads N` / `--threads=N` flag, if present and valid.
pub fn threads_flag() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    parse_threads_flag(&args)
}

/// Flag-parsing core of [`threads_flag`].
fn parse_threads_flag(args: &[String]) -> Option<usize> {
    parse_value_flag(args, "--threads")
        .and_then(|v| v.parse().ok())
        .filter(|&t| t >= 1)
}

/// Applies the `--threads` flag (if any) to the global pool default and
/// returns the effective worker count. Every `exp_*` binary calls this
/// first, so `--threads 1` reproduces the sequential wall-clock and the
/// default engages the whole machine (or `PG_THREADS`).
pub fn init_threads() -> usize {
    if let Some(t) = threads_flag() {
        rayon::set_default_threads(t);
    }
    rayon::current_num_threads()
}

/// True when the binary was invoked with `--force` (allow clobbering a
/// committed `BENCH_*.json`).
pub fn force_flag() -> bool {
    std::env::args().any(|a| a == "--force")
}

/// The overwrite rule for committed benchmark artifacts: writing
/// `BENCH_<label>.json` is allowed when the file does not exist yet, when
/// `--force` was given, or when the label is not the binary's default
/// (scratch runs under `--label mytest` never endanger committed numbers).
///
/// This exists because a bare re-run of an experiment binary used to
/// silently overwrite the committed artifact of its original PR (see
/// CHANGES.md, PR 5) — now it refuses with a pointer to `--force`.
pub fn bench_overwrite_allowed(exists: bool, label_is_default: bool, force: bool) -> bool {
    !exists || force || !label_is_default
}

/// Writes `BENCH_<label>.json` into the current directory, honoring
/// [`bench_overwrite_allowed`] (with `--force` read from the arguments).
/// On refusal, returns an error message for the binary to print before
/// exiting non-zero.
pub fn write_bench_artifact(
    label: &str,
    label_is_default: bool,
    json: &str,
) -> Result<std::path::PathBuf, String> {
    write_bench_artifact_in(
        std::path::Path::new("."),
        label,
        label_is_default,
        force_flag(),
        json,
    )
}

/// Core of [`write_bench_artifact`], parameterized for testability.
pub fn write_bench_artifact_in(
    dir: &std::path::Path,
    label: &str,
    label_is_default: bool,
    force: bool,
    json: &str,
) -> Result<std::path::PathBuf, String> {
    let path = dir.join(format!("BENCH_{label}.json"));
    if !bench_overwrite_allowed(path.exists(), label_is_default, force) {
        return Err(format!(
            "refusing to overwrite existing {}: pass --force to replace the committed \
             artifact, or use --label <name> for a scratch run",
            path.display()
        ));
    }
    std::fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loglog_slope_recovers_exponents() {
        let xs = [100.0, 200.0, 400.0, 800.0];
        let quad: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        let lin: Vec<f64> = xs.iter().map(|x| 5.0 * x).collect();
        assert!((loglog_slope(&xs, &quad) - 2.0).abs() < 1e-9);
        assert!((loglog_slope(&xs, &lin) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_slope_recovers_coefficient() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.5, 5.0, 7.5, 10.0];
        assert!((linear_slope(&xs, &ys) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn table_prints_without_panicking() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn threads_flag_parsing() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_threads_flag(&to_args(&["exp", "--threads", "4"])),
            Some(4)
        );
        assert_eq!(
            parse_threads_flag(&to_args(&["exp", "--threads=2"])),
            Some(2)
        );
        assert_eq!(parse_threads_flag(&to_args(&["exp", "--full"])), None);
        assert_eq!(parse_threads_flag(&to_args(&["exp", "--threads"])), None);
        assert_eq!(
            parse_threads_flag(&to_args(&["exp", "--threads", "0"])),
            None
        );
        assert_eq!(
            parse_threads_flag(&to_args(&["exp", "--threads", "x"])),
            None
        );
    }

    #[test]
    fn value_flag_parsing() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_value_flag(
                &to_args(&["exp", "--save-index", "/tmp/i.pgix"]),
                "--save-index"
            ),
            Some("/tmp/i.pgix".to_string())
        );
        assert_eq!(
            parse_value_flag(&to_args(&["exp", "--load-index=idx.pgix"]), "--load-index"),
            Some("idx.pgix".to_string())
        );
        assert_eq!(
            parse_value_flag(&to_args(&["exp", "--full"]), "--save-index"),
            None
        );
        // A bare flag with no value yields nothing to parse downstream.
        assert_eq!(
            parse_value_flag(&to_args(&["exp", "--save-index"]), "--save-index"),
            None
        );
        // A following flag is not swallowed as the value…
        assert_eq!(
            parse_value_flag(&to_args(&["exp", "--save-index", "--full"]), "--save-index"),
            None
        );
        // …but the explicit `=` form can still pass anything.
        assert_eq!(
            parse_value_flag(&to_args(&["exp", "--save-index=--odd"]), "--save-index"),
            Some("--odd".to_string())
        );
    }

    #[test]
    fn overwrite_guard_truth_table() {
        // (exists, default label, force) → allowed.
        assert!(bench_overwrite_allowed(false, true, false)); // first write
        assert!(bench_overwrite_allowed(false, false, false));
        assert!(bench_overwrite_allowed(true, true, true)); // forced
        assert!(bench_overwrite_allowed(true, false, false)); // scratch label
                                                              // The regression case (PR 5): a bare re-run with the default label
                                                              // over a committed artifact is the one refused combination.
        assert!(!bench_overwrite_allowed(true, true, false));
    }

    #[test]
    fn write_bench_artifact_refuses_then_obeys_force_and_scratch_labels() {
        let dir = std::env::temp_dir().join(format!("pg_bench_guard_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // First default-label write lands.
        let p = write_bench_artifact_in(&dir, "pr0", true, false, "{\"a\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "{\"a\":1}");

        // A bare re-run is refused and the committed bytes survive.
        let err = write_bench_artifact_in(&dir, "pr0", true, false, "{\"a\":2}").unwrap_err();
        assert!(
            err.contains("--force"),
            "message must point at --force: {err}"
        );
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "{\"a\":1}");

        // --force replaces; a non-default label writes beside it freely.
        write_bench_artifact_in(&dir, "pr0", true, true, "{\"a\":3}").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "{\"a\":3}");
        let scratch = write_bench_artifact_in(&dir, "scratch", false, false, "{}").unwrap();
        write_bench_artifact_in(&dir, "scratch", false, false, "{\"b\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&scratch).unwrap(), "{\"b\":1}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn engine_measurement_agrees_with_sequential_helper() {
        use pg_core::{GNet, QueryEngine};
        use pg_metric::{Dataset, Euclidean};
        use pg_workloads as workloads;

        let pts = workloads::uniform_cube(300, 2, 60.0, 5);
        let data = Dataset::new(pts, Euclidean);
        let g = GNet::build_fast(&data, 1.0);
        let queries = workloads::uniform_queries(20, 2, 0.0, 60.0, 6);
        let seq = measure_greedy(&g.graph, &data, &queries);
        for threads in [1, 4] {
            let engine = QueryEngine::new(g.graph.clone(), data.clone()).with_threads(threads);
            let par = measure_greedy_batch(&engine, &queries);
            assert_eq!(seq, par, "helpers diverged at {threads} threads");
        }
    }
}
